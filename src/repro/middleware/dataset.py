"""Chunked dataset abstraction.

FREERIDE-G "expects data to be stored in chunks, whose size is manageable
for the repository nodes" (Section 2.1).  A :class:`Dataset` is therefore a
sequence of chunks, each with a byte size and an application-interpretable
payload.  :class:`ArrayDataset` covers the point-cloud data-mining
applications (k-means, EM, kNN); the scientific applications subclass
:class:`Dataset` in :mod:`repro.datagen` to provide spatially partitioned
chunks with halo overlap.
"""

from __future__ import annotations

import abc
from typing import Any, Dict

import numpy as np

from repro.hotpath import hot
from repro.simgrid.errors import ConfigurationError

__all__ = ["Dataset", "ArrayDataset"]


class Dataset(abc.ABC):
    """A named, chunked dataset.

    Parameters
    ----------
    name:
        Dataset identifier (also the replica-catalog key).
    nbytes:
        Total size in model bytes; drives retrieval/communication time.
    num_chunks:
        Number of chunks the repository stores the dataset as.
    meta:
        Application-facing metadata passed to
        :meth:`repro.middleware.api.GeneralizedReduction.begin`.
    """

    def __init__(
        self,
        name: str,
        nbytes: float,
        num_chunks: int,
        meta: Dict[str, Any] | None = None,
    ) -> None:
        if nbytes <= 0:
            raise ConfigurationError("dataset size must be positive")
        if num_chunks <= 0:
            raise ConfigurationError("dataset must have at least one chunk")
        self.name = name
        self.nbytes = float(nbytes)
        self.num_chunks = int(num_chunks)
        self.meta = dict(meta or {})

    @abc.abstractmethod
    def chunk_payload(self, index: int) -> Any:
        """The data of chunk ``index`` as the application consumes it."""

    def chunk_nbytes(self, index: int) -> float:
        """Size of chunk ``index`` in model bytes (uniform by default)."""
        self._check_index(index)
        return self.nbytes / self.num_chunks

    @hot
    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_chunks:
            raise ConfigurationError(
                f"chunk index {index} out of range (0..{self.num_chunks - 1})"
            )

    def __len__(self) -> int:
        return self.num_chunks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, nbytes={self.nbytes:.3g}, "
            f"num_chunks={self.num_chunks})"
        )


class ArrayDataset(Dataset):
    """A dataset of fixed-width records stored in a 2-D NumPy array.

    Chunks are contiguous row ranges.  ``nbytes`` may exceed
    ``records.nbytes`` when the dataset models a scaled-down replica of a
    larger store — chunk payloads stay laptop-sized while byte accounting
    follows the declared model size.
    """

    def __init__(
        self,
        name: str,
        records: np.ndarray,
        num_chunks: int,
        nbytes: float | None = None,
        meta: Dict[str, Any] | None = None,
    ) -> None:
        records = np.asarray(records)
        if records.ndim != 2:
            raise ConfigurationError("ArrayDataset records must be 2-D (rows, dims)")
        if records.shape[0] < num_chunks:
            raise ConfigurationError(
                f"cannot split {records.shape[0]} records into {num_chunks} chunks"
            )
        super().__init__(
            name=name,
            nbytes=float(records.nbytes) if nbytes is None else float(nbytes),
            num_chunks=num_chunks,
            meta=meta,
        )
        self.records = records
        # Contiguous row ranges, sized as evenly as integer division allows.
        edges = np.linspace(0, records.shape[0], num_chunks + 1).astype(int)
        self._bounds = list(zip(edges[:-1], edges[1:]))

    @property
    def num_records(self) -> int:
        """Total record count."""
        return int(self.records.shape[0])

    @property
    def num_dims(self) -> int:
        """Record width."""
        return int(self.records.shape[1])

    @hot
    def chunk_payload(self, index: int) -> np.ndarray:
        """A view of the rows belonging to chunk ``index``."""
        self._check_index(index)
        lo, hi = self._bounds[index]
        return self.records[lo:hi]

    @hot
    def chunk_nbytes(self, index: int) -> float:
        """Model bytes of chunk ``index``, proportional to its row count."""
        self._check_index(index)
        lo, hi = self._bounds[index]
        return self.nbytes * (hi - lo) / self.records.shape[0]
