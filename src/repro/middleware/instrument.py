"""Operation counters: how real kernels charge virtual compute time.

Every application kernel performs its computation for real (NumPy on the
actual synthetic data) and then *charges* the operations it just executed to
an :class:`OpCounter` — counts derived from the actual array shapes it
processed.  The cluster's :class:`~repro.simgrid.hardware.CPUSpec` converts
the accumulated :class:`~repro.simgrid.hardware.OpVector` into seconds.

This keeps timing deterministic (no wall-clock noise) while the computed
*results* — cluster centroids, detected vortices, defect catalogs — are
genuine.
"""

from __future__ import annotations

from repro.hotpath import hot
from repro.simgrid.hardware import OpVector

__all__ = ["OpCounter"]


class OpCounter:
    """Accumulates operation counts charged by kernels.

    >>> counter = OpCounter()
    >>> counter.charge(flop=100, mem=40)
    >>> counter.charge(branch=10)
    >>> counter.ops.total
    150.0
    """

    __slots__ = ("_ops",)

    def __init__(self) -> None:
        self._ops = OpVector.zero()

    @property
    def ops(self) -> OpVector:
        """The accumulated operation vector."""
        return self._ops

    @hot
    def charge(self, flop: float = 0.0, mem: float = 0.0, branch: float = 0.0) -> None:
        """Add operation counts (each must be >= 0)."""
        self._ops = self._ops + OpVector(flop=flop, mem=mem, branch=branch)

    def add(self, ops: OpVector) -> None:
        """Add a pre-built operation vector."""
        self._ops = self._ops + ops

    @hot
    def take(self) -> OpVector:
        """Return the accumulated vector and reset the counter."""
        out = self._ops
        self._ops = OpVector.zero()
        return out

    def reset(self) -> None:
        """Discard the accumulated counts."""
        self._ops = OpVector.zero()
