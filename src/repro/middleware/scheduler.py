"""Run configurations: the resource mapping a job executes under.

A configuration pairs a storage cluster (hosting ``n`` data nodes of the
repository) with a compute cluster (hosting ``c`` compute nodes) and the
bandwidth available between them.  The paper's constraint ``M >= N``
(compute nodes at least data nodes, Section 2.1) is validated here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import ClusterSpec

__all__ = ["GatherTopology", "RunConfig"]


class GatherTopology(str, enum.Enum):
    """How reduction objects reach the master.

    ``SERIAL`` is FREERIDE-G's scheme — the master receives ``c - 1``
    objects one after another (the serialized component the paper's
    Section 3.3.1 models).  ``TREE`` is the classic binomial-tree
    alternative provided for ablation: ``ceil(log2 c)`` rounds of parallel
    pairwise sends with merging along the way.
    """

    SERIAL = "serial"
    TREE = "tree"


@dataclass(frozen=True)
class RunConfig:
    """Resources for one execution (or one prediction target).

    Attributes
    ----------
    storage_cluster:
        Cluster hosting the data repository.
    compute_cluster:
        Cluster hosting the processing nodes (may be the same object).
    data_nodes:
        ``n`` — repository nodes the dataset is divided across.
    compute_nodes:
        ``c`` — processing nodes (``c >= n``).
    bandwidth:
        ``b`` — bytes/s available to *each data node* for repository-to-
        compute data movement.  Varied synthetically in the paper's
        Section 5.3 experiments.
    processes_per_node:
        SMP width used on each compute node (cluster-of-SMPs execution).
        Threads on one node share its memory bus and merge their reduction
        objects in shared memory, so only one object per *node* is
        communicated in the gather.
    remote_cache_bandwidth:
        When set, multi-pass applications cache chunks at a *non-local*
        site instead of on the compute nodes' local disks — the paper's
        "Finding Non-local Caching Resources" middleware role (Section
        2.1), used "if sufficient storage is not available at the site
        where computations are performed".  The value is the bytes/s each
        compute node gets to the caching site; ``None`` means local-disk
        caching.
    """

    storage_cluster: ClusterSpec
    compute_cluster: ClusterSpec
    data_nodes: int
    compute_nodes: int
    bandwidth: float
    processes_per_node: int = 1
    remote_cache_bandwidth: float | None = None
    gather_topology: GatherTopology = GatherTopology.SERIAL

    def __post_init__(self) -> None:
        if self.data_nodes <= 0 or self.compute_nodes <= 0:
            raise ConfigurationError("node counts must be positive")
        if self.compute_nodes < self.data_nodes:
            raise ConfigurationError(
                f"FREERIDE-G requires compute nodes >= data nodes "
                f"(got {self.compute_nodes} < {self.data_nodes})"
            )
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.storage_cluster.require_nodes(self.data_nodes)
        self.compute_cluster.require_nodes(self.compute_nodes)
        # Validates 1 <= processes_per_node <= smp_width.
        self.compute_cluster.smp_slowdown(self.processes_per_node)
        if (
            self.remote_cache_bandwidth is not None
            and self.remote_cache_bandwidth <= 0
        ):
            raise ConfigurationError("remote cache bandwidth must be positive")

    @property
    def compute_slots(self) -> int:
        """Total parallel reduction slots (nodes x processes per node)."""
        return self.compute_nodes * self.processes_per_node

    @property
    def label(self) -> str:
        """The paper's 'n-c' configuration notation (e.g. ``'8-16'``)."""
        return f"{self.data_nodes}-{self.compute_nodes}"

    @property
    def homogeneous(self) -> bool:
        """True when storage and compute share one cluster type."""
        return self.storage_cluster.name == self.compute_cluster.name

    def with_nodes(self, data_nodes: int, compute_nodes: int) -> "RunConfig":
        """A copy with a different node allocation."""
        return replace(self, data_nodes=data_nodes, compute_nodes=compute_nodes)

    def with_bandwidth(self, bandwidth: float) -> "RunConfig":
        """A copy with a different repository-to-compute bandwidth."""
        return replace(self, bandwidth=bandwidth)

    def with_processes_per_node(self, processes_per_node: int) -> "RunConfig":
        """A copy with a different SMP width."""
        return replace(self, processes_per_node=processes_per_node)

    def with_remote_cache(self, bandwidth: float | None) -> "RunConfig":
        """A copy caching at a non-local site reachable at ``bandwidth``."""
        return replace(self, remote_cache_bandwidth=bandwidth)

    def with_gather_topology(self, topology: GatherTopology) -> "RunConfig":
        """A copy gathering reduction objects over a different topology."""
        return replace(self, gather_topology=GatherTopology(topology))

    def with_clusters(
        self, storage_cluster: ClusterSpec, compute_cluster: ClusterSpec
    ) -> "RunConfig":
        """A copy targeting different hardware."""
        return replace(
            self,
            storage_cluster=storage_cluster,
            compute_cluster=compute_cluster,
        )
