"""Replica catalog: where each dataset can be retrieved from.

Datasets "may be replicated across multiple repositories.  In such cases,
the resource selection framework will choose the repository which will
allow data retrieval, data movement, and data processing at the lowest
cost" (Section 2.1).  The catalog maps dataset names to the repository
sites holding a copy; :mod:`repro.core.selection` enumerates
(replica, configuration) pairs against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simgrid.errors import TopologyError
from repro.simgrid.topology import GridTopology, SiteKind

__all__ = ["Replica", "ReplicaCatalog"]


@dataclass(frozen=True)
class Replica:
    """One copy of a dataset at a repository site."""

    dataset: str
    site: str


class ReplicaCatalog:
    """Dataset-name -> replica-sites mapping, validated against a topology."""

    def __init__(self, topology: Optional[GridTopology] = None) -> None:
        self._topology = topology
        self._replicas: Dict[str, List[Replica]] = {}

    def add(self, dataset: str, site: str) -> Replica:
        """Register a replica of ``dataset`` at ``site``."""
        if self._topology is not None:
            site_obj = self._topology.site(site)
            if site_obj.kind is not SiteKind.REPOSITORY:
                raise TopologyError(
                    f"site '{site}' is not a data repository; replicas can "
                    "only be placed at repository sites"
                )
        replica = Replica(dataset=dataset, site=site)
        existing = self._replicas.setdefault(dataset, [])
        if any(r.site == site for r in existing):
            raise TopologyError(
                f"dataset '{dataset}' already has a replica at '{site}'"
            )
        existing.append(replica)
        return replica

    def replicas_of(self, dataset: str) -> List[Replica]:
        """All replicas of ``dataset`` (raises when none exist)."""
        replicas = self._replicas.get(dataset)
        if not replicas:
            raise TopologyError(f"no replicas registered for dataset '{dataset}'")
        return list(replicas)

    def datasets(self) -> List[str]:
        """All dataset names with at least one replica."""
        return sorted(self._replicas)

    def __contains__(self, dataset: object) -> bool:
        return dataset in self._replicas

    def __len__(self) -> int:
        return len(self._replicas)
