"""Chunk-to-node assignment: the data-distribution role of the data server.

Two mappings are produced for a run with ``n`` data nodes and ``c`` compute
nodes (``c >= n``, the paper's constraint):

1. **Chunk -> data node**: chunks are striped round-robin over data nodes,
   so node ``d`` stores chunks ``d, d + n, d + 2n, ...``.  When the chunk
   count does not divide evenly, some nodes hold one more chunk — a genuine
   source of load imbalance the prediction model does not see.
2. **Compute node -> data node**: compute nodes are split into contiguous
   blocks, one block per data node, so every compute node receives data
   from exactly one data node (no receive-side convergence).  Within its
   block, a data node deals its chunks round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.hotpath import hot
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "ChunkAssignment",
    "assign_chunks",
    "split_evenly",
    "map_roles_to_survivors",
    "unshipped_chunks",
]


def split_evenly(total: int, parts: int) -> List[int]:
    """Sizes of ``parts`` contiguous blocks covering ``total`` items.

    The first ``total % parts`` blocks get one extra item.

    >>> split_evenly(10, 3)
    [4, 3, 3]
    """
    if parts <= 0:
        raise ConfigurationError("parts must be positive")
    if total < 0:
        raise ConfigurationError("total must be >= 0")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


@dataclass(frozen=True)
class ChunkAssignment:
    """The complete distribution plan for one run.

    Attributes
    ----------
    data_node_chunks:
        ``data_node_chunks[d]`` — chunk indices stored on data node ``d``.
    compute_node_chunks:
        ``compute_node_chunks[j]`` — chunk indices processed by compute
        node ``j``.
    compute_source:
        ``compute_source[j]`` — the data node that feeds compute node ``j``.
    """

    data_node_chunks: List[List[int]]
    compute_node_chunks: List[List[int]]
    compute_source: List[int]

    @property
    def num_data_nodes(self) -> int:
        return len(self.data_node_chunks)

    @property
    def num_compute_nodes(self) -> int:
        return len(self.compute_node_chunks)

    def served_compute_nodes(self, data_node: int) -> List[int]:
        """Compute nodes fed by ``data_node``.

        Raises :class:`~repro.simgrid.errors.ConfigurationError` for an
        out-of-range ``data_node`` rather than silently returning ``[]``.
        """
        if not 0 <= data_node < self.num_data_nodes:
            raise ConfigurationError(
                f"data node index {data_node} out of range "
                f"(0..{self.num_data_nodes - 1})"
            )
        return [
            j for j, src in enumerate(self.compute_source) if src == data_node
        ]


def assign_chunks(
    num_chunks: int, data_nodes: int, compute_nodes: int
) -> ChunkAssignment:
    """Build the distribution plan described in the module docstring.

    Raises :class:`~repro.simgrid.errors.ConfigurationError` when
    ``compute_nodes < data_nodes`` — FREERIDE-G does not consider M < N
    because its target applications "cannot effectively process data that
    is retrieved from a larger number of nodes" (Section 2.1).
    """
    if data_nodes <= 0 or compute_nodes <= 0:
        raise ConfigurationError("node counts must be positive")
    if compute_nodes < data_nodes:
        raise ConfigurationError(
            f"FREERIDE-G requires compute nodes >= data nodes "
            f"(got {compute_nodes} < {data_nodes})"
        )
    if num_chunks < compute_nodes:
        raise ConfigurationError(
            f"{num_chunks} chunks cannot keep {compute_nodes} compute nodes busy; "
            "use a smaller configuration or more chunks"
        )

    # 1. Stripe chunks over data nodes.
    data_node_chunks: List[List[int]] = [[] for _ in range(data_nodes)]
    for chunk in range(num_chunks):
        data_node_chunks[chunk % data_nodes].append(chunk)

    # 2. Contiguous blocks of compute nodes per data node.
    block_sizes = split_evenly(compute_nodes, data_nodes)
    compute_source: List[int] = []
    for d, size in enumerate(block_sizes):
        compute_source.extend([d] * size)

    # 3. Each data node deals its chunks round-robin to its block.
    compute_node_chunks: List[List[int]] = [[] for _ in range(compute_nodes)]
    start = 0
    for d, size in enumerate(block_sizes):
        block = list(range(start, start + size))
        start += size
        for i, chunk in enumerate(data_node_chunks[d]):
            compute_node_chunks[block[i % size]].append(chunk)

    return ChunkAssignment(
        data_node_chunks=data_node_chunks,
        compute_node_chunks=compute_node_chunks,
        compute_source=compute_source,
    )


@hot
def map_roles_to_survivors(
    compute_nodes: int, crashed: Sequence[int]
) -> Dict[int, List[int]]:
    """Executor -> reduction roles after compute-node crashes.

    Every original compute node is a *role*: its chunk list and its
    position in the gather order.  Recovery migrates a crashed node's
    whole role to a survivor — role-level (not chunk-level)
    redistribution keeps the reduction-object merge tree identical to the
    fault-free run, which is what makes recovered results bit-identical
    (see DESIGN.md, "Fault model and recovery semantics").

    Surviving nodes keep their own role; crashed roles are dealt
    round-robin over the survivors in node order.

    >>> map_roles_to_survivors(4, [2])
    {0: [0, 2], 1: [1], 3: [3]}
    """
    if compute_nodes <= 0:
        raise ConfigurationError("compute node count must be positive")
    crashed_set = set(crashed)
    if not all(0 <= j < compute_nodes for j in crashed_set):
        raise ConfigurationError(
            f"crashed node indices {sorted(crashed_set)} out of range "
            f"(0..{compute_nodes - 1})"
        )
    survivors = [j for j in range(compute_nodes) if j not in crashed_set]
    if not survivors:
        raise ConfigurationError("at least one compute node must survive")
    roles = {j: [j] for j in survivors}
    for i, role in enumerate(sorted(crashed_set)):
        roles[survivors[i % len(survivors)]].append(role)
    return roles


def unshipped_chunks(
    assignment: ChunkAssignment, data_node: int, shipped_fraction: float
) -> List[int]:
    """The chunk tail a crashed data node had not yet shipped.

    A data node streams its batch in order; crashing after
    ``shipped_fraction`` of it leaves the final
    ``len(batch) - floor(shipped_fraction * len(batch))`` chunks to be
    re-fetched from a failover replica.
    """
    if not 0.0 <= shipped_fraction <= 1.0:
        raise ConfigurationError("shipped fraction must be within [0, 1]")
    if not 0 <= data_node < assignment.num_data_nodes:
        raise ConfigurationError(
            f"data node index {data_node} out of range "
            f"(0..{assignment.num_data_nodes - 1})"
        )
    batch = assignment.data_node_chunks[data_node]
    shipped = int(shipped_fraction * len(batch))
    return list(batch[shipped:])
