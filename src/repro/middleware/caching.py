"""Compute-node local-disk cache for multi-pass applications.

Per Section 2.1: "Data Caching: if multiple passes over the data chunks
will be required, the chunks are saved to a local disk" and on later passes
"each subsequent pass retrieves data chunks from local disk, instead of
receiving it via network".

Writes stream sequentially (no per-chunk seek); reads pay the per-chunk
seek.  Cache time is charged inside the *compute* component of the
breakdown because it scales with the number of compute nodes, like ``t_c``
in the paper's model (see :class:`repro.simgrid.trace.PassRecord`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import DiskSpec

__all__ = ["CacheModel"]


@dataclass(frozen=True)
class CacheModel:
    """Timing model for one compute node's chunk cache."""

    disk: DiskSpec

    def write_time(self, chunk_sizes: Sequence[float]) -> float:
        """Seconds to append the received chunks to the cache file."""
        total = 0.0
        for size in chunk_sizes:
            if size < 0:
                raise ConfigurationError("chunk sizes must be >= 0")
            total += size / self.disk.stream_bw
        return total

    def read_time(self, chunk_sizes: Sequence[float]) -> float:
        """Seconds to re-read the cached chunks (seek per chunk)."""
        total = 0.0
        for size in chunk_sizes:
            if size < 0:
                raise ConfigurationError("chunk sizes must be >= 0")
            total += self.disk.seek_s + size / self.disk.stream_bw
        return total
