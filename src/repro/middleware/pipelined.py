"""Pipelined execution: what if retrieval, shipping and processing overlap?

The paper's model — and FREERIDE-G's measured breakdowns — treat
``T_disk``, ``T_network`` and ``T_compute`` as non-overlapping phases.  A
more aggressive middleware could *stream* chunks: while chunk ``i`` is
being processed, chunk ``i+1`` is in flight and chunk ``i+2`` is being
read.  :class:`PipelinedRuntime` executes exactly that schedule on the
simulator's FIFO resources (one disk and one NIC per data node, one CPU
per compute node) and reports the resulting makespan.

This is an *ablation* runtime: it quantifies how much the additive
assumption would overestimate a pipelining middleware (the bench
``bench_ablation_pipelining.py``), and how much headroom chunk streaming
leaves on the table.  The computation itself is identical to
:class:`~repro.middleware.runtime.FreerideGRuntime` — results match
bit for bit, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.middleware.api import GeneralizedReduction
from repro.middleware.caching import CacheModel
from repro.middleware.chunks import ChunkAssignment, assign_chunks
from repro.middleware.dataset import Dataset
from repro.middleware.instrument import OpCounter
from repro.middleware.scheduler import RunConfig
from repro.simgrid.engine import FIFOServer
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.network import LinkModel

__all__ = ["PipelinedRunResult", "PipelinedRuntime"]

MAX_PASSES = 1000


@dataclass
class PipelinedRunResult:
    """Outcome of a pipelined execution.

    ``makespan`` is the simulated wall time with chunk streaming;
    ``resource_busy`` holds, per resource class, the maximum busy time of
    any single resource (how close each stage is to being the pipeline
    bottleneck).
    """

    result: Any
    makespan: float
    serial_tail: float  # gather + global reduction + broadcast time
    resource_busy: Dict[str, float]
    assignment: ChunkAssignment
    num_passes: int


class PipelinedRuntime:
    """Chunk-streaming execution of generalized reductions."""

    def __init__(self, config: RunConfig) -> None:
        if config.processes_per_node != 1:
            raise ConfigurationError(
                "the pipelined runtime models one process per node"
            )
        if config.remote_cache_bandwidth is not None:
            raise ConfigurationError(
                "the pipelined runtime models local-disk caching only"
            )
        self.config = config

    def execute(
        self, app: GeneralizedReduction, dataset: Dataset
    ) -> PipelinedRunResult:
        """Run ``app`` with per-chunk pipelining; returns the makespan."""
        config = self.config
        assignment = assign_chunks(
            dataset.num_chunks, config.data_nodes, config.compute_nodes
        )
        storage = config.storage_cluster
        compute = config.compute_cluster
        link = LinkModel(
            latency_s=storage.node.nic.latency_s,
            bw=min(storage.node.nic.bw, config.bandwidth),
        )
        disk_bw = storage.effective_disk_bw(config.data_nodes)
        cache = CacheModel(compute.effective_cache_disk)

        destination = [0] * dataset.num_chunks
        for j, chunks in enumerate(assignment.compute_node_chunks):
            for chunk in chunks:
                destination[chunk] = j

        app.begin(dict(dataset.meta))
        caching = app.multi_pass_hint
        cached = False

        makespan = 0.0
        serial_tail = 0.0
        busy: Dict[str, float] = {"disk": 0.0, "network": 0.0, "cpu": 0.0}
        passes = 0

        for pass_index in range(MAX_PASSES):
            passes += 1
            fed_from_network = not cached

            disks = [FIFOServer(f"disk{d}") for d in range(config.data_nodes)]
            nics = [FIFOServer(f"nic{d}") for d in range(config.data_nodes)]
            cpus = [
                FIFOServer(f"cpu{j}") for j in range(config.compute_nodes)
            ]

            # Start-of-pass fixed costs block each resource before its
            # first service.
            for disk in disks:
                disk.serve(0.0, storage.node_startup_s)
            for cpu in cpus:
                cpu.serve(0.0, compute.compute_pass_startup_s)

            local_objects: List[Any] = []
            counters = [OpCounter() for _ in range(config.compute_nodes)]
            for j in range(config.compute_nodes):
                local_objects.append(app.make_local_object())

            # Walk chunks in global order so per-data-node FIFO order
            # matches the phased runtime's round-robin hand-out.
            recv_scale = config.data_nodes / config.compute_nodes
            for chunk in range(dataset.num_chunks):
                d = chunk % config.data_nodes
                j = destination[chunk]
                nbytes = dataset.chunk_nbytes(chunk)

                app.process_chunk(
                    local_objects[j], dataset.chunk_payload(chunk), counters[j]
                )
                kernel = compute.node.cpu.compute_time(counters[j].take())
                service = kernel + compute.chunk_dispatch_overhead_s

                if fed_from_network:
                    seek = storage.node.disk.seek_s
                    _, read_end = disks[d].serve(0.0, seek + nbytes / disk_bw)
                    _, net_end = nics[d].serve(
                        read_end, link.message_time(nbytes)
                    )
                    arrival = net_end
                    service += compute.chunk_receive_overhead_s * recv_scale
                    if caching:
                        service += cache.write_time([nbytes])
                else:
                    arrival = 0.0
                    service += cache.read_time([nbytes])
                cpus[j].serve(arrival, service)

            local_done = max(cpu.free_at for cpu in cpus)
            busy["disk"] = max(busy["disk"], max(d.busy_time for d in disks))
            busy["network"] = max(
                busy["network"], max(n.busy_time for n in nics)
            )
            busy["cpu"] = max(busy["cpu"], max(c.busy_time for c in cpus))

            # Gather + global reduction + broadcast are serialized after
            # the pipeline drains, as in FREERIDE-G.
            tail = sum(
                compute.gather_message_time(app.object_nbytes(obj))
                for obj in local_objects[1:]
            )
            master = OpCounter()
            combined = app.combine(local_objects, master)
            another_pass = app.update(combined, master)
            tail += (
                compute.node.cpu.compute_time(master.take())
                + len(local_objects) * compute.gather_deserialize_s
            )
            if app.broadcasts_result:
                tail += (
                    config.compute_nodes - 1
                ) * compute.gather_message_time(app.broadcast_nbytes(combined))

            makespan += local_done + tail
            serial_tail += tail

            if fed_from_network and caching:
                cached = True
            if not another_pass:
                break
        else:
            raise ConfigurationError(
                f"application '{app.name}' did not terminate within "
                f"{MAX_PASSES} passes"
            )

        return PipelinedRunResult(
            result=app.result(),
            makespan=makespan,
            serial_tail=serial_tail,
            resource_busy=busy,
            assignment=assignment,
            num_passes=passes,
        )
