"""The FREERIDE-G data server: retrieval, distribution, communication.

One data-server process runs on every on-line repository node (Section 2.1
of the paper).  Its three roles map to three methods here:

- **Data retrieval** — chunks are read from the repository disks; modelled
  by :class:`repro.simgrid.disk.RepositoryDiskSystem`, including the shared
  backplane that makes 8-node retrieval sub-linear.
- **Data distribution** — every chunk is assigned a destination compute
  node; the plan comes from :func:`repro.middleware.chunks.assign_chunks`.
- **Data communication** — each data node streams its chunks through its
  NIC at the configured repository-to-compute bandwidth.

Retrieval and communication are distinct, non-overlapping phases, matching
the additive ``T_disk + T_network`` structure the prediction framework
assumes.
"""

from __future__ import annotations

from typing import List

from repro.middleware.chunks import ChunkAssignment
from repro.middleware.dataset import Dataset
from repro.middleware.scheduler import RunConfig
from repro.simgrid.disk import RepositoryDiskSystem
from repro.simgrid.network import LinkModel

__all__ = ["DataServer"]


class DataServer:
    """Timing model for the repository side of one run."""

    def __init__(
        self, config: RunConfig, dataset: Dataset, assignment: ChunkAssignment
    ) -> None:
        self.config = config
        self.dataset = dataset
        self.assignment = assignment
        self._disks = RepositoryDiskSystem(
            config.storage_cluster, config.data_nodes
        )
        nic = config.storage_cluster.node.nic
        self._link = LinkModel(
            latency_s=nic.latency_s,
            bw=min(nic.bw, config.bandwidth),
        )

    @property
    def per_node_chunk_sizes(self) -> List[List[float]]:
        """Chunk byte sizes grouped by owning data node."""
        return [
            [self.dataset.chunk_nbytes(c) for c in chunks]
            for chunks in self.assignment.data_node_chunks
        ]

    def retrieval_time(self) -> float:
        """Phase time to read every chunk from the repository disks."""
        return self._disks.retrieval_time(self.per_node_chunk_sizes)

    def communication_time(self) -> float:
        """Phase time to ship every chunk to its destination compute node.

        Each data node's NIC serializes its own chunk stream; the phase
        completes when the slowest data node finishes.  Compute nodes never
        receive from more than one data node (contiguous-block mapping), so
        there is no receive-side convergence bottleneck.
        """
        per_node = (
            self._link.stream_time(sizes) for sizes in self.per_node_chunk_sizes
        )
        return max(per_node)

    def effective_disk_bw(self) -> float:
        """Backplane-contended per-node disk bandwidth (for diagnostics)."""
        return self._disks.per_node_effective_bw
