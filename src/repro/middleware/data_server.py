"""The FREERIDE-G data server: retrieval, distribution, communication.

One data-server process runs on every on-line repository node (Section 2.1
of the paper).  Its three roles map to three methods here:

- **Data retrieval** — chunks are read from the repository disks; modelled
  by :class:`repro.simgrid.disk.RepositoryDiskSystem`, including the shared
  backplane that makes 8-node retrieval sub-linear.
- **Data distribution** — every chunk is assigned a destination compute
  node; the plan comes from :func:`repro.middleware.chunks.assign_chunks`.
- **Data communication** — each data node streams its chunks through its
  NIC at the configured repository-to-compute bandwidth.

Retrieval and communication are distinct, non-overlapping phases, matching
the additive ``T_disk + T_network`` structure the prediction framework
assumes.

For fault-tolerant executions the server also exposes per-node phase times
(so retries and degraded links shift the phase-ending maximum correctly)
and the replica re-fetch costing used when a data node crashes
mid-communication.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.middleware.chunks import ChunkAssignment
from repro.middleware.dataset import Dataset
from repro.middleware.scheduler import RunConfig
from repro.simgrid.disk import RepositoryDiskSystem
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.network import LinkModel

__all__ = ["DataServer"]


class DataServer:
    """Timing model for the repository side of one run."""

    def __init__(
        self, config: RunConfig, dataset: Dataset, assignment: ChunkAssignment
    ) -> None:
        if assignment.num_data_nodes == 0:
            raise ConfigurationError(
                "chunk assignment has no data nodes; a data server needs "
                "at least one repository node to serve from"
            )
        self.config = config
        self.dataset = dataset
        self.assignment = assignment
        self._disks = RepositoryDiskSystem(
            config.storage_cluster, config.data_nodes
        )
        nic = config.storage_cluster.node.nic
        self._link = LinkModel(
            latency_s=nic.latency_s,
            bw=min(nic.bw, config.bandwidth),
        )
        # Dataset and assignment are immutable for the server's lifetime,
        # so the per-node size lists are computed once (REP303 burn-down:
        # every phase method used to rebuild them per call).
        chunk_nbytes = dataset.chunk_nbytes
        self._per_node_chunk_sizes = [
            [chunk_nbytes(c) for c in chunks]
            for chunks in assignment.data_node_chunks
        ]

    @property
    def per_node_chunk_sizes(self) -> List[List[float]]:
        """Chunk byte sizes grouped by owning data node."""
        return self._per_node_chunk_sizes

    def retrieval_time(self) -> float:
        """Phase time to read every chunk from the repository disks."""
        return self._disks.retrieval_time(self.per_node_chunk_sizes)

    def node_retrieval_times(self) -> List[float]:
        """Per-data-node batch read times (the phase ends at their max)."""
        return [
            self._disks.node_read_time(i, sizes)
            for i, sizes in enumerate(self.per_node_chunk_sizes)
        ]

    def communication_time(self) -> float:
        """Phase time to ship every chunk to its destination compute node.

        Each data node's NIC serializes its own chunk stream; the phase
        completes when the slowest data node finishes.  Compute nodes never
        receive from more than one data node (contiguous-block mapping), so
        there is no receive-side convergence bottleneck.

        Raises :class:`~repro.simgrid.errors.ConfigurationError` with a
        clear message when the assignment lists no data nodes, instead of
        letting ``max()`` fail on an empty sequence.
        """
        if not self.assignment.data_node_chunks:
            raise ConfigurationError(
                "cannot compute communication time: the chunk assignment "
                "contains no data-node chunk lists"
            )
        per_node_chunk_sizes = self.per_node_chunk_sizes
        per_node = (
            self._link.stream_time(sizes) for sizes in per_node_chunk_sizes
        )
        return max(per_node)

    def node_stream_times(
        self, link_factors: Optional[Sequence[float]] = None
    ) -> List[float]:
        """Per-data-node communication times, optionally degraded.

        ``link_factors[i]`` multiplies node ``i``'s stream time (a factor
        of 2 models a link at half bandwidth); ``None`` means all links
        are healthy.
        """
        sizes_per_node = self.per_node_chunk_sizes
        if link_factors is None:
            return [self._link.stream_time(sizes) for sizes in sizes_per_node]
        if len(link_factors) != len(sizes_per_node):
            raise ConfigurationError(
                f"expected {len(sizes_per_node)} link factors, "
                f"got {len(link_factors)}"
            )
        return [
            self._link.stream_time(sizes) * factor
            for sizes, factor in zip(sizes_per_node, link_factors)
        ]

    def chunk_read_time(self, chunk: int) -> float:
        """Seconds one repository disk takes to read chunk ``chunk``."""
        bw = self._disks.per_node_effective_bw
        spec = self.config.storage_cluster.node.disk
        return spec.read_time(self.dataset.chunk_nbytes(chunk), effective_bw=bw)

    def refetch_cost(
        self, chunks: Sequence[int], link_factor: float = 1.0
    ) -> Tuple[float, float]:
        """(disk, network) cost of re-serving ``chunks`` from a replica.

        Used for data-node failover (unshipped tail after a crash) and
        compute-node recovery (re-feeding a migrated role's chunks).  The
        replica pays a fresh server startup, reads the chunks on one node
        (uncontended: its siblings are idle for this batch), and streams
        them over a repository-to-compute link at the run's bandwidth.
        """
        if not chunks:
            return 0.0, 0.0
        if link_factor < 1.0:
            raise ConfigurationError("link degradation factor must be >= 1")
        sizes = [self.dataset.chunk_nbytes(c) for c in chunks]
        cluster = self.config.storage_cluster
        spec = cluster.node.disk
        disk = cluster.node_startup_s + sum(
            spec.read_time(size, effective_bw=spec.stream_bw) for size in sizes
        )
        network = self._link.stream_time(sizes) * link_factor
        return disk, network

    def effective_disk_bw(self) -> float:
        """Backplane-contended per-node disk bandwidth (for diagnostics)."""
        return self._disks.per_node_effective_bw
