"""The FREERIDE-G compute server: communication, computation, caching.

One compute-server process runs on each processing node (Section 2.1).
The runtime asks this class to price each node's share of a pass:

- **Receive handling** — per-chunk receive/demultiplex work during the
  initial (network-fed) pass.  It is on the critical path only to the
  degree the incoming stream saturates the node, so it is scaled by
  ``data_nodes / compute_nodes``: with more compute sinks than data
  sources, inter-arrival gaps hide the handling cost.  The prediction
  framework does not model this term — it is the main reason
  configurations with equal data and compute node counts are the hardest
  to predict (Figures 7-10 of the paper).
- **Computation** — the per-chunk kernel time from charged operation
  vectors, plus a fixed per-chunk dispatch overhead (API upcall, buffer
  management).
- **Caching** — writes on the first pass and reads on later passes, priced
  by :class:`repro.middleware.caching.CacheModel`.
"""

from __future__ import annotations

from typing import Sequence

from repro.middleware.caching import CacheModel
from repro.middleware.scheduler import RunConfig
from repro.simgrid.hardware import OpVector
from repro.simgrid.network import LinkModel

__all__ = ["ComputeServer"]


class ComputeServer:
    """Timing model for one compute node."""

    __slots__ = (
        "config",
        "node_index",
        "cluster",
        "cache",
        "_remote_cache_link",
    )

    def __init__(self, config: RunConfig, node_index: int) -> None:
        self.config = config
        self.node_index = node_index
        self.cluster = config.compute_cluster
        self.cache = CacheModel(self.cluster.effective_cache_disk)
        if config.remote_cache_bandwidth is not None:
            self._remote_cache_link = LinkModel(
                latency_s=self.cluster.node.nic.latency_s,
                bw=min(self.cluster.node.nic.bw, config.remote_cache_bandwidth),
            )
        else:
            self._remote_cache_link = None

    def receive_overhead(self, num_chunks: int) -> float:
        """Critical-path share of per-chunk receive handling (pass 0)."""
        saturation = self.config.data_nodes / self.config.compute_nodes
        return (
            num_chunks * self.cluster.chunk_receive_overhead_s * saturation
        )

    def compute_time(self, chunk_ops: Sequence[OpVector]) -> float:
        """Kernel time for this node's chunks, plus fixed overheads.

        The per-pass startup term does not scale with data volume, which
        makes node compute time affine (not proportional) in chunk count —
        one of the non-idealities the linear prediction model does not see.
        """
        cpu = self.cluster.node.cpu
        kernel = sum(cpu.compute_time(ops) for ops in chunk_ops)
        dispatch = len(chunk_ops) * self.cluster.chunk_dispatch_overhead_s
        return self.cluster.compute_pass_startup_s + kernel + dispatch

    def smp_compute_time(
        self, thread_chunk_ops: Sequence[Sequence[OpVector]]
    ) -> float:
        """Kernel time with one op-list per process on this node.

        Threads run concurrently, slowed by memory-bus contention; the
        node's local stage ends with its slowest thread.  Pass startup is
        paid once per node.
        """
        processes = len(thread_chunk_ops)
        slowdown = self.cluster.smp_slowdown(processes)
        cpu = self.cluster.node.cpu
        per_thread = []
        for chunk_ops in thread_chunk_ops:
            kernel = sum(cpu.compute_time(ops) for ops in chunk_ops)
            dispatch = len(chunk_ops) * self.cluster.chunk_dispatch_overhead_s
            per_thread.append(kernel * slowdown + dispatch)
        return self.cluster.compute_pass_startup_s + max(per_thread)

    def cache_write_time(self, chunk_sizes: Sequence[float]) -> float:
        """Seconds to persist received chunks for later passes.

        Local-disk caching by default; when the run uses a non-local
        caching site, chunks are shipped there over the network instead.
        """
        if self._remote_cache_link is not None:
            return self._remote_cache_link.stream_time(chunk_sizes)
        return self.cache.write_time(chunk_sizes)

    def cache_read_time(self, chunk_sizes: Sequence[float]) -> float:
        """Seconds to restore cached chunks on a later pass."""
        if self._remote_cache_link is not None:
            return self._remote_cache_link.stream_time(chunk_sizes)
        return self.cache.read_time(chunk_sizes)
