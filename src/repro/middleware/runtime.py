"""The FREERIDE-G execution engine.

:class:`FreerideGRuntime` drives a :class:`~repro.middleware.api.GeneralizedReduction`
application over a chunked dataset on a given resource configuration and
produces the application result together with the execution-time breakdown
the prediction framework consumes.

One pass executes the canonical phase sequence (phases do not overlap,
matching the paper's additive model):

1. **Retrieval** (pass 0, or any pass when the application did not request
   caching): repository disks read every chunk — ``t_disk``.
2. **Communication** (same passes): data-node NICs stream chunks to their
   destination compute nodes — ``t_network``.
3. **Compute**: every node folds its chunks into its replicated reduction
   object (kernel time from charged op vectors), pays receive handling and
   cache traffic; then reduction objects are gathered serially at the
   master (``T_ro``), globally reduced (``T_g``) and — for iterative
   applications — the combined object is broadcast back.

The application's computation is performed **for real**: the reduction
objects contain genuine centroids / sufficient statistics / feature lists,
and results are invariant to the node configuration (associativity of the
updates), which the integration tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List

from repro.middleware.api import GeneralizedReduction
from repro.middleware.chunks import ChunkAssignment, assign_chunks
from repro.middleware.compute_server import ComputeServer
from repro.middleware.data_server import DataServer
from repro.middleware.dataset import Dataset
from repro.middleware.instrument import OpCounter
from repro.middleware.scheduler import GatherTopology, RunConfig
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import ClusterSpec
from repro.simgrid.trace import PassRecord, TimeBreakdown

__all__ = ["RunResult", "FreerideGRuntime"]

#: Safety valve for iterative applications that never converge.
MAX_PASSES = 1000


@dataclass
class RunResult:
    """Outcome of one middleware execution."""

    result: Any
    breakdown: TimeBreakdown
    assignment: ChunkAssignment

    @property
    def total_time(self) -> float:
        """Simulated wall time of the run."""
        return self.breakdown.total


def _tree_gather(
    app: GeneralizedReduction,
    objects: List[Any],
    cluster: ClusterSpec,
) -> tuple[Any, float]:
    """Binomial-tree gather with merge-on-receive.

    Round ``r`` sends the object of every node whose index has bit ``r``
    set (and lower bits clear) to the node ``2^r`` below it; transfers in a
    round run in parallel, so the round costs its slowest
    (message + handling + merge).  Returns the root's merged object and
    the total gather time.
    """
    holders = list(objects)
    t_ro = 0.0
    stride = 1
    while stride < len(holders):
        round_times = []
        for receiver in range(0, len(holders), 2 * stride):
            sender = receiver + stride
            if sender >= len(holders):
                continue
            size = app.object_nbytes(holders[sender])
            merge_counter = OpCounter()
            holders[receiver] = app.merge_local(
                [holders[receiver], holders[sender]], merge_counter
            )
            merge_time = cluster.node.cpu.compute_time(merge_counter.take())
            round_times.append(
                cluster.gather_message_time(size)
                + cluster.gather_deserialize_s
                + merge_time
            )
        if round_times:
            t_ro += max(round_times)
        stride *= 2
    return holders[0], t_ro


class FreerideGRuntime:
    """Executes generalized-reduction applications on simulated resources."""

    def __init__(self, config: RunConfig) -> None:
        self.config = config

    def execute(self, app: GeneralizedReduction, dataset: Dataset) -> RunResult:
        """Run ``app`` over ``dataset``; returns result + time breakdown."""
        config = self.config
        assignment = assign_chunks(
            dataset.num_chunks, config.data_nodes, config.compute_nodes
        )
        data_server = DataServer(config, dataset, assignment)
        compute_servers = [
            ComputeServer(config, j) for j in range(config.compute_nodes)
        ]
        per_node_chunk_sizes = [
            [dataset.chunk_nbytes(c) for c in chunks]
            for chunks in assignment.compute_node_chunks
        ]

        breakdown = TimeBreakdown(
            metadata={
                "app": app.name,
                "config": config.label,
                "dataset": dataset.name,
                "dataset_nbytes": dataset.nbytes,
                "bandwidth": config.bandwidth,
                "storage_cluster": config.storage_cluster.name,
                "compute_cluster": config.compute_cluster.name,
                "processes_per_node": config.processes_per_node,
            }
        )

        app.begin(dict(dataset.meta))
        caching = app.multi_pass_hint
        cached = False
        max_object_bytes = 0.0

        for pass_index in range(MAX_PASSES):
            fed_from_network = not cached
            t_disk = t_network = 0.0
            if fed_from_network:
                t_disk = data_server.retrieval_time()
                t_network = data_server.communication_time()

            # ---- per-node local reduction -------------------------------
            # Each compute node runs `processes_per_node` reduction threads
            # over its chunks; thread objects are merged in shared memory
            # so a single object per node enters the gather.
            ppn = config.processes_per_node
            node_times: List[float] = []
            node_cache_times: List[float] = []
            local_objects: List[Any] = []
            for j, server in enumerate(compute_servers):
                node_chunks = assignment.compute_node_chunks[j]
                counter = OpCounter()
                thread_objects: List[Any] = []
                thread_chunk_ops: List[List] = []
                for t in range(ppn):
                    obj = app.make_local_object()
                    chunk_ops = []
                    for chunk in node_chunks[t::ppn]:
                        app.process_chunk(
                            obj, dataset.chunk_payload(chunk), counter
                        )
                        chunk_ops.append(counter.take())
                    thread_objects.append(obj)
                    thread_chunk_ops.append(chunk_ops)

                if ppn == 1:
                    node_object = thread_objects[0]
                    merge_time = 0.0
                else:
                    merge_counter = OpCounter()
                    node_object = app.merge_local(thread_objects, merge_counter)
                    merge_time = config.compute_cluster.node.cpu.compute_time(
                        merge_counter.take()
                    )
                local_objects.append(node_object)

                cache_time = 0.0
                recv_time = 0.0
                if fed_from_network:
                    recv_time = server.receive_overhead(len(node_chunks))
                    if caching:
                        cache_time = server.cache_write_time(
                            per_node_chunk_sizes[j]
                        )
                else:
                    cache_time = server.cache_read_time(per_node_chunk_sizes[j])

                kernel_time = server.smp_compute_time(thread_chunk_ops)
                node_cache_times.append(cache_time)
                node_times.append(
                    kernel_time + merge_time + recv_time + cache_time
                )

            # Phase barrier: the pass's local stage ends with the slowest
            # node; attribute the cache share of the critical-path node.
            slowest = max(range(len(node_times)), key=node_times.__getitem__)
            t_local_total = node_times[slowest]
            t_cache = node_cache_times[slowest]
            t_local_compute = t_local_total - t_cache

            # ---- gather reduction objects at the master -----------------
            object_sizes = [app.object_nbytes(obj) for obj in local_objects]
            max_object_bytes = max(max_object_bytes, max(object_sizes))
            cluster = config.compute_cluster
            if (
                config.gather_topology is GatherTopology.TREE
                and len(local_objects) > 1
            ):
                root_object, t_ro = _tree_gather(app, local_objects, cluster)
                combine_inputs: List[Any] = [root_object]
            else:
                t_ro = sum(
                    cluster.gather_message_time(size)
                    for size in object_sizes[1:]
                )
                combine_inputs = local_objects

            # ---- serialized global reduction ----------------------------
            # The master folds every reduction object — its own included —
            # paying a fixed handling cost per object plus the charged
            # merge/update work.  (Under a tree gather the pairwise merges
            # already happened along the tree; the master processes the
            # single merged object.)
            master = OpCounter()
            combined = app.combine(combine_inputs, master)
            another_pass = app.update(combined, master)
            t_g = (
                cluster.node.cpu.compute_time(master.take())
                + len(combine_inputs) * cluster.gather_deserialize_s
            )

            if app.broadcasts_result:
                bcast = app.broadcast_nbytes(combined)
                if (
                    config.gather_topology is GatherTopology.TREE
                    and config.compute_nodes > 1
                ):
                    rounds = math.ceil(math.log2(config.compute_nodes))
                    t_ro += rounds * cluster.gather_message_time(bcast)
                else:
                    t_ro += (
                        config.compute_nodes - 1
                    ) * cluster.gather_message_time(bcast)
                breakdown.metadata["broadcast_nbytes"] = bcast

            breakdown.add_pass(
                PassRecord(
                    index=pass_index,
                    t_disk=t_disk,
                    t_network=t_network,
                    t_local_compute=t_local_compute,
                    t_cache=t_cache,
                    t_ro=t_ro,
                    t_g=t_g,
                )
            )

            if fed_from_network and caching:
                cached = True
            if not another_pass:
                break
        else:
            raise ConfigurationError(
                f"application '{app.name}' did not terminate within "
                f"{MAX_PASSES} passes"
            )

        breakdown.max_reduction_object_bytes = max_object_bytes
        breakdown.metadata["gather_rounds"] = breakdown.num_passes
        breakdown.metadata["broadcasts_result"] = app.broadcasts_result
        return RunResult(
            result=app.result(), breakdown=breakdown, assignment=assignment
        )
