"""The FREERIDE-G execution engine.

:class:`FreerideGRuntime` drives a :class:`~repro.middleware.api.GeneralizedReduction`
application over a chunked dataset on a given resource configuration and
produces the application result together with the execution-time breakdown
the prediction framework consumes.

One pass executes the canonical phase sequence (phases do not overlap,
matching the paper's additive model):

1. **Retrieval** (pass 0, or any pass when the application did not request
   caching): repository disks read every chunk — ``t_disk``.
2. **Communication** (same passes): data-node NICs stream chunks to their
   destination compute nodes — ``t_network``.
3. **Compute**: every node folds its chunks into its replicated reduction
   object (kernel time from charged op vectors), pays receive handling and
   cache traffic; then reduction objects are gathered serially at the
   master (``T_ro``), globally reduced (``T_g``) and — for iterative
   applications — the combined object is broadcast back.

The application's computation is performed **for real**: the reduction
objects contain genuine centroids / sufficient statistics / feature lists,
and results are invariant to the node configuration (associativity of the
updates), which the integration tests assert.

Fault tolerance
---------------
Installing a :class:`~repro.faults.injector.FaultInjector` arms the
recovery paths (see DESIGN.md, "Fault model and recovery semantics"):

- transient chunk-read errors retry under the injector's
  :class:`~repro.faults.retry.RetryPolicy`, charged into ``t_disk``;
- a crashed data node fails over to a replica (selected through the
  injector, backed by the :class:`~repro.middleware.replica.ReplicaCatalog`
  when attached) and re-ships only its unshipped chunk tail;
- a crashed compute node's reduction *role* migrates to a survivor and the
  pass restarts from the last reduction-object checkpoint; checkpoint
  writes are charged into ``t_ckpt``.

Recovery is **role-preserving**: the reduction-object merge tree of a
faulted run is identical to the fault-free run's, so application results
are bit-identical — only timing changes.  With no injector installed the
fault-free code path is byte-for-byte the pre-fault-tolerance engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.hotpath import hot
from repro.errors import RecoveryExhaustedError
from repro.middleware.api import GeneralizedReduction
from repro.middleware.caching import CacheModel
from repro.middleware.chunks import (
    ChunkAssignment,
    assign_chunks,
    map_roles_to_survivors,
    unshipped_chunks,
)
from repro.middleware.compute_server import ComputeServer
from repro.middleware.data_server import DataServer
from repro.middleware.dataset import Dataset
from repro.middleware.instrument import OpCounter
from repro.middleware.scheduler import GatherTopology, RunConfig
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import ClusterSpec
from repro.simgrid.trace import PassRecord, TimeBreakdown

__all__ = ["RunResult", "FreerideGRuntime"]

#: Safety valve for iterative applications that never converge.
MAX_PASSES = 1000


@dataclass
class RunResult:
    """Outcome of one middleware execution."""

    result: Any
    breakdown: TimeBreakdown
    assignment: ChunkAssignment

    @property
    def total_time(self) -> float:
        """Simulated wall time of the run."""
        return self.breakdown.total


def _tree_gather(
    app: GeneralizedReduction,
    objects: List[Any],
    cluster: ClusterSpec,
) -> tuple[Any, float]:
    """Binomial-tree gather with merge-on-receive.

    Round ``r`` sends the object of every node whose index has bit ``r``
    set (and lower bits clear) to the node ``2^r`` below it; transfers in a
    round run in parallel, so the round costs its slowest
    (message + handling + merge).  Returns the root's merged object and
    the total gather time.
    """
    holders = list(objects)
    t_ro = 0.0
    stride = 1
    while stride < len(holders):
        round_times = []
        for receiver in range(0, len(holders), 2 * stride):
            sender = receiver + stride
            if sender >= len(holders):
                continue
            size = app.object_nbytes(holders[sender])
            merge_counter = OpCounter()
            holders[receiver] = app.merge_local(
                [holders[receiver], holders[sender]], merge_counter
            )
            merge_time = cluster.node.cpu.compute_time(merge_counter.take())
            round_times.append(
                cluster.gather_message_time(size)
                + cluster.gather_deserialize_s
                + merge_time
            )
        if round_times:
            t_ro += max(round_times)
        stride *= 2
    return holders[0], t_ro


class FreerideGRuntime:
    """Executes generalized-reduction applications on simulated resources.

    Parameters
    ----------
    config:
        The resource configuration to execute under.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector`.  ``None``
        (the default) runs the original healthy-grid engine with zero
        added overhead; an injector arms retries, replica failover,
        role migration and reduction-object checkpointing.
    """

    def __init__(self, config: RunConfig, faults: Optional[Any] = None) -> None:
        self.config = config
        self.faults = faults

    # ------------------------------------------------------------------
    # Faulted-phase helpers
    # ------------------------------------------------------------------

    @hot
    def _transfer_phases_with_faults(
        self,
        pass_index: int,
        data_server: DataServer,
        assignment: ChunkAssignment,
        events: List[Dict[str, Any]],
    ) -> Tuple[float, float]:
        """Retrieval + communication times under the installed injector."""
        faults = self.faults
        policy = faults.policy
        per_node_sizes = data_server.per_node_chunk_sizes
        node_read = data_server.node_retrieval_times()

        # Transient chunk-read errors: retried reads charged into t_disk.
        for node, sizes in enumerate(per_node_sizes):
            failures = faults.chunk_failures(pass_index, node, len(sizes))
            if not failures:
                continue
            extra = 0.0
            for position, count in sorted(failures.items()):
                if count > policy.max_failures:
                    raise RecoveryExhaustedError(
                        f"chunk at position {position} of data node {node} "
                        f"failed {count} times, exhausting the "
                        f"{policy.max_attempts}-attempt retry budget"
                    )
                chunk = assignment.data_node_chunks[node][position]
                extra += policy.retry_cost_s(
                    count, data_server.chunk_read_time(chunk)
                )
            node_read[node] += extra
            events.append(
                {
                    "kind": "chunk-read-retries",
                    "pass": pass_index,
                    "data_node": node,
                    "chunks_affected": len(failures),
                    "failed_attempts": sum(failures.values()),
                    "t_disk_extra": extra,
                }
            )
        t_disk = max(node_read)

        # Communication, with any active link degradations.
        link_factors = [
            faults.link_factor(node, pass_index)
            for node in range(len(per_node_sizes))
        ]
        degraded = any(f > 1.0 for f in link_factors)
        streams = data_server.node_stream_times(link_factors if degraded else None)
        t_network = max(streams)
        if degraded:
            events.append(
                {
                    "kind": "link-degradation",
                    "pass": pass_index,
                    "factors": {
                        node: factor
                        for node, factor in enumerate(link_factors)
                        if factor > 1.0
                    },
                }
            )

        # Data-node crashes: fail the unshipped tail over to a replica.
        for crash in faults.data_node_crashes(pass_index):
            site = faults.failover_site(crash.data_node)
            tail = unshipped_chunks(assignment, crash.data_node, crash.at_fraction)
            extra_disk, extra_net = data_server.refetch_cost(
                tail, link_factor=faults.link_factor(crash.data_node, pass_index)
            )
            t_disk += extra_disk
            t_network += extra_net
            events.append(
                {
                    "kind": "data-node-failover",
                    "pass": pass_index,
                    "data_node": crash.data_node,
                    "replica_site": site,
                    "unshipped_chunks": len(tail),
                    "t_disk_extra": extra_disk,
                    "t_network_extra": extra_net,
                }
            )
        return t_disk, t_network

    @staticmethod
    @hot
    def _local_phase(
        role_totals: List[float],
        role_caches: List[float],
        executor_roles: Dict[int, List[int]],
        slow_factors: Dict[int, float],
    ) -> Tuple[float, float]:
        """(phase time, critical-path cache share) of the local stage.

        Each executor runs its roles back-to-back; the phase ends with the
        slowest executor, whose cache share is attributed to the pass
        (mirroring the fault-free critical-path attribution).
        """
        executor_ids = sorted(executor_roles)
        times: List[float] = []
        caches: List[float] = []
        for executor in executor_ids:
            roles = executor_roles[executor]
            if len(roles) == 1:
                total = role_totals[roles[0]]
                cache = role_caches[roles[0]]
            else:
                total = sum(role_totals[r] for r in roles)
                cache = sum(role_caches[r] for r in roles)
            factor = slow_factors.get(executor, 1.0)
            if factor > 1.0:
                total *= factor
            times.append(total)
            caches.append(cache)
        slowest = max(range(len(times)), key=times.__getitem__)
        return times[slowest], caches[slowest]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @hot
    def execute(self, app: GeneralizedReduction, dataset: Dataset) -> RunResult:
        """Run ``app`` over ``dataset``; returns result + time breakdown."""
        config = self.config
        faults = self.faults
        assignment = assign_chunks(
            dataset.num_chunks, config.data_nodes, config.compute_nodes
        )
        data_server = DataServer(config, dataset, assignment)
        compute_servers = [
            ComputeServer(config, j) for j in range(config.compute_nodes)
        ]
        per_node_chunk_sizes = [
            [dataset.chunk_nbytes(c) for c in chunks]
            for chunks in assignment.compute_node_chunks
        ]

        breakdown = TimeBreakdown(
            metadata={
                "app": app.name,
                "config": config.label,
                "dataset": dataset.name,
                "dataset_nbytes": dataset.nbytes,
                "dataset_chunks": dataset.num_chunks,
                "bandwidth": config.bandwidth,
                "storage_cluster": config.storage_cluster.name,
                "compute_cluster": config.compute_cluster.name,
                "processes_per_node": config.processes_per_node,
            }
        )

        if faults is not None:
            faults.validate(config.data_nodes, config.compute_nodes)
        ckpt_disk = CacheModel(config.compute_cluster.effective_cache_disk)
        crashed_compute: set[int] = set()
        last_ckpt_bytes = 0.0

        app.begin(dict(dataset.meta))
        caching = app.multi_pass_hint
        cached = False
        max_object_bytes = 0.0
        network_fed_passes = 0

        for pass_index in range(MAX_PASSES):
            events: List[Dict[str, Any]] = []
            fed_from_network = not cached
            if fed_from_network:
                network_fed_passes += 1
            t_disk = t_network = 0.0
            if fed_from_network:
                if faults is None:
                    t_disk = data_server.retrieval_time()
                    t_network = data_server.communication_time()
                else:
                    t_disk, t_network = self._transfer_phases_with_faults(
                        pass_index, data_server, assignment, events
                    )
            elif faults is not None:
                # Repository nodes are idle in cache-fed passes: a crash
                # there needs no recovery, but is still observable.
                for crash in faults.data_node_crashes(pass_index):
                    events.append(
                        {
                            "kind": "data-node-crash-idle",
                            "pass": pass_index,
                            "data_node": crash.data_node,
                            "note": "pass is cache-fed; no recovery needed",
                        }
                    )

            # ---- per-node local reduction -------------------------------
            # Each compute node runs `processes_per_node` reduction threads
            # over its chunks; thread objects are merged in shared memory
            # so a single object per node enters the gather.  Under fault
            # tolerance each original node is a *role* that may execute on
            # a surviving node; computing per-role keeps the reduction
            # structure (and therefore the result) fault-invariant.
            ppn = config.processes_per_node
            role_totals: List[float] = []
            role_caches: List[float] = []
            local_objects: List[Any] = []
            for j, server in enumerate(compute_servers):
                node_chunks = assignment.compute_node_chunks[j]
                counter = OpCounter()
                thread_objects: List[Any] = []
                thread_chunk_ops: List[List] = []
                for t in range(ppn):
                    obj = app.make_local_object()
                    chunk_ops = []
                    for chunk in node_chunks[t::ppn]:
                        app.process_chunk(
                            obj, dataset.chunk_payload(chunk), counter
                        )
                        chunk_ops.append(counter.take())
                    thread_objects.append(obj)
                    thread_chunk_ops.append(chunk_ops)

                if ppn == 1:
                    node_object = thread_objects[0]
                    merge_time = 0.0
                else:
                    merge_counter = OpCounter()
                    node_object = app.merge_local(thread_objects, merge_counter)
                    merge_time = config.compute_cluster.node.cpu.compute_time(
                        merge_counter.take()
                    )
                local_objects.append(node_object)

                cache_time = 0.0
                recv_time = 0.0
                if fed_from_network:
                    recv_time = server.receive_overhead(len(node_chunks))
                    if caching:
                        cache_time = server.cache_write_time(
                            per_node_chunk_sizes[j]
                        )
                else:
                    cache_time = server.cache_read_time(per_node_chunk_sizes[j])

                kernel_time = server.smp_compute_time(thread_chunk_ops)
                role_caches.append(cache_time)
                role_totals.append(
                    kernel_time + merge_time + recv_time + cache_time
                )

            # ---- compute-node crashes: role migration + pass restart ----
            lost_work = 0.0
            if faults is not None:
                for crash in faults.compute_node_crashes(pass_index):
                    if crash.compute_node in crashed_compute:
                        continue
                    # Work done before the crash was detected is lost; the
                    # aborted attempt ran on the pre-crash executor map.
                    executor_roles = map_roles_to_survivors(
                        config.compute_nodes, sorted(crashed_compute)
                    )
                    slow = {
                        e: faults.slow_factor(e, pass_index)
                        for e in executor_roles
                    }
                    attempt, _ = self._local_phase(
                        role_totals, role_caches, executor_roles, slow
                    )
                    lost_work += crash.at_fraction * attempt
                    crashed_compute.add(crash.compute_node)
                    if len(crashed_compute) >= config.compute_nodes:
                        raise RecoveryExhaustedError(
                            "every compute node has crashed; cannot "
                            "redistribute the reduction roles"
                        )
                    # The migrated role's chunks must be re-fed from the
                    # repository (the crashed node's cache died with it).
                    source = assignment.compute_source[crash.compute_node]
                    extra_disk, extra_net = data_server.refetch_cost(
                        assignment.compute_node_chunks[crash.compute_node],
                        link_factor=faults.link_factor(source, pass_index),
                    )
                    t_disk += extra_disk
                    t_network += extra_net
                    # Survivors restart from the last checkpoint.
                    restore = 0.0
                    if last_ckpt_bytes > 0.0:
                        restore = ckpt_disk.read_time([last_ckpt_bytes])
                    lost_work += restore
                    events.append(
                        {
                            "kind": "compute-node-recovery",
                            "pass": pass_index,
                            "compute_node": crash.compute_node,
                            "survivors": config.compute_nodes
                            - len(crashed_compute),
                            "t_lost_work": crash.at_fraction * attempt,
                            "t_restore": restore,
                            "t_disk_extra": extra_disk,
                            "t_network_extra": extra_net,
                        }
                    )

            # Phase barrier: the pass's local stage ends with the slowest
            # node; attribute the cache share of the critical-path node.
            if faults is None:
                slowest = max(
                    range(len(role_totals)), key=role_totals.__getitem__
                )
                t_local_total = role_totals[slowest]
                t_cache = role_caches[slowest]
            else:
                executor_roles = map_roles_to_survivors(
                    config.compute_nodes, sorted(crashed_compute)
                )
                slow = {
                    e: faults.slow_factor(e, pass_index) for e in executor_roles
                }
                if any(f > 1.0 for f in slow.values()):
                    events.append(
                        {
                            "kind": "slow-nodes",
                            "pass": pass_index,
                            "factors": {
                                e: f for e, f in slow.items() if f > 1.0
                            },
                        }
                    )
                t_local_total, t_cache = self._local_phase(
                    role_totals, role_caches, executor_roles, slow
                )
            t_local_compute = t_local_total - t_cache + lost_work

            # ---- gather reduction objects at the master -----------------
            object_sizes = [app.object_nbytes(obj) for obj in local_objects]
            max_object_bytes = max(max_object_bytes, max(object_sizes))
            cluster = config.compute_cluster
            if (
                config.gather_topology is GatherTopology.TREE
                and len(local_objects) > 1
            ):
                root_object, t_ro = _tree_gather(app, local_objects, cluster)
                combine_inputs: List[Any] = [root_object]
            else:
                t_ro = sum(
                    cluster.gather_message_time(size)
                    for size in object_sizes[1:]
                )
                combine_inputs = local_objects

            # ---- serialized global reduction ----------------------------
            # The master folds every reduction object — its own included —
            # paying a fixed handling cost per object plus the charged
            # merge/update work.  (Under a tree gather the pairwise merges
            # already happened along the tree; the master processes the
            # single merged object.)
            master = OpCounter()
            combined = app.combine(combine_inputs, master)
            another_pass = app.update(combined, master)
            t_g = (
                cluster.node.cpu.compute_time(master.take())
                + len(combine_inputs) * cluster.gather_deserialize_s
            )

            if app.broadcasts_result:
                bcast = app.broadcast_nbytes(combined)
                # Only live nodes receive the re-broadcast.
                receivers = config.compute_nodes - len(crashed_compute)
                if config.gather_topology is GatherTopology.TREE:
                    if faults is None:
                        rounds = (
                            math.ceil(math.log2(config.compute_nodes))
                            if config.compute_nodes > 1
                            else 0
                        )
                    else:
                        rounds = (
                            math.ceil(math.log2(receivers))
                            if receivers > 1
                            else 0
                        )
                    t_ro += rounds * cluster.gather_message_time(bcast)
                else:
                    t_ro += (receivers - 1) * cluster.gather_message_time(bcast)
                breakdown.metadata["broadcast_nbytes"] = bcast

            # ---- reduction-object checkpoint ----------------------------
            t_ckpt = 0.0
            if faults is not None and faults.checkpoints_enabled:
                # The checkpoint stores the merged reduction object; its
                # size is that of the largest gathered object (`combined`
                # itself may be an application-level result type).
                last_ckpt_bytes = max(object_sizes)
                t_ckpt = ckpt_disk.write_time([last_ckpt_bytes])

            breakdown.add_pass(
                PassRecord(
                    index=pass_index,
                    t_disk=t_disk,
                    t_network=t_network,
                    t_local_compute=t_local_compute,
                    t_cache=t_cache,
                    t_ro=t_ro,
                    t_g=t_g,
                    t_ckpt=t_ckpt,
                    events=tuple(events),
                )
            )

            if fed_from_network and caching:
                cached = True
            if not another_pass:
                break
        else:
            raise ConfigurationError(
                f"application '{app.name}' did not terminate within "
                f"{MAX_PASSES} passes"
            )

        breakdown.max_reduction_object_bytes = max_object_bytes
        breakdown.metadata["gather_rounds"] = breakdown.num_passes
        breakdown.metadata["network_fed_passes"] = network_fed_passes
        breakdown.metadata["broadcasts_result"] = app.broadcasts_result
        if faults is not None:
            breakdown.metadata["fault_schedule_size"] = len(faults.schedule)
            breakdown.metadata["checkpoints"] = faults.checkpoints_enabled
            breakdown.metadata["faults_fired"] = len(breakdown.fault_events)
        return RunResult(
            result=app.result(), breakdown=breakdown, assignment=assignment
        )
