"""The FREERIDE-G generalized-reduction programming interface.

Per Section 2.2 of the paper, "users explicitly provide [the] reduction
object and the local and global reduction functions as part of the API".
An application implements :class:`GeneralizedReduction`; the runtime then
drives the canonical processing structure:

1. ``begin(meta)`` — once, with the dataset metadata.
2. Per pass: every compute node holds a replicated reduction object
   (``make_local_object``) and folds its chunks into it with
   ``process_chunk`` using associative and commutative updates.
3. Reduction objects are gathered at the master and ``combine`` performs
   the serialized global reduction.
4. ``update(combined)`` lets iterative applications (k-means, EM) absorb the
   global result and request another pass; the combined object is broadcast
   back to compute nodes when ``broadcasts_result`` is True.
5. ``result()`` returns the application output after the final pass.

All computational methods receive an :class:`~repro.middleware.instrument.OpCounter`
and must charge the operations they execute — the only channel through
which an application influences simulated compute time.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Sequence

from repro.errors import UsageError
from repro.middleware.instrument import OpCounter

__all__ = ["GeneralizedReduction"]


class GeneralizedReduction(abc.ABC):
    """Base class for FREERIDE-G applications.

    Subclasses must set :attr:`name` and implement the abstract methods.
    The default :attr:`broadcasts_result` is False (single-shot analytics
    such as kNN or vortex detection); iterative applications override it.
    """

    #: Application identifier used by profiles and the registry.
    name: str = "generalized-reduction"

    #: Whether the combined object is re-broadcast to compute nodes after
    #: every global reduction (iterative applications and the defect
    #: catalog re-broadcast of Section 4.5).
    broadcasts_result: bool = False

    #: Whether the application expects multiple passes over the data, in
    #: which case compute nodes cache received chunks on local disk during
    #: the first pass (Section 2.1's data-caching role).
    multi_pass_hint: bool = False

    @abc.abstractmethod
    def begin(self, meta: Dict[str, Any]) -> None:
        """Reset application state for a fresh run over a dataset."""

    @abc.abstractmethod
    def make_local_object(self) -> Any:
        """A fresh (replicated) reduction object for the coming pass."""

    @abc.abstractmethod
    def process_chunk(self, obj: Any, payload: Any, ops: OpCounter) -> None:
        """Fold one chunk into the local reduction object, in place.

        Updates must be associative and commutative so chunk order and
        chunk-to-node placement cannot change the combined result.
        """

    @abc.abstractmethod
    def object_nbytes(self, obj: Any) -> float:
        """Serialized size of a reduction object, in model bytes."""

    @abc.abstractmethod
    def combine(self, objs: Sequence[Any], ops: OpCounter) -> Any:
        """Global reduction: merge all local objects at the master."""

    @abc.abstractmethod
    def update(self, combined: Any, ops: OpCounter) -> bool:
        """Absorb the global result; return True to request another pass."""

    @abc.abstractmethod
    def result(self) -> Any:
        """The application output after the final pass."""

    # ------------------------------------------------------------------
    # Conveniences shared by all applications.
    # ------------------------------------------------------------------

    def broadcast_nbytes(self, combined: Any) -> float:
        """Size of the object broadcast back after a global reduction.

        Defaults to the combined object's own size; applications that
        broadcast a digest (e.g. the defect catalog) override this.
        """
        return self.object_nbytes(combined)

    def merge_local(self, objs: Sequence[Any], ops: OpCounter) -> Any:
        """Merge same-pass reduction objects *without* global finalization.

        Used for the shared-memory combine on SMP nodes: the threads of
        one node fold their replicated objects into a single per-node
        object before the inter-node gather.  Unlike :meth:`combine`, this
        must NOT perform application-level post-processing (joining,
        de-noising, catalog matching) — it is a pure associative merge.

        The default handles the two standard reduction-object shapes;
        applications with custom objects override it to run under SMP.
        """
        from repro.middleware.reduction import (
            ArrayReductionObject,
            FeatureListReductionObject,
        )

        if not objs:
            raise UsageError("merge_local needs at least one object")
        first = objs[0]
        if isinstance(first, ArrayReductionObject):
            merged = first.copy()
            for other in objs[1:]:
                merged.merge(other)
                ops.charge(
                    flop=float(merged.values.size),
                    mem=2.0 * merged.values.size,
                )
            return merged
        if isinstance(first, FeatureListReductionObject):
            merged = FeatureListReductionObject(
                bytes_per_feature=first.bytes_per_feature,
                features=list(first.features),
            )
            for other in objs[1:]:
                merged.merge(other)
                ops.charge(mem=2.0 * len(other), branch=float(len(other)))
            return merged
        raise NotImplementedError(
            f"{type(self).__name__} must override merge_local() to run "
            "with multiple processes per node"
        )

    def run_serial(self, payloads: List[Any]) -> Any:
        """Reference single-node execution used by correctness tests.

        Processes every payload into one reduction object, combines, and
        iterates until :meth:`update` declines another pass.
        """
        scratch = OpCounter()
        self_result_requested = True
        while self_result_requested:
            obj = self.make_local_object()
            for payload in payloads:
                self.process_chunk(obj, payload, scratch)
            combined = self.combine([obj], scratch)
            self_result_requested = self.update(combined, scratch)
        return self.result()
