"""Reduction-object helpers shared by the applications.

Two reduction-object shapes cover the paper's five applications:

- :class:`ArrayReductionObject` — a fixed-shape accumulator array plus a
  sample counter.  Its size is determined by application parameters only
  (k-means centroid sums, EM sufficient statistics, kNN candidate lists):
  the paper's **constant reduction object size** class.
- :class:`FeatureListReductionObject` — a list of extracted features whose
  length scales with the data each node processed (vortex fragments,
  molecular defects): the paper's **linear reduction object size** class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.hotpath import hot
from repro.simgrid.errors import ConfigurationError

__all__ = ["ArrayReductionObject", "FeatureListReductionObject"]


@dataclass(slots=True)
class ArrayReductionObject:
    """A fixed-shape accumulator: element-wise sums plus a sample count."""

    values: np.ndarray
    count: float = 0.0

    @classmethod
    def zeros(cls, shape: Sequence[int] | int) -> "ArrayReductionObject":
        """A zero-initialized accumulator of the given shape."""
        return cls(values=np.zeros(shape, dtype=np.float64), count=0.0)

    @property
    def nbytes(self) -> float:
        """Serialized size: the array plus the 8-byte counter."""
        return float(self.values.nbytes) + 8.0

    @hot
    def accumulate(self, contribution: np.ndarray, count: float = 0.0) -> None:
        """Element-wise add a contribution (associative and commutative)."""
        contribution = np.asarray(contribution)
        if contribution.shape != self.values.shape:
            raise ConfigurationError(
                f"contribution shape {contribution.shape} does not match "
                f"accumulator shape {self.values.shape}"
            )
        self.values += contribution
        self.count += count

    def merge(self, other: "ArrayReductionObject") -> None:
        """Fold another accumulator into this one."""
        self.accumulate(other.values, other.count)

    def copy(self) -> "ArrayReductionObject":
        """An independent copy."""
        return ArrayReductionObject(values=self.values.copy(), count=self.count)


@dataclass
class FeatureListReductionObject:
    """A list of features extracted from the node's local data.

    Each feature is a plain dict (centroid, extent, strength, ...).  The
    serialized size is ``len(features) * bytes_per_feature`` — linear in the
    amount of data the node processed, which is what puts the scientific
    applications in the paper's *linear object size* class.
    """

    bytes_per_feature: float
    features: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.bytes_per_feature <= 0:
            raise ConfigurationError("bytes_per_feature must be positive")

    @property
    def nbytes(self) -> float:
        """Serialized size (8-byte header when empty)."""
        return 8.0 + self.bytes_per_feature * len(self.features)

    def add(self, feature: Dict[str, Any]) -> None:
        """Append one extracted feature."""
        self.features.append(feature)

    def extend(self, features: Sequence[Dict[str, Any]]) -> None:
        """Append many extracted features."""
        self.features.extend(features)

    def merge(self, other: "FeatureListReductionObject") -> None:
        """Concatenate another node's feature list (order-independent)."""
        if other.bytes_per_feature != self.bytes_per_feature:
            raise ConfigurationError("cannot merge feature lists of different widths")
        self.features.extend(other.features)

    def __len__(self) -> int:
        return len(self.features)
