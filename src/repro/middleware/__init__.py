"""FREERIDE-G middleware reimplementation.

FREERIDE-G (FRamework for Rapid Implementation of Datamining Engines in
Grid) supports data mining and scientific data processing applications whose
processing structure is a **generalized reduction**: data chunks are
retrieved from repository (data-server) nodes, shipped to compute nodes,
locally reduced into a replicated *reduction object* using associative and
commutative updates, after which reduction objects are communicated and a
serialized *global reduction* combines them.

This package reimplements that middleware on top of the
:mod:`repro.simgrid` substrate:

- :mod:`repro.middleware.api`            — the generalized-reduction
  programming interface applications implement.
- :mod:`repro.middleware.reduction`      — reduction-object helpers.
- :mod:`repro.middleware.dataset`        — chunked dataset abstraction.
- :mod:`repro.middleware.chunks`         — chunk-to-node assignment (data
  distribution role of the data server).
- :mod:`repro.middleware.instrument`     — operation counters used to charge
  compute time from the real NumPy kernels.
- :mod:`repro.middleware.data_server`    — data retrieval / distribution /
  communication roles.
- :mod:`repro.middleware.compute_server` — communication / computation /
  caching roles.
- :mod:`repro.middleware.caching`        — local-disk cache for multi-pass
  applications.
- :mod:`repro.middleware.scheduler`      — run configurations (the paper's
  N data nodes, M compute nodes, M >= N).
- :mod:`repro.middleware.runtime`        — the execution engine producing a
  result plus a :class:`repro.simgrid.TimeBreakdown`.
- :mod:`repro.middleware.replica`        — the replica catalog used by
  resource selection.
"""

from repro.middleware.api import GeneralizedReduction
from repro.middleware.caching import CacheModel
from repro.middleware.chunks import ChunkAssignment, assign_chunks
from repro.middleware.compute_server import ComputeServer
from repro.middleware.data_server import DataServer
from repro.middleware.dataset import ArrayDataset, Dataset
from repro.middleware.instrument import OpCounter
from repro.middleware.replica import Replica, ReplicaCatalog
from repro.middleware.runtime import FreerideGRuntime, RunResult
from repro.middleware.scheduler import GatherTopology, RunConfig

__all__ = [
    "GeneralizedReduction",
    "CacheModel",
    "ChunkAssignment",
    "assign_chunks",
    "ComputeServer",
    "DataServer",
    "ArrayDataset",
    "Dataset",
    "OpCounter",
    "Replica",
    "ReplicaCatalog",
    "FreerideGRuntime",
    "RunResult",
    "GatherTopology",
    "RunConfig",
]
