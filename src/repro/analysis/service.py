"""ASCII rendering of prediction-service metrics and chaos reports."""

from __future__ import annotations

from typing import Any, Dict, List


__all__ = ["format_service_metrics", "format_service_chaos"]


def format_service_metrics(metrics: Dict[str, Any]) -> str:
    """Render one :meth:`PredictionService.metrics` rollup."""
    lines: List[str] = [
        (
            f"requests {metrics['requests']}  served {metrics['served']}  "
            f"shed {metrics['shed']}  stale {metrics['stale_served']}"
        ),
        (
            f"  shed rate {100 * metrics['shed_rate']:.1f}%  "
            f"stale rate {100 * metrics['stale_rate']:.1f}%"
        ),
        (
            f"  latency p50 {1000 * metrics['p50_latency_s']:.3f}ms  "
            f"p99 {1000 * metrics['p99_latency_s']:.3f}ms  "
            f"max {1000 * metrics['max_latency_s']:.3f}ms"
        ),
    ]
    outcomes = metrics.get("by_outcome", {})
    if outcomes:
        rendered = "  ".join(
            f"{key}={outcomes[key]}" for key in sorted(outcomes)
        )
        lines.append(f"  outcomes: {rendered}")
    breakers = metrics.get("breakers", {})
    states = breakers.get("states", {})
    lines.append(f"  breaker opens: {breakers.get('opens', 0)}")
    for key in sorted(states):
        lines.append(f"    {key}: {states[key]}")
    bulkheads = metrics.get("bulkheads", {})
    for endpoint in sorted(bulkheads):
        stats = bulkheads[endpoint]
        if stats["refused"] or stats["peak_queue"]:
            lines.append(
                f"  bulkhead {endpoint}: refused {stats['refused']}  "
                f"peak queue {stats['peak_queue']}"
            )
    cache = metrics.get("cache")
    if cache is not None:
        lines.append(
            f"  cache: {cache['entries']} entries  "
            f"{cache['stores']} stores  {cache['evictions']} evictions"
        )
    injected = metrics.get("injected_faults")
    if injected:
        rendered = "  ".join(
            f"{kind}={injected[kind]}" for kind in sorted(injected)
        )
        lines.append(f"  injected faults: {rendered}")
    return "\n".join(lines)


def format_service_chaos(report: Any) -> str:
    """Render a :class:`~repro.faults.chaos.ServiceChaosReport`."""
    spec = report.spec
    lines: List[str] = [
        (
            f"service chaos: {len(report.cases)} case(s), "
            f"{spec.requests} request(s) @ {spec.rate_hz:g}/s each"
        ),
        (
            f"  faults: slow {100 * spec.slow_probability:.0f}%  "
            f"crash {100 * spec.crash_probability:.0f}%  "
            f"corrupt {100 * spec.corrupt_probability:.0f}%"
        ),
        f"  verdict: {'PASS' if report.ok else 'FAIL'}",
    ]
    header = (
        f"  {'seed':>6} {'served':>7} {'shed':>6} {'stale':>6} "
        f"{'opens':>6} {'replay':>7} {'violations':>11}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for case in report.cases:
        lines.append(
            f"  {case.seed:>6} {case.served:>7} {case.shed:>6} "
            f"{case.stale_served:>6} {case.breaker_opens:>6} "
            f"{'yes' if case.replay_identical else 'NO':>7} "
            f"{len(case.violations):>11}"
        )
    for violation in report.violations:
        lines.append(f"  ! {violation}")
    return "\n".join(lines)
