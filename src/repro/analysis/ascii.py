"""ASCII bar charts for terminal-rendered figures.

The paper's evaluation figures are grouped bar charts: relative prediction
error on the y-axis, data-node count groups on the x-axis, one bar per
(compute-node count, model).  :func:`error_bar_chart` renders the same
structure with unicode block bars so a reproduced figure can be eyeballed
against the paper without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List

from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import ExperimentResult

__all__ = ["horizontal_bar", "error_bar_chart"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def horizontal_bar(value: float, max_value: float, width: int = 40) -> str:
    """A unicode bar of ``value`` scaled so ``max_value`` fills ``width``.

    >>> horizontal_bar(1.0, 2.0, width=4)
    '██'
    """
    if width <= 0:
        raise ConfigurationError("bar width must be positive")
    if max_value < 0 or value < 0:
        raise ConfigurationError("bar values must be >= 0")
    if max_value == 0:
        return ""
    fraction = min(value / max_value, 1.0)
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    partial_index = int(remainder * (len(_BLOCKS) - 1))
    bar = "█" * full
    if partial_index > 0 and full < width:
        bar += _BLOCKS[partial_index]
    return bar


def error_bar_chart(
    result: ExperimentResult, model: str | None = None, width: int = 40
) -> str:
    """Render one model's error-by-configuration series as a bar chart.

    ``model`` defaults to the last (most refined) model in the result.
    Configurations are grouped by data-node count, like the paper's
    x-axis.
    """
    models = result.models
    if not models:
        raise ConfigurationError("experiment result has no rows")
    chosen = model or models[-1]
    rows = result.rows_for_model(chosen)
    if not rows:
        raise ConfigurationError(f"no rows for model '{chosen}'")

    peak = max(row.error for row in rows)
    scale = peak if peak > 0 else 1.0
    lines: List[str] = [
        f"{result.experiment_id} — {chosen} — relative error "
        f"(full bar = {100 * peak:.2f}%)"
    ]
    groups: Dict[int, List] = {}
    for row in rows:
        groups.setdefault(row.data_nodes, []).append(row)
    for data_nodes in sorted(groups):
        lines.append(f"  {data_nodes} data node(s):")
        for row in groups[data_nodes]:
            bar = horizontal_bar(row.error, scale, width=width)
            lines.append(
                f"    {row.compute_nodes:>2} cn {100 * row.error:6.2f}% {bar}"
            )
    return "\n".join(lines)
