"""Figure-style ASCII tables for experiment results.

The paper's figures plot relative prediction error grouped by the number of
data nodes, one bar/line per compute-node count and model.  The formatter
below prints the same structure as a table so a terminal user can compare
directly against the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.analysis.stats import error_summary
from repro.simgrid.trace import TimeBreakdown
from repro.workloads.experiments import ExperimentResult

if TYPE_CHECKING:  # avoid a runtime analysis -> campaign import cycle
    from repro.campaign.report import CampaignReport

__all__ = [
    "format_experiment",
    "format_fault_events",
    "format_summary",
    "format_campaign",
]


def format_experiment(result: ExperimentResult) -> str:
    """Render one reproduced figure as an ASCII table.

    Rows are (data nodes, compute nodes) configurations; columns are the
    models; cells are relative errors in percent.
    """
    models = result.models
    header = f"{'config':>8} " + " ".join(f"{m:>26}" for m in models)
    lines: List[str] = [
        f"{result.experiment_id}: {result.title}",
        f"workload: {result.workload}",
        header,
        "-" * len(header),
    ]
    configs: List[str] = []
    for row in result.rows:
        if row.label not in configs:
            configs.append(row.label)
    by_key: Dict[tuple, float] = {}
    actual: Dict[str, float] = {}
    for row in result.rows:
        by_key[(row.label, row.model)] = row.error
        actual[row.label] = row.actual
    for label in configs:
        cells = []
        for model in models:
            err = by_key.get((label, model))
            cells.append(f"{100.0 * err:25.2f}%" if err is not None else " " * 26)
        lines.append(f"{label:>8} " + " ".join(cells))
    lines.append("")
    lines.append(format_summary(result))
    return "\n".join(lines)


def format_fault_events(breakdown: TimeBreakdown) -> str:
    """Render a faulted run's fault/recovery log as an ASCII table.

    One line per event recorded in the pass records, in pass order: the
    pass, the event kind, and the event's remaining fields (affected
    node, replica site, charged recovery times) as ``key=value`` pairs.
    Time-valued fields (keys starting with ``t_``) are printed in
    engineering form.
    """
    events = breakdown.fault_events
    if not events:
        return "no faults fired"
    lines = [f"{len(events)} fault/recovery event(s), t_ckpt = "
             f"{breakdown.t_ckpt:.5f} s:"]
    for event in events:
        detail = []
        for key, value in event.items():
            if key in ("kind", "pass"):
                continue
            if isinstance(value, float) and key.startswith("t_"):
                detail.append(f"{key}={value:.5f}s")
            else:
                detail.append(f"{key}={value}")
        lines.append(
            f"  pass {event.get('pass', '?'):>3}  "
            f"{event.get('kind', 'unknown'):<24} " + " ".join(detail)
        )
    return "\n".join(lines)


def format_campaign(report: "CampaignReport") -> str:
    """Render a campaign run as an ASCII status table.

    One line per entry — its classification (completed / resumed /
    retried / timed-out / skipped), attempts, wall time, and per-model
    error summary when the entry produced a result — followed by the
    campaign totals and, for interrupted runs, the resume hint.
    Operational events (resumes, watchdog retries, timeouts) are thus
    surfaced in the same report stream as the prediction errors.
    """
    lines: List[str] = []
    for outcome in report.outcomes:
        detail = f"{outcome.elapsed_s:7.1f}s"
        if outcome.attempts > 1:
            detail += f"  attempts={outcome.attempts}"
        summary = ""
        if outcome.result is not None and outcome.result.rows:
            summary = "  " + format_summary(outcome.result)
        lines.append(
            f"{outcome.entry_id:16s} {outcome.status:10s} {detail}{summary}"
        )
        for violation in outcome.violations:
            lines.append(f"{'':16s} !! {violation}")
    counts = report.counts
    totals = ", ".join(f"{n} {s}" for s, n in counts.items() if n)
    lines.append(f"campaign '{report.campaign}': {totals or 'no entries'}")
    if report.interrupted:
        via = f" by {report.signal_name}" if report.signal_name else ""
        lines.append(
            f"interrupted{via} — journal checkpoint written; re-run with "
            "--resume to finish the remaining entries"
        )
    return "\n".join(lines)


def format_summary(result: ExperimentResult) -> str:
    """One-line-per-model mean/max error summary."""
    parts: List[str] = []
    for model, stats in error_summary(result).items():
        parts.append(
            f"{model}: mean {100 * stats['mean']:.2f}%  "
            f"max {100 * stats['max']:.2f}%"
        )
    return " | ".join(parts)
