"""ASCII rendering of trace workloads and throughput benchmarks.

- :func:`format_trace` — one table per trace: identity (name, source,
  fingerprint), arrival span, and the per-VO composition (job counts,
  deadline share, priority spread, dominant datasets).
- :func:`format_throughput` — the ``BENCH_throughput.json`` document as
  a per-policy table with the indexed-vs-linear speedup column the
  ROADMAP tracks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping

if TYPE_CHECKING:  # avoid a runtime analysis -> workloads import cycle
    from repro.workloads.traces import TraceWorkload

__all__ = ["format_trace", "format_throughput"]


def format_trace(trace: "TraceWorkload") -> str:
    """Summarize a trace workload as an ASCII table."""
    jobs = trace.jobs
    lines: List[str] = [
        f"trace: {trace.name} ({trace.source}, {len(jobs)} jobs)",
        f"  fingerprint {trace.fingerprint[:16]}…",
        (
            f"  arrivals over {trace.horizon:.4f}s  "
            f"mean gap {trace.horizon / max(len(jobs) - 1, 1):.6f}s"
        ),
    ]
    per_vo: Dict[str, List[Any]] = {}
    for job in jobs:
        per_vo.setdefault(job.vo or "-", []).append(job)
    header = (
        f"  {'vo':<12} {'jobs':>7} {'share':>7} {'deadlines':>10} "
        f"{'priorities':>11}  datasets"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for vo in sorted(per_vo):
        members = per_vo[vo]
        with_deadline = sum(1 for j in members if j.deadline is not None)
        prios = sorted({j.priority for j in members})
        counts: Dict[str, int] = {}
        for j in members:
            counts[j.dataset_key] = counts.get(j.dataset_key, 0) + 1
        top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        datasets = ", ".join(f"{k} x{n}" for k, n in top)
        if len(counts) > 3:
            datasets += f", +{len(counts) - 3} more"
        prio_label = "/".join(str(p) for p in prios)
        lines.append(
            f"  {vo:<12} {len(members):>7} "
            f"{100 * len(members) / len(jobs):>6.1f}% "
            f"{100 * with_deadline / len(members):>9.1f}% "
            f"{prio_label:>11}  {datasets}"
        )
    return "\n".join(lines)


def format_throughput(doc: Mapping[str, Any]) -> str:
    """Render a throughput benchmark document (``BENCH_throughput.json``).

    Expects the structure ``bench_throughput.py`` writes: one
    ``policies`` entry per placement policy, each holding a ``linear``
    row (the retained pre-scale-up engine), an ``indexed`` row, the
    same-policy ``speedup``, and whether the two engines' reports were
    ``identical``.
    """
    lines: List[str] = [
        (
            f"throughput: {doc.get('jobs', '?')} jobs on "
            f"'{doc.get('trace', '?')}' "
            f"({doc.get('topology', '?')})"
        ),
    ]
    header = (
        f"  {'policy':<16} {'engine':<8} {'wall':>9} {'jobs/s':>10} "
        f"{'speedup':>8} {'peak evq':>9} {'peak wait':>10} {'lost':>5}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))

    def row(policy: str, engine: str, entry: Mapping[str, Any],
            speedup: str) -> str:
        rate = float(entry.get("jobs_per_sec", 0.0) or 0.0)
        return (
            f"  {policy:<16} {engine:<8} "
            f"{float(entry.get('wall_seconds', 0.0)):>8.2f}s "
            f"{rate:>10.1f} {speedup:>8} "
            f"{int(entry.get('peak_event_queue_depth', 0)):>9} "
            f"{int(entry.get('peak_pending_depth', 0)):>10} "
            f"{int(entry.get('lost_jobs', -1)):>5}"
        )

    for policy, entry in sorted((doc.get("policies") or {}).items()):
        linear = entry.get("linear") or {}
        indexed = entry.get("indexed") or {}
        speedup = float(entry.get("speedup", 0.0) or 0.0)
        if linear:
            lines.append(row(policy, "linear", linear, "1.0x"))
        if indexed:
            marker = f"{speedup:.1f}x" if speedup else "--"
            lines.append(row("" if linear else policy, "indexed",
                             indexed, marker))
        if entry.get("identical") is False:
            lines.append(f"  {'':<16} ^ ENGINES DIVERGED on {policy}")
    ratio = doc.get("speedup_min")
    if ratio is not None:
        lines.append(
            "  slowest same-policy speedup, indexed vs linear: "
            f"{ratio:.1f}x"
        )
    return "\n".join(lines)
