"""Summary statistics and shape checks over experiment results."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import ExperimentResult, ExperimentRow

__all__ = ["mean", "error_summary", "model_ordering_holds", "worst_configuration"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (errors on empty input)."""
    if not values:
        raise ConfigurationError("cannot average an empty sequence")
    return sum(values) / len(values)


def error_summary(result: ExperimentResult) -> Dict[str, Dict[str, float]]:
    """Per-model mean/max relative error (fractions)."""
    summary: Dict[str, Dict[str, float]] = {}
    for model in result.models:
        errors = result.errors_for_model(model)
        summary[model] = {
            "mean": mean(errors),
            "max": max(errors),
            "min": min(errors),
        }
    return summary


def model_ordering_holds(
    result: ExperimentResult, tolerance: float = 0.0
) -> bool:
    """Check the paper's headline ordering on *mean* error.

    The global-reduction model should be at least as accurate (on average)
    as the reduction-communication model, which in turn should beat the
    no-communication model.  ``tolerance`` allows a small absolute slack.
    """
    models = result.models
    if len(models) < 2:
        raise ConfigurationError(
            "model ordering needs at least two models in the result"
        )
    means = [mean(result.errors_for_model(m)) for m in models]
    return all(
        later <= earlier + tolerance
        for earlier, later in zip(means, means[1:])
    )


def worst_configuration(result: ExperimentResult, model: str) -> ExperimentRow:
    """The configuration with the largest relative error for a model."""
    rows = result.rows_for_model(model)
    if not rows:
        raise ConfigurationError(f"no rows for model '{model}'")
    return max(rows, key=lambda r: r.error)
