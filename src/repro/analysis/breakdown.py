"""Component-share analysis: who dominates the execution time where.

The paper's discussion repeatedly reasons about which component dominates
("for an application where data retrieval cost is very high, the first
configuration pair may be preferable...").  This module computes the
disk/network/compute shares of a run — or a whole configuration sweep —
so those discussions can be checked against the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.middleware import FreerideGRuntime
from repro.middleware.dataset import Dataset
from repro.middleware.api import GeneralizedReduction
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.trace import TimeBreakdown

__all__ = ["ComponentShares", "shares_of", "sweep_shares", "format_shares"]


@dataclass(frozen=True)
class ComponentShares:
    """Fractional composition of one execution's time."""

    label: str
    total: float
    disk: float
    network: float
    compute: float

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise ConfigurationError("total time must be positive")

    @property
    def dominant(self) -> str:
        """The largest component ('disk', 'network' or 'compute')."""
        shares = {
            "disk": self.disk,
            "network": self.network,
            "compute": self.compute,
        }
        return max(sorted(shares), key=shares.__getitem__)


def shares_of(breakdown: TimeBreakdown, label: str = "") -> ComponentShares:
    """Component shares of one measured breakdown."""
    total = breakdown.total
    if total <= 0:
        raise ConfigurationError("cannot compute shares of a zero-time run")
    return ComponentShares(
        label=label,
        total=total,
        disk=breakdown.t_disk / total,
        network=breakdown.t_network / total,
        compute=breakdown.t_compute / total,
    )


def sweep_shares(
    app_factory,
    dataset: Dataset,
    configs: Sequence[RunConfig],
) -> List[ComponentShares]:
    """Execute a workload across configurations and report shares."""
    if not configs:
        raise ConfigurationError("need at least one configuration")
    out: List[ComponentShares] = []
    for config in configs:
        app: GeneralizedReduction = app_factory()
        run = FreerideGRuntime(config).execute(app, dataset)
        out.append(shares_of(run.breakdown, label=config.label))
    return out


def format_shares(shares: Sequence[ComponentShares]) -> str:
    """Render a share sweep as an ASCII table."""
    if not shares:
        raise ConfigurationError("nothing to format")
    lines = [
        f"{'config':>8} {'total':>10} {'disk':>7} {'network':>8} "
        f"{'compute':>8}  dominant"
    ]
    for s in shares:
        lines.append(
            f"{s.label:>8} {s.total:9.4f}s {100 * s.disk:6.1f}% "
            f"{100 * s.network:7.1f}% {100 * s.compute:7.1f}%  {s.dominant}"
        )
    return "\n".join(lines)
