"""Reporting utilities for the reproduced experiments.

- :mod:`repro.analysis.report` — figure-style ASCII error tables and the
  EXPERIMENTS.md generator.
- :mod:`repro.analysis.stats`  — summary statistics and shape checks
  (model ordering, error trends) over experiment results.
- :mod:`repro.analysis.broker` — policy comparison tables and the
  calibration error trend for broker reports.
- :mod:`repro.analysis.service` — prediction-service metrics rollups
  and service chaos campaign tables.
- :mod:`repro.analysis.trace` — trace-workload composition tables and
  the throughput benchmark rendering.
"""

from repro.analysis.ascii import error_bar_chart, horizontal_bar
from repro.analysis.broker import (
    format_broker,
    format_error_trend,
    format_policy_run,
    format_resilience,
)
from repro.analysis.breakdown import (
    ComponentShares,
    format_shares,
    shares_of,
    sweep_shares,
)
from repro.analysis.expectations import (
    EXPECTATIONS,
    FigureExpectation,
    check_expectation,
)
from repro.analysis.report import (
    format_campaign,
    format_experiment,
    format_fault_events,
    format_summary,
)
from repro.analysis.results_io import (
    RowDelta,
    compare_results,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.analysis.service import (
    format_service_chaos,
    format_service_metrics,
)
from repro.analysis.stats import (
    error_summary,
    mean,
    model_ordering_holds,
    worst_configuration,
)
from repro.analysis.trace import format_throughput, format_trace

__all__ = [
    "error_bar_chart",
    "horizontal_bar",
    "ComponentShares",
    "format_shares",
    "shares_of",
    "sweep_shares",
    "EXPECTATIONS",
    "FigureExpectation",
    "check_expectation",
    "RowDelta",
    "compare_results",
    "load_result",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "format_broker",
    "format_campaign",
    "format_error_trend",
    "format_experiment",
    "format_fault_events",
    "format_policy_run",
    "format_resilience",
    "format_service_chaos",
    "format_service_metrics",
    "format_summary",
    "format_throughput",
    "format_trace",
    "error_summary",
    "mean",
    "model_ordering_holds",
    "worst_configuration",
]
