"""ASCII rendering of broker reports.

One table per policy run — headline metrics, the placement schedule,
rejections with their machine-usable codes — plus a cross-policy
comparison table and the rolling prediction-error trend that shows the
online calibration converging.  Runs brokered under a grid fault
schedule additionally render their resilience block: the fault
timeline, per-attempt preemptions, terminal failures, and the
goodput/recovery-overhead summary with its per-fault-kind breakdown.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.analysis.ascii import horizontal_bar

if TYPE_CHECKING:  # avoid a runtime analysis -> broker import cycle
    from repro.broker.report import BrokerReport, PolicyRun

__all__ = [
    "format_broker",
    "format_policy_run",
    "format_error_trend",
    "format_resilience",
]


def format_policy_run(run: "PolicyRun", *, schedule: bool = True) -> str:
    """Render one policy's placements and metrics as an ASCII table."""
    lines: List[str] = [
        f"policy: {run.label}",
        (
            f"  jobs {run.jobs}  completed {len(run.placements)}  "
            f"rejected {len(run.rejections)}"
        ),
        (
            f"  makespan {run.makespan:.4f}s  mean wait {run.mean_wait:.4f}s"
            f"  deadline-miss {100 * run.deadline_miss_rate:.1f}%"
            f"  mean |err| {100 * run.mean_error():.2f}%"
        ),
    ]
    if schedule and run.placements:
        header = (
            f"  {'job':<18} {'placement':<26} {'arrive':>8} {'start':>8} "
            f"{'end':>8} {'T̂':>8} {'err':>7}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for p in run.placements:
            where = (
                f"{p.replica_site}[{p.data_nodes}]->"
                f"{p.compute_site}[{p.compute_nodes}]"
            )
            miss = " MISS" if p.missed_deadline else ""
            lines.append(
                f"  {p.job_id:<18} {where:<26} {p.arrival:>8.3f} "
                f"{p.start:>8.3f} {p.end:>8.3f} {p.predicted_total:>8.3f} "
                f"{100 * p.relative_error:>6.1f}%{miss}"
            )
    for r in run.rejections:
        lines.append(
            f"  rejected {r.job_id} at t={r.time:.3f}s [{r.code}] {r.reason}"
        )
    if run.faulted:
        lines.append(format_resilience(run))
    return "\n".join(lines)


def format_resilience(run: "PolicyRun") -> str:
    """Render the resilience block of a faulted policy run."""
    lines: List[str] = [
        (
            f"  resilience ({run.recovery}): goodput "
            f"{100 * run.goodput:.1f}%  wasted {run.wasted_time:.4f}s  "
            f"recovery charges {run.recovery_charge_time:.4f}s"
        ),
    ]
    counts = run.fault_counts
    if counts:
        summary = "  ".join(f"{kind} x{n}" for kind, n in counts.items())
        lines.append(f"  fault events: {summary}")
    by_cause = run.preemptions_by_cause
    if by_cause:
        summary = "  ".join(f"{cause} x{n}" for cause, n in by_cause.items())
        lines.append(f"  preemptions: {summary}")
    for e in run.fault_events:
        detail = f" ({e.detail})" if e.detail else ""
        lines.append(f"    t={e.time:>9.3f}s {e.kind:<18} {e.target}{detail}")
    for p in run.preemptions:
        lines.append(
            f"    t={p.time:>9.3f}s preempted {p.job_id} attempt "
            f"{p.attempt} [{p.cause}] wasted {p.wasted:.4f}s kept "
            f"{100 * p.kept_fraction:.0f}%"
        )
    for f in run.failures:
        lines.append(
            f"    t={f.time:>9.3f}s FAILED {f.job_id} after "
            f"{f.attempts} attempt(s) [{f.code}] {f.reason}"
        )
    return "\n".join(lines)


def format_error_trend(run: "PolicyRun", *, buckets: int = 8) -> str:
    """Bucketed mean relative error over completion order, as bars.

    The downward trend of this chart is the visible effect of online
    calibration: later jobs are predicted with learned correction
    factors.
    """
    series = [err for _, err in run.error_series]
    if not series:
        return f"{run.label}: no completed jobs"
    buckets = max(1, min(buckets, len(series)))
    size = len(series) / buckets
    means: List[float] = []
    for b in range(buckets):
        chunk = series[int(b * size) : int((b + 1) * size)] or [series[-1]]
        means.append(sum(chunk) / len(chunk))
    top = max(means) or 1.0
    lines = [f"{run.label}: mean |err| by completion order"]
    for b, value in enumerate(means):
        lines.append(
            f"  jobs {int(b * size) + 1:>4}-{int((b + 1) * size):>4} "
            f"{100 * value:>7.2f}% {horizontal_bar(value, top, width=30)}"
        )
    return "\n".join(lines)


def format_broker(report: "BrokerReport", *, schedule: bool = False) -> str:
    """Render a full broker report: comparison table + per-policy runs."""
    faulted = any(run.faulted for run in report.runs)
    header = (
        f"{'policy':<28} {'done':>5} {'rej':>4} {'makespan':>10} "
        f"{'wait':>8} {'miss%':>6} {'err%':>6}"
    )
    if faulted:
        header += f" {'fail':>5} {'goodput':>8}"
    lines: List[str] = [
        f"broker workload: {report.name}",
        header,
        "-" * len(header),
    ]
    for run in report.runs:
        row = (
            f"{run.label:<28} {len(run.placements):>5} "
            f"{len(run.rejections):>4} {run.makespan:>9.4f}s "
            f"{run.mean_wait:>7.4f}s {100 * run.deadline_miss_rate:>5.1f}% "
            f"{100 * run.mean_error():>5.2f}%"
        )
        if faulted:
            row += f" {len(run.failures):>5} {100 * run.goodput:>7.1f}%"
        lines.append(row)
    for run in report.runs:
        lines.append("")
        lines.append(format_policy_run(run, schedule=schedule))
    calibrated = [run for run in report.runs if run.calibrated]
    if calibrated:
        lines.append("")
        lines.append(format_error_trend(calibrated[0]))
    return "\n".join(lines)
