"""Experiment-result persistence and comparison.

Figure reproductions are deterministic, so a stored result is a baseline:
re-running after a change and diffing against the stored copy is the
regression workflow (`compare_results`), and archived results feed the
report generators without re-running anything.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List

from repro.core.durable import (
    atomic_write_json,
    check_format_version,
    read_json_document,
)
from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import ExperimentResult, ExperimentRow

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "RowDelta",
    "compare_results",
]

_FORMAT_VERSION = 1


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """A JSON-serializable snapshot of an experiment result."""
    metadata = {}
    for key, value in result.metadata.items():
        if isinstance(value, (str, int, float, bool, list, dict, type(None))):
            metadata[key] = value
        else:
            metadata[key] = repr(value)
    return {
        "format_version": _FORMAT_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "workload": result.workload,
        "metadata": metadata,
        "rows": [
            {
                "data_nodes": row.data_nodes,
                "compute_nodes": row.compute_nodes,
                "model": row.model,
                "actual": row.actual,
                "predicted": row.predicted,
            }
            for row in result.rows
        ],
    }


def result_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Rebuild an experiment result from :func:`result_to_dict` output."""
    check_format_version(data, "experiment result", _FORMAT_VERSION)
    try:
        result = ExperimentResult(
            experiment_id=str(data["experiment_id"]),
            title=str(data["title"]),
            workload=str(data["workload"]),
            metadata=dict(data.get("metadata", {})),
        )
        for row in data["rows"]:
            result.rows.append(
                ExperimentRow(
                    data_nodes=int(row["data_nodes"]),
                    compute_nodes=int(row["compute_nodes"]),
                    model=str(row["model"]),
                    actual=float(row["actual"]),
                    predicted=float(row["predicted"]),
                )
            )
        return result
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed experiment result: {exc}") from exc


def save_result(
    result: ExperimentResult, path: str | pathlib.Path
) -> pathlib.Path:
    """Durably write an experiment result to a JSON file.

    Results are regression baselines; the write is atomic (temp file +
    fsync + rename) so a crash mid-save cannot corrupt the baseline the
    regression workflow diffs against.
    """
    return atomic_write_json(path, result_to_dict(result))


def load_result(path: str | pathlib.Path) -> ExperimentResult:
    """Read an experiment result from a JSON file.

    A truncated or tampered file raises
    :class:`~repro.core.durable.CorruptStoreError`, an unknown
    ``format_version`` raises
    :class:`~repro.core.durable.FormatVersionError`.
    """
    data = read_json_document(
        path,
        "experiment result",
        remedy="re-run the experiment (`repro figure FIGID`) to "
        "regenerate it",
    )
    return result_from_dict(data)


@dataclass(frozen=True)
class RowDelta:
    """Error change of one (configuration, model) cell between two runs."""

    label: str
    model: str
    baseline_error: float
    current_error: float

    @property
    def delta(self) -> float:
        """Signed change (positive = got worse)."""
        return self.current_error - self.baseline_error


def compare_results(
    baseline: ExperimentResult,
    current: ExperimentResult,
    threshold: float = 0.0,
) -> List[RowDelta]:
    """Cells whose relative error moved by more than ``threshold``.

    Raises when the two results are not the same experiment or do not
    cover the same (configuration, model) cells.
    """
    if baseline.experiment_id != current.experiment_id:
        raise ConfigurationError(
            f"cannot compare '{baseline.experiment_id}' against "
            f"'{current.experiment_id}'"
        )
    base_cells = {(r.label, r.model): r.error for r in baseline.rows}
    cur_cells = {(r.label, r.model): r.error for r in current.rows}
    if set(base_cells) != set(cur_cells):
        raise ConfigurationError(
            "results cover different (configuration, model) cells"
        )
    deltas = [
        RowDelta(
            label=label,
            model=model,
            baseline_error=base_cells[(label, model)],
            current_error=cur_cells[(label, model)],
        )
        for (label, model) in sorted(base_cells)
    ]
    return [d for d in deltas if abs(d.delta) > threshold]
