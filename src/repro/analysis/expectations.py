"""The paper's qualitative claims, as checkable data.

Every evaluation figure of the paper comes with qualitative claims — which
model wins, where the hard configurations are, how large errors get.  This
module encodes them as :class:`FigureExpectation` records and provides a
checker, so "does the reproduction still match the paper?" is a single
function call (used by the benchmark harness and the regression tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import mean, model_ordering_holds
from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import ExperimentResult

__all__ = ["FigureExpectation", "EXPECTATIONS", "check_expectation"]


@dataclass(frozen=True)
class FigureExpectation:
    """What the paper's figure shows, reduced to checkable properties.

    Attributes
    ----------
    figure:
        Experiment id (``fig02`` ... ``fig13``, ``ext-*``).
    models_ordered:
        Whether the nested models must be ordered by mean error.
    max_error_bounds:
        Per-model worst-case relative-error ceilings (fractions).
    worst_at_scale_up:
        Model whose worst configuration must have >= 8 compute nodes.
    equal_nodes_hardest:
        Model for which the mean error over equal-node-count
        configurations must exceed the mean over 16-compute-node ones.
    """

    figure: str
    models_ordered: bool = False
    max_error_bounds: Dict[str, float] = field(default_factory=dict)
    worst_at_scale_up: Optional[str] = None
    equal_nodes_hardest: Optional[str] = None


#: One expectation record per reproduced figure.
EXPECTATIONS: Dict[str, FigureExpectation] = {
    "fig02": FigureExpectation(
        "fig02",
        models_ordered=True,
        max_error_bounds={"global reduction": 0.05, "no communication": 0.12},
        worst_at_scale_up="no communication",
    ),
    "fig03": FigureExpectation(
        "fig03",
        models_ordered=True,
        max_error_bounds={"global reduction": 0.06, "no communication": 0.14},
        worst_at_scale_up="no communication",
    ),
    "fig04": FigureExpectation(
        "fig04",
        models_ordered=True,
        max_error_bounds={"global reduction": 0.08, "no communication": 0.16},
        worst_at_scale_up="no communication",
    ),
    "fig05": FigureExpectation(
        "fig05",
        models_ordered=True,
        max_error_bounds={"global reduction": 0.05, "no communication": 0.12},
        worst_at_scale_up="no communication",
    ),
    "fig06": FigureExpectation(
        "fig06",
        models_ordered=True,
        max_error_bounds={"global reduction": 0.05, "no communication": 0.12},
        worst_at_scale_up="no communication",
    ),
    "fig07": FigureExpectation(
        "fig07", max_error_bounds={"global reduction": 0.04}
    ),
    "fig08": FigureExpectation(
        "fig08", max_error_bounds={"global reduction": 0.04}
    ),
    "fig09": FigureExpectation(
        "fig09", max_error_bounds={"global reduction": 0.02}
    ),
    "fig10": FigureExpectation(
        "fig10", max_error_bounds={"global reduction": 0.02}
    ),
    "fig11": FigureExpectation(
        "fig11", max_error_bounds={"cross-cluster": 0.12}
    ),
    "fig12": FigureExpectation(
        "fig12",
        max_error_bounds={"cross-cluster": 0.15},
        equal_nodes_hardest="cross-cluster",
    ),
    "fig13": FigureExpectation(
        "fig13",
        max_error_bounds={"cross-cluster": 0.10},
        equal_nodes_hardest="cross-cluster",
    ),
    "ext-apriori": FigureExpectation(
        "ext-apriori",
        models_ordered=True,
        max_error_bounds={"global reduction": 0.08},
    ),
    "ext-neuralnet": FigureExpectation(
        "ext-neuralnet",
        models_ordered=True,
        max_error_bounds={"global reduction": 0.08},
    ),
}


def check_expectation(
    result: ExperimentResult, expectation: Optional[FigureExpectation] = None
) -> List[str]:
    """Return the list of violated claims (empty = reproduction holds).

    ``worst_at_scale_up`` and ``equal_nodes_hardest`` are skipped when the
    result was produced on a reduced grid that cannot express them.
    """
    if expectation is None:
        expectation = EXPECTATIONS.get(result.experiment_id)
        if expectation is None:
            raise ConfigurationError(
                f"no expectation recorded for '{result.experiment_id}'"
            )
    violations: List[str] = []

    # 0.1% absolute slack: qualitative claims must not hinge on noise-level
    # differences between near-exact predictions.
    if expectation.models_ordered and not model_ordering_holds(
        result, tolerance=1e-3
    ):
        violations.append("model mean-error ordering violated")

    for model, bound in expectation.max_error_bounds.items():
        if model not in result.models:
            violations.append(f"model '{model}' missing from result")
            continue
        worst = result.max_error(model)
        if worst > bound:
            violations.append(
                f"{model}: max error {worst:.2%} exceeds bound {bound:.2%}"
            )

    if expectation.worst_at_scale_up is not None:
        rows = result.rows_for_model(expectation.worst_at_scale_up)
        # Only meaningful on the full grid (which reaches 16 compute nodes).
        if rows and max(r.compute_nodes for r in rows) >= 16:
            worst_row = max(rows, key=lambda r: r.error)
            if worst_row.compute_nodes < 8:
                violations.append(
                    f"{expectation.worst_at_scale_up}: worst configuration "
                    f"{worst_row.label} is not a scale-up"
                )

    if expectation.equal_nodes_hardest is not None:
        rows = result.rows_for_model(expectation.equal_nodes_hardest)
        equal = [r.error for r in rows if r.compute_nodes == r.data_nodes]
        sixteen = [r.error for r in rows if r.compute_nodes == 16]
        if equal and sixteen and mean(equal) <= mean(sixteen):
            violations.append(
                f"{expectation.equal_nodes_hardest}: equal-node-count "
                "configurations are not the hardest"
            )

    return violations
