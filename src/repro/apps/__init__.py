"""The paper's five evaluation applications, as FREERIDE-G reductions.

Three traditional data-mining techniques and two scientific feature-mining
algorithms (Section 4 of the paper):

- :mod:`repro.apps.kmeans`  — k-means clustering (constant reduction-object
  size; linear-constant global reduction).
- :mod:`repro.apps.em`      — Expectation-Maximization clustering of a
  Gaussian mixture, alternating E and M passes.
- :mod:`repro.apps.knn`     — k-nearest-neighbour search (constant object
  size; linear-constant global reduction).
- :mod:`repro.apps.vortex`  — vortex detection in CFD velocity fields
  (linear object size; constant-linear global reduction).
- :mod:`repro.apps.defect`  — molecular defect detection and categorization
  in Si lattices (linear object size; constant-linear global reduction).

Each application performs its computation for real on the synthetic data
and charges operation counts to the middleware's instrumentation; results
are invariant to the (data nodes, compute nodes) configuration.

Two further generalized reductions the paper's Section 2.2 names as
canonical for the middleware are also provided (they are not part of the
paper's evaluation figures):

- :mod:`repro.apps.apriori`   — apriori association mining.
- :mod:`repro.apps.neuralnet` — artificial-neural-network training.
"""

from typing import Callable, Dict

from repro.apps.apriori import AprioriMining
from repro.apps.defect import DefectDetection
from repro.apps.em import EMClustering
from repro.apps.kmeans import KMeansClustering
from repro.apps.knn import KNNSearch
from repro.apps.neuralnet import NeuralNetTraining
from repro.apps.vortex import VortexDetection
from repro.middleware.api import GeneralizedReduction

#: name -> zero-argument factory producing a fresh application instance
#: with the default evaluation parameters.
APP_FACTORIES: Dict[str, Callable[[], GeneralizedReduction]] = {
    KMeansClustering.name: KMeansClustering,
    EMClustering.name: EMClustering,
    KNNSearch.name: KNNSearch,
    VortexDetection.name: VortexDetection,
    DefectDetection.name: DefectDetection,
    AprioriMining.name: AprioriMining,
    NeuralNetTraining.name: NeuralNetTraining,
}

__all__ = [
    "APP_FACTORIES",
    "AprioriMining",
    "DefectDetection",
    "EMClustering",
    "KMeansClustering",
    "KNNSearch",
    "NeuralNetTraining",
    "VortexDetection",
]
