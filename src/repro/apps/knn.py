"""k-nearest-neighbour search as a FREERIDE-G generalized reduction.

Section 4.3 of the paper: training samples are distributed among nodes;
each node scans the samples it owns to maintain the k nearest neighbours of
every query (Euclidean distance); a global reduction computes the overall
k nearest from the per-node candidate sets.

The per-query candidate set is a *min-k semilattice*: merging candidate
sets is associative, commutative and idempotent, so chunk placement cannot
change the answer.  The reduction object holds ``q x k`` (distance, label)
pairs — **constant object size** — and merging ``c`` such objects makes the
global reduction **linear-constant**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence

import numpy as np

from repro.apps.base import charge_distance_ops, pairwise_sq_dists
from repro.middleware.api import GeneralizedReduction
from repro.middleware.instrument import OpCounter
from repro.simgrid.errors import ConfigurationError

__all__ = ["KNNSearch", "KNNCandidates"]


@dataclass
class KNNCandidates:
    """Per-query best-k candidates: parallel (distances, labels) arrays."""

    dists: np.ndarray  # (num_queries, k) squared distances, +inf padded
    labels: np.ndarray  # (num_queries, k) class labels, -1 padded

    @classmethod
    def empty(cls, num_queries: int, k: int) -> "KNNCandidates":
        return cls(
            dists=np.full((num_queries, k), np.inf, dtype=np.float64),
            labels=np.full((num_queries, k), -1.0, dtype=np.float64),
        )

    @property
    def nbytes(self) -> float:
        return float(self.dists.nbytes + self.labels.nbytes) + 8.0

    def absorb(self, new_dists: np.ndarray, new_labels: np.ndarray) -> None:
        """Merge candidate columns and keep the k smallest per query."""
        dists = np.concatenate([self.dists, new_dists], axis=1)
        labels = np.concatenate([self.labels, new_labels], axis=1)
        k = self.dists.shape[1]
        order = np.argsort(dists, axis=1, kind="stable")[:, :k]
        rows = np.arange(dists.shape[0])[:, None]
        self.dists = dists[rows, order]
        self.labels = labels[rows, order]


class KNNSearch(GeneralizedReduction):
    """Batch kNN classification of a fixed query set.

    Parameters
    ----------
    k:
        Neighbours per query.
    num_queries:
        Size of the query batch (generated deterministically in
        :meth:`begin` from ``seed`` inside the training data's bounding
        box).
    seed:
        Query-generation seed.
    """

    name = "knn"
    broadcasts_result = False
    multi_pass_hint = False

    def __init__(self, k: int = 8, num_queries: int = 64, seed: int = 23) -> None:
        if k <= 0 or num_queries <= 0:
            raise ConfigurationError("k and num_queries must be positive")
        self.k = k
        self.num_queries = num_queries
        self.seed = seed
        self.queries: np.ndarray | None = None
        self._num_dims = 0
        self._final: KNNCandidates | None = None

    def begin(self, meta: Dict[str, Any]) -> None:
        self._num_dims = int(meta["num_dims"])
        rng = np.random.default_rng(self.seed)
        box = float(meta.get("query_box", 10.0))
        self.queries = rng.uniform(
            -box, box, size=(self.num_queries, self._num_dims)
        )
        self._final = None

    def make_local_object(self) -> KNNCandidates:
        return KNNCandidates.empty(self.num_queries, self.k)

    def process_chunk(
        self, obj: KNNCandidates, payload: np.ndarray, ops: OpCounter
    ) -> None:
        assert self.queries is not None, "begin() must run first"
        records = np.asarray(payload, dtype=np.float64)
        features = records[:, : self._num_dims]
        labels = records[:, self._num_dims]
        n = features.shape[0]

        d2 = pairwise_sq_dists(self.queries, features)  # (q, n)
        take = min(self.k, n)
        part = np.argpartition(d2, take - 1, axis=1)[:, :take]
        rows = np.arange(self.num_queries)[:, None]
        obj.absorb(d2[rows, part], np.broadcast_to(labels, d2.shape)[rows, part])

        charge_distance_ops(ops, n, self.num_queries, self._num_dims)
        # Selection and candidate-set maintenance are branch-heavy: kNN has
        # the branchiest op mix of the five applications, which is what
        # gives it the smallest cross-cluster compute scaling factor.
        qn = float(self.num_queries) * n
        ops.charge(
            branch=2.0 * qn + self.num_queries * 4.0 * self.k,
            mem=qn + self.num_queries * 2.0 * self.k,
        )

    def object_nbytes(self, obj: KNNCandidates) -> float:
        return obj.nbytes

    def combine(
        self, objs: Sequence[KNNCandidates], ops: OpCounter
    ) -> KNNCandidates:
        merged = KNNCandidates(
            dists=objs[0].dists.copy(), labels=objs[0].labels.copy()
        )
        per_merge = float(self.num_queries) * self.k
        for other in objs[1:]:
            merged.absorb(other.dists, other.labels)
            ops.charge(branch=4.0 * per_merge, mem=2.0 * per_merge)
        return merged

    def merge_local(
        self, objs: Sequence[KNNCandidates], ops: OpCounter
    ) -> KNNCandidates:
        # Candidate sets form a semilattice, so the shared-memory merge is
        # the same min-k absorb the global reduction uses.
        return self.combine(objs, ops)

    def update(self, combined: KNNCandidates, ops: OpCounter) -> bool:
        self._final = combined
        # Majority vote over each query's k labels.
        ops.charge(branch=float(self.num_queries) * self.k)
        return False

    def result(self) -> Dict[str, Any]:
        assert self._final is not None, "run has not completed"
        labels = self._final.labels
        votes = np.empty(self.num_queries, dtype=np.int64)
        for q in range(self.num_queries):
            vals, counts = np.unique(
                labels[q][labels[q] >= 0], return_counts=True
            )
            votes[q] = int(vals[np.argmax(counts)]) if len(vals) else -1
        return {
            "neighbors_dists": np.sqrt(self._final.dists),
            "neighbors_labels": self._final.labels.astype(np.int64),
            "predictions": votes,
        }
