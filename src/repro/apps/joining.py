"""Cross-partition feature joining shared by the scientific applications.

Both vortex detection and molecular defect detection partition their grid
spatially, extract features locally, and then — in the serialized global
combination — join feature *fragments* that straddle partition boundaries
(Sections 4.4-4.5 of the paper).  The joining machinery (a union-find over
fragments plus boundary-adjacency tests) is shared here.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Sequence

__all__ = ["UnionFind", "join_fragments"]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register an element as its own singleton set (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def find(self, element: Hashable) -> Hashable:
        """Representative of the element's set."""
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def groups(self) -> List[List[Hashable]]:
        """All sets, each as a list; deterministic insertion order."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), []).append(element)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, element: object) -> bool:
        return element in self._parent


def join_fragments(
    fragments: Sequence[Dict[str, Any]],
    adjacent: Callable[[Dict[str, Any], Dict[str, Any]], bool],
) -> List[List[Dict[str, Any]]]:
    """Group fragments into features using a boundary-adjacency predicate.

    ``adjacent(a, b)`` is consulted only for fragments in *consecutive*
    blocks where ``a`` touches its lower boundary and ``b`` touches its
    upper boundary — the only geometry in which a feature can straddle the
    cut.  Fragments spanning a whole block chain through transitivity.
    """
    uf = UnionFind(range(len(fragments)))
    by_block: Dict[int, List[int]] = {}
    for idx, frag in enumerate(fragments):
        by_block.setdefault(int(frag["block"]), []).append(idx)

    for block, members in sorted(by_block.items()):
        upper = by_block.get(block + 1)
        if not upper:
            continue
        for i in members:
            if not fragments[i]["touches_hi"]:
                continue
            for j in upper:
                if not fragments[j]["touches_lo"]:
                    continue
                if adjacent(fragments[i], fragments[j]):
                    uf.union(i, j)

    return [
        [fragments[i] for i in sorted(group)] for group in uf.groups()
    ]
