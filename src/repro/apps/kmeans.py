"""k-means clustering as a FREERIDE-G generalized reduction.

Section 4.1 of the paper: data instances are partitioned among nodes; each
node accumulates, per cluster, the sum of its assigned points and their
count (instead of moving centres immediately); a global reduction combines
the local sums and recomputes the centres for the next iteration.

Model classes (Section 5): **constant reduction object size** (k ``(d+1)``
accumulators, independent of dataset size and node count) and
**linear-constant global reduction time** (merging ``c`` objects is linear
in the node count, independent of dataset size).
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

import numpy as np

from repro.apps.base import charge_distance_ops, pairwise_sq_dists
from repro.hotpath import hot
from repro.middleware.api import GeneralizedReduction
from repro.middleware.instrument import OpCounter
from repro.middleware.reduction import ArrayReductionObject
from repro.simgrid.errors import ConfigurationError

__all__ = ["KMeansClustering"]


class KMeansClustering(GeneralizedReduction):
    """Fixed-iteration distributed k-means.

    Parameters
    ----------
    k:
        Number of clusters.
    num_iterations:
        Passes over the data.  Fixed (rather than convergence-tested) so
        every resource configuration performs identical work, as the
        prediction model requires.
    init_box:
        Half-width of the uniform box initial centres are drawn from.
    seed:
        Seed for the deterministic centre initialization.
    """

    name = "kmeans"
    broadcasts_result = True
    multi_pass_hint = True

    def __init__(
        self,
        k: int = 10,
        num_iterations: int = 10,
        init_box: float = 10.0,
        seed: int = 17,
    ) -> None:
        if k <= 0 or num_iterations <= 0:
            raise ConfigurationError("k and num_iterations must be positive")
        self.k = k
        self.num_iterations = num_iterations
        self.init_box = init_box
        self.seed = seed
        self.centers: np.ndarray | None = None
        self._num_dims = 0
        self._pass = 0
        self._shift_history: list[float] = []

    # ------------------------------------------------------------------
    # GeneralizedReduction interface
    # ------------------------------------------------------------------

    def begin(self, meta: Dict[str, Any]) -> None:
        self._num_dims = int(meta["num_dims"])
        sample = meta.get("init_sample")
        if sample is not None and len(sample) >= self.k:
            from repro.apps.base import farthest_point_init

            self.centers = farthest_point_init(sample, self.k, seed=self.seed)
        else:
            rng = np.random.default_rng(self.seed)
            self.centers = rng.uniform(
                -self.init_box, self.init_box, size=(self.k, self._num_dims)
            )
        self._pass = 0
        self._shift_history = []

    def make_local_object(self) -> ArrayReductionObject:
        # Row i holds [sum of assigned points (d), assigned count (1)].
        return ArrayReductionObject.zeros((self.k, self._num_dims + 1))

    @hot
    def process_chunk(
        self, obj: ArrayReductionObject, payload: np.ndarray, ops: OpCounter
    ) -> None:
        assert self.centers is not None, "begin() must run first"
        points = np.asarray(payload, dtype=np.float64)
        n, d = points.shape
        d2 = pairwise_sq_dists(points, self.centers)
        assign = np.argmin(d2, axis=1)

        contribution = np.zeros((self.k, d + 1))
        np.add.at(contribution[:, :d], assign, points)
        counts = np.bincount(assign, minlength=self.k).astype(np.float64)
        contribution[:, d] = counts
        obj.accumulate(contribution, count=float(n))

        charge_distance_ops(ops, n, self.k, d)
        # Scatter-accumulate of the assigned points into the object.
        ops.charge(flop=float(n) * d, mem=2.0 * n * d, branch=float(n))

    def object_nbytes(self, obj: ArrayReductionObject) -> float:
        return obj.nbytes

    def combine(
        self, objs: Sequence[ArrayReductionObject], ops: OpCounter
    ) -> ArrayReductionObject:
        merged = objs[0].copy()
        per_obj = float(merged.values.size)
        for other in objs[1:]:
            merged.merge(other)
            ops.charge(flop=per_obj, mem=2.0 * per_obj)
        return merged

    def update(self, combined: ArrayReductionObject, ops: OpCounter) -> bool:
        assert self.centers is not None
        d = self._num_dims
        sums = combined.values[:, :d]
        counts = combined.values[:, d]
        new_centers = self.centers.copy()
        occupied = counts > 0
        new_centers[occupied] = sums[occupied] / counts[occupied, None]

        shift = float(np.sqrt(((new_centers - self.centers) ** 2).sum()))
        self._shift_history.append(shift)
        self.centers = new_centers

        # Centre recomputation: one divide per coordinate plus the shift norm.
        ops.charge(
            flop=2.0 * self.k * d,
            mem=2.0 * self.k * d,
            branch=float(self.k),
        )

        self._pass += 1
        return self._pass < self.num_iterations

    def result(self) -> Dict[str, Any]:
        assert self.centers is not None
        return {
            "centers": self.centers.copy(),
            "iterations": self._pass,
            "shift_history": list(self._shift_history),
        }
