"""Vortex detection in CFD velocity fields as a FREERIDE-G reduction.

Section 4.4 of the paper (the feature-mining algorithm of Machiraju et
al.): individual grid points are *detected* as vortical, *classified* (by
swirl sense here), and *aggregated* into volumetric regions; partitions
overlap so the detection phase needs no communication; a global combination
"joins parts of a vortex belonging to different nodes", after which
de-noising and sorting run on the joined set.

Model classes: the reduction object is the node's vortex-fragment list,
which scales with the data the node holds — the paper's **linear reduction
object size** class — and the join/denoise/sort global work scales with the
total feature count, i.e. with dataset size and not node count — the
**constant-linear global reduction time** class.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np
from scipy import ndimage

from repro.apps.joining import join_fragments
from repro.middleware.api import GeneralizedReduction
from repro.middleware.instrument import OpCounter
from repro.middleware.reduction import FeatureListReductionObject
from repro.simgrid.errors import ConfigurationError

__all__ = ["VortexDetection"]

#: Serialized bytes per vortex fragment (bbox, stats, boundary summary).
FRAGMENT_NBYTES = 64.0


class VortexDetection(GeneralizedReduction):
    """Detect, classify and aggregate vortices in a 2-D velocity field.

    Parameters
    ----------
    vort_threshold:
        |vorticity| above which a grid point is detected as vortical.
    min_area:
        De-noising floor: joined regions smaller than this are dropped.
    """

    name = "vortex"
    broadcasts_result = False
    multi_pass_hint = False

    def __init__(self, vort_threshold: float = 0.3, min_area: int = 4) -> None:
        if vort_threshold <= 0:
            raise ConfigurationError("vorticity threshold must be positive")
        if min_area < 1:
            raise ConfigurationError("min_area must be >= 1")
        self.vort_threshold = vort_threshold
        self.min_area = min_area
        self._vortices: List[Dict[str, Any]] | None = None

    def begin(self, meta: Dict[str, Any]) -> None:
        self._vortices = None

    def make_local_object(self) -> FeatureListReductionObject:
        return FeatureListReductionObject(bytes_per_feature=FRAGMENT_NBYTES)

    def process_chunk(
        self,
        obj: FeatureListReductionObject,
        payload: Dict[str, Any],
        ops: OpCounter,
    ) -> None:
        u = np.asarray(payload["u"], dtype=np.float64)
        v = np.asarray(payload["v"], dtype=np.float64)
        halo_lo = int(payload["halo_lo"])
        halo_hi = int(payload["halo_hi"])
        y0 = int(payload["y0"])
        block = int(payload["block"])

        # Vorticity via central differences; the halo rows make the
        # interior rows exact, so detection needs no communication.
        dvdx = np.gradient(v, axis=1)
        dudy = np.gradient(u, axis=0)
        vorticity = dvdx - dudy
        rows = u.shape[0] - halo_lo - halo_hi
        interior = vorticity[halo_lo : halo_lo + rows]

        mask = np.abs(interior) > self.vort_threshold
        labels, num = ndimage.label(mask)

        for comp in range(1, num + 1):
            ys, xs = np.nonzero(labels == comp)
            strength = float(interior[ys, xs].sum())
            obj.add(
                {
                    "block": block,
                    "area": int(ys.size),
                    "strength": strength,
                    "sign": 1.0 if strength >= 0 else -1.0,
                    "ymin": int(ys.min()) + y0,
                    "ymax": int(ys.max()) + y0,
                    "xmin": int(xs.min()),
                    "xmax": int(xs.max()),
                    "touches_lo": bool(halo_lo and ys.min() == 0),
                    "touches_hi": bool(halo_hi and ys.max() == rows - 1),
                    "cols_lo": frozenset(xs[ys == 0].tolist()),
                    "cols_hi": frozenset(xs[ys == rows - 1].tolist()),
                }
            )

        cells = float(interior.size)
        detected = float(mask.sum())
        # Per-point detection evaluates the velocity-gradient tensor and
        # its swirl criterion (eigenvalue analysis) — a few hundred FLOPs
        # per cell in EVITA-style feature mining; labelling and scanning
        # are branchy.  Vortex detection has the most FLOP-weighted mix of
        # the five applications (largest cross-cluster compute factor).
        ops.charge(
            flop=600.0 * cells + 40.0 * detected,
            mem=150.0 * cells,
            branch=80.0 * cells + 30.0 * detected,
        )

    def object_nbytes(self, obj: FeatureListReductionObject) -> float:
        return obj.nbytes

    def combine(
        self, objs: Sequence[FeatureListReductionObject], ops: OpCounter
    ) -> List[Dict[str, Any]]:
        fragments: List[Dict[str, Any]] = []
        for obj in objs:
            fragments.extend(obj.features)

        def adjacent(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
            # Two fragments continue one region iff they share a column
            # along the cut and swirl the same way.
            return a["sign"] == b["sign"] and bool(a["cols_hi"] & b["cols_lo"])

        groups = join_fragments(fragments, adjacent)
        joined: List[Dict[str, Any]] = []
        for group in groups:
            area = sum(f["area"] for f in group)
            strength = sum(f["strength"] for f in group)
            joined.append(
                {
                    "area": area,
                    "strength": strength,
                    "sign": 1.0 if strength >= 0 else -1.0,
                    "ymin": min(f["ymin"] for f in group),
                    "ymax": max(f["ymax"] for f in group),
                    "xmin": min(f["xmin"] for f in group),
                    "xmax": max(f["xmax"] for f in group),
                    "num_fragments": len(group),
                }
            )

        # De-noising and sorting of the joined regions (Section 4.4).
        denoised = [v for v in joined if v["area"] >= self.min_area]
        denoised.sort(key=lambda v: abs(v["strength"]), reverse=True)

        # Joining, de-noising and sorting walk the per-region point sets
        # (total detected cells scale with the field volume — the source
        # of the constant-linear global-reduction class).
        total_cells = float(sum(f["area"] for f in fragments))
        nfrag = float(len(fragments))
        njoin = float(len(joined))
        ops.charge(
            flop=250.0 * total_cells + 6.0 * nfrag,
            mem=120.0 * total_cells + 8.0 * nfrag,
            branch=180.0 * total_cells
            + 12.0 * nfrag
            + 6.0 * njoin * max(np.log2(njoin + 1.0), 1.0),
        )
        return denoised

    def update(self, combined: List[Dict[str, Any]], ops: OpCounter) -> bool:
        self._vortices = combined
        ops.charge(branch=float(len(combined)))
        return False

    def result(self) -> Dict[str, Any]:
        assert self._vortices is not None, "run has not completed"
        return {
            "vortices": list(self._vortices),
            "count": len(self._vortices),
        }
