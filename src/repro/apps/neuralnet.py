"""Artificial-neural-network training as a FREERIDE-G reduction.

Section 2.2 of the paper lists "artificial neural networks [14]" among the
canonical generalized reductions.  Full-batch gradient descent on a
one-hidden-layer MLP maps directly onto the middleware:

- Each epoch is one pass: every node runs forward/backward over its local
  samples and accumulates the **gradient sums** (plus the loss) into a
  replicated reduction object whose size depends only on the network
  shape — the **constant object size** class.
- The global reduction adds the per-node gradients; the master applies the
  update and broadcasts fresh weights — merge work proportional to the
  node count: **linear-constant** global reduction.

Because full-batch gradients are exact sums over samples, training is
bit-for-bit invariant to the data partitioning, which the tests assert.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

import numpy as np

from repro.middleware.api import GeneralizedReduction
from repro.middleware.instrument import OpCounter
from repro.middleware.reduction import ArrayReductionObject
from repro.simgrid.errors import ConfigurationError

__all__ = ["NeuralNetTraining"]


class NeuralNetTraining(GeneralizedReduction):
    """One-hidden-layer MLP classifier trained with batch gradient descent.

    Consumes labelled training records (features + class label in the last
    column, as produced by
    :func:`repro.datagen.points.make_training_dataset`).

    Parameters
    ----------
    hidden:
        Hidden-layer width.
    num_epochs:
        Passes over the data.
    learning_rate:
        Batch gradient-descent step size.
    seed:
        Weight-initialization seed.
    """

    name = "neuralnet"
    broadcasts_result = True  # updated weights every epoch
    multi_pass_hint = True

    def __init__(
        self,
        hidden: int = 16,
        num_epochs: int = 8,
        learning_rate: float = 0.2,
        seed: int = 37,
    ) -> None:
        if hidden <= 0 or num_epochs <= 0:
            raise ConfigurationError("hidden width and epochs must be positive")
        if learning_rate <= 0:
            raise ConfigurationError("learning rate must be positive")
        self.hidden = hidden
        self.num_epochs = num_epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self._num_dims = 0
        self._num_classes = 0
        self._epoch = 0
        self.w1: np.ndarray | None = None
        self.b1: np.ndarray | None = None
        self.w2: np.ndarray | None = None
        self.b2: np.ndarray | None = None
        self._loss_history: list[float] = []

    # ------------------------------------------------------------------
    # GeneralizedReduction interface
    # ------------------------------------------------------------------

    def begin(self, meta: Dict[str, Any]) -> None:
        self._num_dims = int(meta["num_dims"])
        self._num_classes = int(meta["num_classes"])
        rng = np.random.default_rng(self.seed)
        scale_in = 1.0 / np.sqrt(self._num_dims)
        scale_hidden = 1.0 / np.sqrt(self.hidden)
        self.w1 = rng.normal(0.0, scale_in, size=(self._num_dims, self.hidden))
        self.b1 = np.zeros(self.hidden)
        self.w2 = rng.normal(0.0, scale_hidden, size=(self.hidden, self._num_classes))
        self.b2 = np.zeros(self._num_classes)
        self._epoch = 0
        self._loss_history = []

    @property
    def num_params(self) -> int:
        """Total trainable parameters (= reduction-object entries - 1)."""
        return (
            self._num_dims * self.hidden
            + self.hidden
            + self.hidden * self._num_classes
            + self._num_classes
        )

    def make_local_object(self) -> ArrayReductionObject:
        # [grad w1 | grad b1 | grad w2 | grad b2 | loss]
        return ArrayReductionObject.zeros(self.num_params + 1)

    def process_chunk(
        self, obj: ArrayReductionObject, payload: np.ndarray, ops: OpCounter
    ) -> None:
        assert self.w1 is not None and self.w2 is not None
        records = np.asarray(payload, dtype=np.float64)
        x = records[:, : self._num_dims]
        labels = records[:, self._num_dims].astype(np.int64)
        n = x.shape[0]
        onehot = np.zeros((n, self._num_classes))
        onehot[np.arange(n), np.clip(labels, 0, self._num_classes - 1)] = 1.0

        # Forward.
        hidden_pre = x @ self.w1 + self.b1
        hidden = np.tanh(hidden_pre)
        logits = hidden @ self.w2 + self.b2
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        loss = -np.log(
            np.maximum(probs[np.arange(n), np.clip(labels, 0, self._num_classes - 1)], 1e-300)
        ).sum()

        # Backward (sums, not means: associative across chunks).
        dlogits = probs - onehot
        grad_w2 = hidden.T @ dlogits
        grad_b2 = dlogits.sum(axis=0)
        dhidden = (dlogits @ self.w2.T) * (1.0 - hidden**2)
        grad_w1 = x.T @ dhidden
        grad_b1 = dhidden.sum(axis=0)

        contribution = np.concatenate(
            [grad_w1.ravel(), grad_b1, grad_w2.ravel(), grad_b2, [loss]]
        )
        obj.accumulate(contribution, count=float(n))

        d, h, o = self._num_dims, self.hidden, self._num_classes
        # Two GEMMs forward, three backward — strongly FLOP-dominated.
        gemm = float(n) * (d * h + h * o)
        ops.charge(
            flop=5.0 * gemm + 12.0 * n * (h + o),
            mem=float(n) * (d + h + o) + float(self.num_params),
            branch=2.0 * float(n),
        )

    def object_nbytes(self, obj: ArrayReductionObject) -> float:
        return obj.nbytes

    def combine(
        self, objs: Sequence[ArrayReductionObject], ops: OpCounter
    ) -> ArrayReductionObject:
        merged = objs[0].copy()
        per_obj = float(merged.values.size)
        for other in objs[1:]:
            merged.merge(other)
            ops.charge(flop=per_obj, mem=2.0 * per_obj)
        return merged

    def update(self, combined: ArrayReductionObject, ops: OpCounter) -> bool:
        assert self.w1 is not None and self.w2 is not None
        d, h, o = self._num_dims, self.hidden, self._num_classes
        n = max(combined.count, 1.0)
        flat = combined.values
        cut1 = d * h
        cut2 = cut1 + h
        cut3 = cut2 + h * o
        step = self.learning_rate / n
        self.w1 = self.w1 - step * flat[:cut1].reshape(d, h)
        self.b1 = self.b1 - step * flat[cut1:cut2]
        self.w2 = self.w2 - step * flat[cut2:cut3].reshape(h, o)
        self.b2 = self.b2 - step * flat[cut3:-1]
        self._loss_history.append(float(flat[-1]) / n)

        ops.charge(flop=2.0 * self.num_params, mem=2.0 * self.num_params)
        self._epoch += 1
        return self._epoch < self.num_epochs

    def result(self) -> Dict[str, Any]:
        assert self.w1 is not None
        return {
            "weights": {
                "w1": self.w1.copy(),
                "b1": self.b1.copy(),
                "w2": self.w2.copy(),
                "b2": self.b2.copy(),
            },
            "loss_history": list(self._loss_history),
            "epochs": self._epoch,
        }

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions for a feature matrix (utility for tests)."""
        assert self.w1 is not None and self.w2 is not None
        hidden = np.tanh(np.asarray(x, dtype=np.float64) @ self.w1 + self.b1)
        logits = hidden @ self.w2 + self.b2
        return np.argmax(logits, axis=1)
