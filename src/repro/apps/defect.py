"""Molecular defect detection and categorization as a FREERIDE-G reduction.

Section 4.5 of the paper: the goal is to uncover defect nucleation in Si
lattices.  The *detection* phase marks individual atoms as defective and
clusters them into defect structures on each node's chunk of the lattice;
defects spanning multiple nodes are joined in the global combination.  The
*categorization* phase computes a candidate class for each defect by exact
shape matching against a defect catalog; non-matching defects receive new
class assignments, local catalogs are merged, and the updated catalog is
re-broadcast to compute nodes.

In this reimplementation the join + categorization + catalog merge run in
the serialized global-reduction step at the master (the catalog broadcast
is charged as reduction-object communication).  This keeps the paper's
model classes intact — the fragment list is **linear** in dataset size and
the global work is **constant-linear** — while simplifying the two-stage
load-balanced categorization the original C++ system used; see DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.apps.joining import join_fragments
from repro.middleware.api import GeneralizedReduction
from repro.middleware.instrument import OpCounter
from repro.middleware.reduction import FeatureListReductionObject
from repro.simgrid.errors import ConfigurationError

__all__ = ["DefectDetection"]

#: Serialized bytes per defect fragment (cell list is small and bounded).
FRAGMENT_NBYTES = 96.0

#: Serialized bytes per catalog entry in the re-broadcast.
CATALOG_ENTRY_NBYTES = 48.0

Signature = Tuple[Tuple[int, int, int, int], ...]


def _signature(cells: Sequence[Tuple[int, int, int, int]]) -> Signature:
    """Translation-invariant canonical form of a defect's cell set."""
    z0 = min(c[0] for c in cells)
    y0 = min(c[1] for c in cells)
    x0 = min(c[2] for c in cells)
    return tuple(sorted((z - z0, y - y0, x - x0, s) for z, y, x, s in cells))


class DefectDetection(GeneralizedReduction):
    """Detect, join and categorize defect structures in a Si lattice.

    Parameters
    ----------
    threshold:
        Displacement magnitude above which a site is marked defective.
        When the dataset metadata carries ``detection_threshold`` it takes
        precedence (the generator knows its thermal noise level).
    seed_catalog:
        Template signatures known a priori.  Defaults to the point vacancy
        and the single dopant; every other shape is discovered at run time
        through catalog updates.
    """

    name = "defect"
    broadcasts_result = True  # the updated defect catalog is re-broadcast
    multi_pass_hint = False

    def __init__(
        self,
        threshold: float = 0.3,
        seed_catalog: Sequence[Signature] | None = None,
    ) -> None:
        if threshold <= 0:
            raise ConfigurationError("detection threshold must be positive")
        self.threshold = threshold
        if seed_catalog is None:
            seed_catalog = [
                _signature([(0, 0, 0, 0)]),  # point vacancy
                _signature([(0, 0, 0, 1)]),  # single dopant
            ]
        self._seed_catalog = list(seed_catalog)
        self.catalog: Dict[Signature, int] = {}
        self._defects: List[Dict[str, Any]] | None = None

    def begin(self, meta: Dict[str, Any]) -> None:
        if "detection_threshold" in meta:
            self.threshold = float(meta["detection_threshold"])
        self.catalog = {sig: i for i, sig in enumerate(self._seed_catalog)}
        self._defects = None

    def make_local_object(self) -> FeatureListReductionObject:
        return FeatureListReductionObject(bytes_per_feature=FRAGMENT_NBYTES)

    def process_chunk(
        self,
        obj: FeatureListReductionObject,
        payload: Dict[str, Any],
        ops: OpCounter,
    ) -> None:
        disp = np.asarray(payload["displacement"], dtype=np.float64)
        species = np.asarray(payload["species"])
        halo_lo = int(payload["halo_lo"])
        halo_hi = int(payload["halo_hi"])
        z0 = int(payload["z0"])
        block = int(payload["block"])

        layers = disp.shape[0] - halo_lo - halo_hi
        interior = disp[halo_lo : halo_lo + layers]
        interior_species = species[halo_lo : halo_lo + layers]

        mask = interior > self.threshold
        labels, num = ndimage.label(mask)  # 6-connectivity in 3-D

        for comp in range(1, num + 1):
            zs, ys, xs = np.nonzero(labels == comp)
            cells = [
                (int(z) + z0, int(y), int(x), int(interior_species[z, y, x]))
                for z, y, x in zip(zs, ys, xs)
            ]
            obj.add(
                {
                    "block": block,
                    "cells": cells,
                    "touches_lo": bool(halo_lo and zs.min() == 0),
                    "touches_hi": bool(halo_hi and zs.max() == layers - 1),
                }
            )

        sites = float(interior.size)
        marked = float(mask.sum())
        # Per-atom detection scans a neighbour shell and compares bond
        # geometry — branch/memory heavy with little arithmetic: the most
        # branch-weighted mix of the five applications (smallest
        # cross-cluster compute factor after kNN).
        ops.charge(
            flop=100.0 * sites,
            mem=160.0 * sites,
            branch=320.0 * sites + 40.0 * marked,
        )

    def object_nbytes(self, obj: FeatureListReductionObject) -> float:
        return obj.nbytes

    def combine(
        self, objs: Sequence[FeatureListReductionObject], ops: OpCounter
    ) -> Dict[str, Any]:
        fragments: List[Dict[str, Any]] = []
        for obj in objs:
            fragments.extend(obj.features)

        def adjacent(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
            # Exact 6-connectivity across the slab cut: some cell of ``a``
            # sits directly below some cell of ``b``.
            b_cells: FrozenSet[Tuple[int, int, int]] = frozenset(
                (z, y, x) for z, y, x, _ in b["cells"]
            )
            return any((z + 1, y, x) in b_cells for z, y, x, _ in a["cells"])

        groups = join_fragments(fragments, adjacent)

        defects: List[Dict[str, Any]] = []
        discovered = 0
        for group in groups:
            cells = [cell for frag in group for cell in frag["cells"]]
            signature = _signature(cells)
            class_id = self.catalog.get(signature)
            if class_id is None:
                # Exact shape matching failed: catalog update (Section 4.5).
                class_id = len(self.catalog)
                self.catalog[signature] = class_id
                discovered += 1
            anchor = min((z, y, x) for z, y, x, _ in cells)
            defects.append(
                {
                    "anchor": anchor,
                    "num_sites": len(cells),
                    "class_id": class_id,
                    "signature": signature,
                    "num_fragments": len(group),
                }
            )
        defects.sort(key=lambda d: d["anchor"])

        # Exact shape matching aligns each defect's cell set against every
        # candidate class under the lattice's 24 rotations — the dominant,
        # dataset-size-proportional cost of the categorization phase.
        total_cells = float(sum(len(f["cells"]) for f in fragments))
        ncat = float(len(self.catalog))
        match_work = 24.0 * total_cells * max(ncat, 1.0)
        ops.charge(
            branch=8.0 * match_work + 20.0 * total_cells,
            mem=3.0 * match_work + 10.0 * total_cells,
            flop=1.0 * match_work,
        )
        return {"defects": defects, "discovered": discovered}

    def broadcast_nbytes(self, combined: Dict[str, Any]) -> float:
        return 8.0 + CATALOG_ENTRY_NBYTES * len(self.catalog)

    def update(self, combined: Dict[str, Any], ops: OpCounter) -> bool:
        self._defects = combined["defects"]
        ops.charge(branch=float(len(self._defects)))
        return False

    def result(self) -> Dict[str, Any]:
        assert self._defects is not None, "run has not completed"
        return {
            "defects": list(self._defects),
            "count": len(self._defects),
            "catalog_size": len(self.catalog),
        }
