"""Shared numerical kernels and op-charging conventions.

Applications charge three operation categories (see
:class:`repro.simgrid.hardware.OpCategory`):

- ``flop``   — arithmetic on array elements,
- ``mem``    — element loads/stores beyond those fused into arithmetic,
- ``branch`` — comparisons, thresholding, control-heavy scanning.

The absolute calibration is unimportant (it cancels in every prediction
ratio); what matters is that counts are *proportional to the real work*
performed on the actual arrays, and that different applications have
different category mixes — the source of the paper's per-application
cross-cluster compute scaling factors (Section 5.4).
"""

from __future__ import annotations

import numpy as np

from repro.errors import UsageError
from repro.hotpath import hot
from repro.middleware.instrument import OpCounter

__all__ = ["pairwise_sq_dists", "charge_distance_ops", "farthest_point_init"]


def farthest_point_init(
    sample: np.ndarray, k: int, seed: int = 0
) -> np.ndarray:
    """Pick ``k`` well-separated seed centres from a data sample.

    Greedy farthest-point traversal: start from a deterministic point,
    repeatedly add the sample point farthest from the chosen set.  Robust
    (and deterministic) initialization for k-means and EM.
    """
    sample = np.asarray(sample, dtype=np.float64)
    if sample.ndim != 2 or sample.shape[0] < k:
        raise UsageError(
            f"need a 2-D sample with at least {k} points, got {sample.shape}"
        )
    rng = np.random.default_rng(seed)
    chosen = [int(rng.integers(sample.shape[0]))]
    min_d2 = ((sample - sample[chosen[0]]) ** 2).sum(axis=1)
    while len(chosen) < k:
        nxt = int(np.argmax(min_d2))
        chosen.append(nxt)
        d2 = ((sample - sample[nxt]) ** 2).sum(axis=1)
        np.minimum(min_d2, d2, out=min_d2)
    return sample[chosen].copy()


@hot
def pairwise_sq_dists(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape ``(len(points), len(centers))``.

    Uses the expanded form ``|x|^2 - 2 x.c + |c|^2`` so the dominant cost is
    one GEMM — the idiomatic vectorization for this kernel.
    """
    points = np.asarray(points, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    p2 = np.einsum("ij,ij->i", points, points)[:, None]
    c2 = np.einsum("ij,ij->i", centers, centers)[None, :]
    cross = points @ centers.T
    d2 = p2 - 2.0 * cross + c2
    np.maximum(d2, 0.0, out=d2)
    return d2


@hot
def charge_distance_ops(
    ops: OpCounter, num_points: int, num_centers: int, num_dims: int
) -> None:
    """Charge the cost of one points-by-centers distance evaluation."""
    nkd = float(num_points) * num_centers * num_dims
    ops.charge(
        flop=3.0 * nkd,
        mem=float(num_points) * num_dims + float(num_centers) * num_dims,
        branch=float(num_points) * num_centers,
    )
