"""Apriori association mining as a FREERIDE-G generalized reduction.

Section 2.2 of the paper lists "apriori association mining [1]" first
among the popular algorithms whose processing structure is a generalized
reduction.  The classic level-wise algorithm maps onto the middleware as
follows:

- Pass ``k`` counts the support of the current candidate ``k``-itemsets:
  every node scans its local transactions and accumulates one counter per
  candidate — an associative, commutative update into a replicated,
  parameter-sized reduction object (**constant object size** class).
- The global reduction merges the per-node counter vectors, prunes the
  candidates below ``min_support`` and generates the ``k+1`` candidates
  (the join + prune steps); the surviving candidate set is broadcast back
  for the next pass.  Merge work is proportional to the node count —
  **linear-constant** global reduction.

The algorithm terminates when no candidates survive or ``max_k`` is
reached.  Because candidate generation depends only on global supports,
the frequent-itemset output is invariant to the data partitioning, which
the tests assert.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.middleware.api import GeneralizedReduction
from repro.middleware.instrument import OpCounter
from repro.middleware.reduction import ArrayReductionObject
from repro.simgrid.errors import ConfigurationError

__all__ = ["AprioriMining"]

Itemset = Tuple[int, ...]


class AprioriMining(GeneralizedReduction):
    """Level-wise frequent-itemset mining.

    Parameters
    ----------
    min_support:
        Fraction of transactions an itemset must appear in.
    max_k:
        Largest itemset size explored (bounds the pass count).
    """

    name = "apriori"
    broadcasts_result = True  # the surviving candidate set
    multi_pass_hint = True

    def __init__(self, min_support: float = 0.2, max_k: int = 4) -> None:
        if not 0.0 < min_support <= 1.0:
            raise ConfigurationError("min_support must be in (0, 1]")
        if max_k < 1:
            raise ConfigurationError("max_k must be >= 1")
        self.min_support = min_support
        self.max_k = max_k
        self._num_items = 0
        self._level = 1
        self._candidates: List[Itemset] = []
        self._frequent: Dict[Itemset, float] = {}
        self._total_transactions = 0.0

    # ------------------------------------------------------------------
    # GeneralizedReduction interface
    # ------------------------------------------------------------------

    def begin(self, meta: Dict[str, Any]) -> None:
        self._num_items = int(meta["num_items"])
        self._level = 1
        self._candidates = [(i,) for i in range(self._num_items)]
        self._frequent = {}
        self._total_transactions = 0.0

    def make_local_object(self) -> ArrayReductionObject:
        return ArrayReductionObject.zeros(len(self._candidates))

    def process_chunk(
        self, obj: ArrayReductionObject, payload: np.ndarray, ops: OpCounter
    ) -> None:
        transactions = np.asarray(payload) > 0.5
        n = transactions.shape[0]
        counts = np.empty(len(self._candidates))
        for idx, itemset in enumerate(self._candidates):
            counts[idx] = transactions[:, itemset].all(axis=1).sum()
        obj.accumulate(counts, count=float(n))

        level = self._level
        work = float(n) * len(self._candidates) * level
        # Subset testing is a scan: heavy on memory traffic and branches.
        ops.charge(mem=2.0 * work, branch=1.5 * work, flop=0.1 * work)

    def object_nbytes(self, obj: ArrayReductionObject) -> float:
        return obj.nbytes

    def combine(
        self, objs: Sequence[ArrayReductionObject], ops: OpCounter
    ) -> ArrayReductionObject:
        merged = objs[0].copy()
        per_obj = float(merged.values.size)
        for other in objs[1:]:
            merged.merge(other)
            ops.charge(flop=per_obj, mem=2.0 * per_obj)
        return merged

    def update(self, combined: ArrayReductionObject, ops: OpCounter) -> bool:
        self._total_transactions = combined.count
        threshold = self.min_support * combined.count
        survivors: List[Itemset] = []
        for itemset, count in zip(self._candidates, combined.values):
            if count >= threshold:
                survivors.append(itemset)
                self._frequent[itemset] = float(count) / combined.count

        next_candidates = self._generate_candidates(survivors)
        # Join + prune work: pairs of survivors plus subset checks.
        ncand = float(len(self._candidates))
        nsurv = float(len(survivors))
        ops.charge(
            branch=4.0 * ncand + nsurv * nsurv * self._level,
            mem=2.0 * ncand + nsurv * nsurv,
        )

        self._level += 1
        self._candidates = next_candidates
        return bool(next_candidates) and self._level <= self.max_k

    def result(self) -> Dict[str, Any]:
        by_size: Dict[int, List[Itemset]] = {}
        for itemset in self._frequent:
            by_size.setdefault(len(itemset), []).append(itemset)
        return {
            "frequent_itemsets": dict(self._frequent),
            "by_size": {k: sorted(v) for k, v in by_size.items()},
            "levels_explored": self._level - 1,
            "num_transactions": self._total_transactions,
        }

    def broadcast_nbytes(self, combined: ArrayReductionObject) -> float:
        # The next candidate set: one (k+1)-tuple of 4-byte ids each.
        return 8.0 + 4.0 * (self._level) * max(len(self._candidates), 1)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _generate_candidates(self, survivors: List[Itemset]) -> List[Itemset]:
        """Classic apriori-gen: join same-prefix survivors, prune subsets."""
        if not survivors:
            return []
        survivor_set = set(survivors)
        k = len(survivors[0])
        candidates: List[Itemset] = []
        for a, b in combinations(sorted(survivors), 2):
            if a[:-1] != b[:-1]:
                continue
            joined = a + (b[-1],)
            # Prune: every k-subset must be frequent.
            if all(
                subset in survivor_set
                for subset in combinations(joined, k)
            ):
                candidates.append(joined)
        return candidates
