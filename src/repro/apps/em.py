"""Expectation-Maximization clustering as a FREERIDE-G reduction.

Section 4.2 of the paper: the dataset is modelled as a mixture of
multivariate normal distributions; parallelization "is accomplished through
iteratively alternating local and global processing, corresponding to each
one of E and M steps".  Each EM iteration is therefore **two passes** over
the data:

- **E pass** — every node accumulates, from its local data, the per-
  component responsibility masses ``N_k``, the weighted point sums ``F_k``
  and the log-likelihood; the master combines them and recomputes means and
  mixture weights, which are broadcast back.
- **M pass** — every node accumulates the responsibility-weighted scatter
  matrices ``S_k`` about the new means; the master combines them and
  recomputes the covariances, which are broadcast back.

Progress is monitored through the monotonically accumulated log-likelihood
(the paper's stopping statistic); the pass count is fixed so every resource
configuration performs identical work.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

import numpy as np

from repro.hotpath import hot
from repro.middleware.api import GeneralizedReduction
from repro.middleware.instrument import OpCounter
from repro.middleware.reduction import ArrayReductionObject
from repro.simgrid.errors import ConfigurationError

__all__ = ["EMClustering"]

_COV_EPS = 1.0e-4


class EMClustering(GeneralizedReduction):
    """Fixed-iteration distributed EM for a full-covariance Gaussian mixture.

    Parameters
    ----------
    k:
        Mixture components.
    num_iterations:
        EM iterations; each is one E pass plus one M pass.
    init_box:
        Half-width of the uniform box initial means are drawn from.
    seed:
        Seed for the deterministic parameter initialization.
    """

    name = "em"
    broadcasts_result = True
    multi_pass_hint = True

    def __init__(
        self,
        k: int = 6,
        num_iterations: int = 5,
        init_box: float = 10.0,
        seed: int = 29,
    ) -> None:
        if k <= 0 or num_iterations <= 0:
            raise ConfigurationError("k and num_iterations must be positive")
        self.k = k
        self.num_iterations = num_iterations
        self.init_box = init_box
        self.seed = seed
        self.means: np.ndarray | None = None
        self.covs: np.ndarray | None = None
        self.weights: np.ndarray | None = None
        self._num_dims = 0
        self._phase = "E"
        self._iteration = 0
        self._nk: np.ndarray | None = None
        self._loglik_history: list[float] = []
        self._precisions: np.ndarray | None = None
        self._log_norms: np.ndarray | None = None

    # ------------------------------------------------------------------
    # GeneralizedReduction interface
    # ------------------------------------------------------------------

    def begin(self, meta: Dict[str, Any]) -> None:
        d = int(meta["num_dims"])
        self._num_dims = d
        sample = meta.get("init_sample")
        if sample is not None and len(sample) >= self.k:
            from repro.apps.base import farthest_point_init

            self.means = farthest_point_init(sample, self.k, seed=self.seed)
        else:
            rng = np.random.default_rng(self.seed)
            self.means = rng.uniform(
                -self.init_box, self.init_box, size=(self.k, d)
            )
        self.covs = np.repeat(np.eye(d)[None, :, :] * 4.0, self.k, axis=0)
        self.weights = np.full(self.k, 1.0 / self.k)
        self._phase = "E"
        self._iteration = 0
        self._nk = None
        self._loglik_history = []
        self._refresh_precisions()

    def make_local_object(self) -> ArrayReductionObject:
        d = self._num_dims
        if self._phase == "E":
            # [N_k (k)] + [F_k (k*d)] + [loglik (1)]
            return ArrayReductionObject.zeros(self.k * (d + 1) + 1)
        # M phase: scatter matrices S_k, flattened.
        return ArrayReductionObject.zeros(self.k * d * d)

    @hot
    def process_chunk(
        self, obj: ArrayReductionObject, payload: np.ndarray, ops: OpCounter
    ) -> None:
        points = np.asarray(payload, dtype=np.float64)
        n, d = points.shape
        resp, log_evidence = self._responsibilities(points)

        if self._phase == "E":
            contribution = np.zeros(self.k * (d + 1) + 1)
            contribution[: self.k] = resp.sum(axis=0)
            contribution[self.k : self.k + self.k * d] = (resp.T @ points).ravel()
            contribution[-1] = float(log_evidence.sum())
        else:
            assert self.means is not None
            diff = points[:, None, :] - self.means[None, :, :]  # (n, k, d)
            scatter = np.einsum("nk,nki,nkj->kij", resp, diff, diff)
            contribution = scatter.ravel()
        obj.accumulate(contribution, count=float(n))

        # The density evaluation (Mahalanobis forms) dominates: n*k*d^2
        # multiply-adds, plus exponentials — a FLOP-heavy mix, giving EM a
        # *higher* cross-cluster compute factor than the branchy kNN scan.
        nk = float(n) * self.k
        ops.charge(
            flop=nk * (d * d + 3.0 * d + 12.0),
            mem=float(n) * d + self.k * d * d + nk,
            branch=nk,
        )
        if self._phase == "M":
            ops.charge(flop=nk * d * d, mem=nk * d)

    def object_nbytes(self, obj: ArrayReductionObject) -> float:
        return obj.nbytes

    def combine(
        self, objs: Sequence[ArrayReductionObject], ops: OpCounter
    ) -> ArrayReductionObject:
        merged = objs[0].copy()
        per_obj = float(merged.values.size)
        for other in objs[1:]:
            merged.merge(other)
            ops.charge(flop=per_obj, mem=2.0 * per_obj)
        return merged

    def update(self, combined: ArrayReductionObject, ops: OpCounter) -> bool:
        assert self.means is not None and self.covs is not None
        d = self._num_dims
        if self._phase == "E":
            nk = np.maximum(combined.values[: self.k], 1.0e-12)
            fk = combined.values[self.k : self.k + self.k * d].reshape(self.k, d)
            self._nk = nk
            self.means = fk / nk[:, None]
            self.weights = nk / max(combined.count, 1.0)
            self._loglik_history.append(float(combined.values[-1]))
            ops.charge(flop=2.0 * self.k * d, mem=2.0 * self.k * d)
            self._phase = "M"
            return True

        assert self._nk is not None
        scatter = combined.values.reshape(self.k, d, d)
        covs = scatter / self._nk[:, None, None]
        covs += np.eye(d)[None, :, :] * _COV_EPS
        # Symmetrize against accumulation round-off.
        self.covs = 0.5 * (covs + np.transpose(covs, (0, 2, 1)))
        self._refresh_precisions()
        # Covariance inversion: k * d^3.
        ops.charge(flop=float(self.k) * d**3, mem=float(self.k) * d * d)
        self._phase = "E"
        self._iteration += 1
        return self._iteration < self.num_iterations

    def result(self) -> Dict[str, Any]:
        assert self.means is not None and self.covs is not None
        return {
            "means": self.means.copy(),
            "covariances": self.covs.copy(),
            "weights": None if self.weights is None else self.weights.copy(),
            "loglik_history": list(self._loglik_history),
            "iterations": self._iteration,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _refresh_precisions(self) -> None:
        assert self.covs is not None
        d = self._num_dims if self._num_dims else self.covs.shape[-1]
        self._precisions = np.linalg.inv(self.covs)
        sign, logdet = np.linalg.slogdet(self.covs)
        if np.any(sign <= 0):
            raise ConfigurationError("covariance matrix lost positive definiteness")
        self._log_norms = -0.5 * (d * np.log(2.0 * np.pi) + logdet)

    @hot
    def _responsibilities(
        self, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior component probabilities and per-point log evidence."""
        assert self.means is not None and self.weights is not None
        assert self._precisions is not None and self._log_norms is not None
        diff = points[:, None, :] - self.means[None, :, :]  # (n, k, d)
        maha = np.einsum("nki,kij,nkj->nk", diff, self._precisions, diff)
        log_prob = self._log_norms[None, :] - 0.5 * maha
        log_weighted = log_prob + np.log(np.maximum(self.weights, 1.0e-300))
        top = log_weighted.max(axis=1, keepdims=True)
        shifted = np.exp(log_weighted - top)
        norm = shifted.sum(axis=1, keepdims=True)
        resp = shifted / norm
        log_evidence = (top + np.log(norm)).ravel()
        return resp, log_evidence
