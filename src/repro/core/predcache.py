"""Last-known-good prediction cache, fingerprint-keyed.

Vazhkudai & Schopf's history-based predictors legitimize serving a
*previously computed* prediction when a fresh one cannot be produced in
time: a prediction is a statistical statement about a mostly-stable
system, so a recent answer for the identical inputs is a principled
degraded response, not a lie — provided it is clearly marked stale and
its age is reported.  This cache is what the service's graceful
degradation serves from when the circuit breaker is open or a deadline
cannot be met.

Keys are content fingerprints (:mod:`repro.core.fingerprint`), so an
entry can never be served for different model inputs.  Eviction is
deterministic (least-recently *stored*, via insertion order), and the
cache round-trips through canonical JSON so a service can persist its
warm state across restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.durable import (
    atomic_write_json,
    check_format_version,
    read_json_document,
)
from repro.simgrid.errors import ConfigurationError

__all__ = ["CachedPrediction", "PredictionCache"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CachedPrediction:
    """One cached response body plus the simulated time it was stored."""

    payload: Dict[str, Any]
    stored_at_s: float
    hits: int = 0

    def age_s(self, now: float) -> float:
        """Seconds since the entry was stored (clamped at zero)."""
        return max(0.0, now - self.stored_at_s)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "payload": self.payload,
            "stored_at_s": self.stored_at_s,
            "hits": self.hits,
        }


class PredictionCache:
    """Bounded, fingerprint-keyed store of last-known-good predictions.

    ``max_entries`` bounds memory; when full, the oldest *stored* entry
    is evicted (insertion order — deterministic, unlike LRU under
    replayed traffic where reads would perturb the order).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ConfigurationError("cache needs at least one entry slot")
        self.max_entries = max_entries
        self._entries: Dict[str, CachedPrediction] = {}
        self.stores = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: object) -> bool:
        return fingerprint in self._entries

    def put(self, fingerprint: str, payload: Dict[str, Any], now: float) -> None:
        """Store (or refresh) the last-known-good payload for a key."""
        if not fingerprint:
            raise ConfigurationError("cache key must be a non-empty fingerprint")
        if fingerprint in self._entries:
            del self._entries[fingerprint]
        elif len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        self._entries[fingerprint] = CachedPrediction(
            payload=dict(payload), stored_at_s=now
        )
        self.stores += 1

    def get(self, fingerprint: str) -> Optional[CachedPrediction]:
        """The cached entry, or ``None``; bumps the entry's hit count."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            return None
        bumped = CachedPrediction(
            payload=entry.payload,
            stored_at_s=entry.stored_at_s,
            hits=entry.hits + 1,
        )
        self._entries[fingerprint] = bumped
        return bumped

    # ------------------------------------------------------------------
    # Persistence (warm restarts)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": _FORMAT_VERSION,
            "max_entries": self.max_entries,
            # Insertion order is part of the eviction semantics; keep it
            # explicitly rather than relying on JSON object order.
            "order": list(self._entries),
            "entries": {
                key: entry.to_dict() for key, entry in self._entries.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PredictionCache":
        check_format_version(data, "prediction cache", _FORMAT_VERSION)
        try:
            cache = cls(max_entries=int(data["max_entries"]))
            entries = data["entries"]
            for key in data["order"]:
                raw = entries[key]
                cache._entries[key] = CachedPrediction(
                    payload=dict(raw["payload"]),
                    stored_at_s=float(raw["stored_at_s"]),
                    hits=int(raw.get("hits", 0)),
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed prediction cache: {exc}"
            ) from exc
        return cache

    def save(self, path: Any) -> Any:
        """Durably persist the cache as canonical JSON."""
        return atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: Any) -> "PredictionCache":
        """Load a previously saved cache (corrupt files raise
        :class:`~repro.core.durable.CorruptStoreError`)."""
        data = read_json_document(
            path,
            "prediction cache",
            remedy="delete the file; the cache rebuilds from live traffic",
        )
        return cls.from_dict(data)
