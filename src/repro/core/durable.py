"""Durable atomic persistence shared by every JSON store in the repo.

Profiles are scheduling inputs, experiment results are regression
baselines, and campaign journals are what a killed run resumes from —
none of them may be corrupted by a crash mid-write.  This module is the
single place that guarantees it:

- :func:`atomic_write_text` / :func:`atomic_write_json` write to a
  temporary file *in the same directory*, flush, ``fsync`` the file,
  ``os.replace`` it over the destination, then ``fsync`` the directory.
  A reader therefore sees either the complete old document or the
  complete new one, never a truncated hybrid — even if the process dies
  at any instruction in between.
- :func:`read_json_document` turns a truncated / tampered / non-object
  file into a :class:`CorruptStoreError` that names the path and tells
  the operator how to regenerate it, and an unrecognized
  ``format_version`` into a :class:`FormatVersionError`, instead of a
  raw ``json.JSONDecodeError`` or a silently partial object.

``core/store`` (profiles), ``analysis/results_io`` (experiment
results) and ``campaign/journal`` (suite journals) all route their I/O
through here, so every persistence path inherits the same guarantees.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "StoreError",
    "CorruptStoreError",
    "FormatVersionError",
    "atomic_write_text",
    "atomic_write_json",
    "canonical_json",
    "content_digest",
    "read_json_document",
    "quarantine_corrupt",
]


class StoreError(ReproError):
    """Base class for durable-persistence failures."""


class CorruptStoreError(StoreError, ConfigurationError):
    """A stored document is unreadable (truncated, tampered, not JSON).

    Also derives from :class:`~repro.simgrid.errors.ConfigurationError`
    so callers that predate the durable layer keep catching it.
    """


class FormatVersionError(StoreError, ConfigurationError):
    """A stored document has a ``format_version`` this build cannot read.

    Raised instead of silently constructing a partial object: the file
    was most likely written by a newer version of the framework, and the
    safe options are upgrading or regenerating the file.
    """


def atomic_write_text(path: str | pathlib.Path, text: str) -> pathlib.Path:
    """Durably replace ``path`` with ``text``; returns the path.

    The temporary file lives in the destination directory so that
    ``os.replace`` is a same-filesystem rename (atomic on POSIX).  Both
    the file contents and the directory entry are fsynced before
    returning, so a crash after this call cannot lose the write and a
    crash during it cannot corrupt an existing file.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return path


def atomic_write_json(path: str | pathlib.Path, data: Any) -> pathlib.Path:
    """Durably replace ``path`` with ``data`` rendered as JSON."""
    return atomic_write_text(path, canonical_json(data))


def canonical_json(data: Any) -> str:
    """The one serialization every durable document uses.

    Deterministic (sorted keys, fixed indentation, trailing newline), so
    that a value committed to a journal, reloaded, and re-saved is
    byte-identical to one written directly — regardless of the dict
    construction order of either side.  The REP003 lint contract holds
    every other ``json.dump(s)`` call in the repo to the same sorted-key
    form.
    """
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


def content_digest(data: Any) -> str:
    """SHA-256 over the canonical JSON of ``data`` (for tamper checks)."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def read_json_document(
    path: str | pathlib.Path,
    kind: str,
    *,
    expected_version: Optional[int] = None,
    remedy: str = "regenerate the file",
) -> Dict[str, Any]:
    """Read one durable JSON document, validating shape and version.

    Parameters
    ----------
    kind:
        Human label for error messages ("profile", "experiment result",
        "campaign journal").
    expected_version:
        When given, the document's top-level ``format_version`` must
        equal it; anything else raises :class:`FormatVersionError`.
    remedy:
        What the operator should do about a corrupt file, appended to
        the :class:`CorruptStoreError` message.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(f"no {kind} at '{path}'")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise CorruptStoreError(
            f"{kind} file '{path}' is corrupt (invalid or truncated JSON "
            f"at line {exc.lineno}); {remedy}"
        ) from exc
    if not isinstance(data, dict):
        raise CorruptStoreError(
            f"{kind} file '{path}' is corrupt (expected a JSON object, "
            f"found {type(data).__name__}); {remedy}"
        )
    if expected_version is not None:
        check_format_version(data, kind, expected_version, source=str(path))
    return data


def check_format_version(
    data: Dict[str, Any],
    kind: str,
    expected_version: int,
    *,
    source: Optional[str] = None,
) -> None:
    """Raise :class:`FormatVersionError` unless the version matches."""
    version = data.get("format_version")
    if version == expected_version:
        return
    where = f" in '{source}'" if source else ""
    raise FormatVersionError(
        f"cannot read {kind}{where}: format_version {version!r} is not "
        f"supported by this build (expected {expected_version}); it was "
        "likely written by a newer version of the framework — upgrade, "
        "or regenerate the file with this version"
    )


def quarantine_corrupt(path: str | pathlib.Path) -> pathlib.Path:
    """Move a corrupt document aside as ``<path>.corrupt-<hash>``.

    Directory-scan load paths (e.g. a profile store warming a service)
    must not hard-fail the whole scan because one file is truncated:
    the corrupt file is renamed — preserving the evidence for the
    operator — and the scan continues.  The suffix is the first 8 hex
    digits of the SHA-256 of the file's current bytes, so repeated
    scans of the same corruption are idempotent (the rename target is
    stable) and two different corruptions never collide.

    Returns the quarantine path.  The original ``path`` no longer
    exists afterwards.
    """
    path = pathlib.Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CorruptStoreError(
            f"cannot quarantine '{path}': {exc}"
        ) from exc
    digest = hashlib.sha256(raw).hexdigest()[:8]
    target = path.with_name(f"{path.name}.corrupt-{digest}")
    os.replace(path, target)
    _fsync_directory(path.parent)
    return target


def _fsync_directory(directory: pathlib.Path) -> None:
    """Flush a rename to disk (no-op on platforms without dir fds)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
