"""Canonical fingerprints for prediction inputs.

The prediction service caches evaluated predictions and serves the
last-known-good entry as a degraded response when the predictor is
unavailable (circuit open) or too slow (deadline).  A cache is only as
trustworthy as its key: two requests may share a cached prediction
*only* when every input that could change the prediction is identical.
This module defines that key — a SHA-256 over the canonical JSON of the
profile, the target configuration, and the model identity — so cache
hits are content-addressed, not name-addressed, and a profile update
invalidates every dependent entry automatically.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from repro.core.durable import content_digest
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.simgrid.serialize import cluster_to_dict

__all__ = [
    "profile_fingerprint",
    "target_fingerprint",
    "prediction_fingerprint",
]


def _profile_dict(profile: Profile) -> Dict[str, Any]:
    # Deliberately *not* store.profile_to_dict: the fingerprint must not
    # depend on the storage format_version, only on model inputs.
    return {
        "app": profile.app,
        "storage_cluster": cluster_to_dict(profile.storage_cluster),
        "compute_cluster": cluster_to_dict(profile.compute_cluster),
        "data_nodes": profile.data_nodes,
        "compute_nodes": profile.compute_nodes,
        "bandwidth": profile.bandwidth,
        "dataset_bytes": profile.dataset_bytes,
        "t_disk": profile.t_disk,
        "t_network": profile.t_network,
        "t_compute": profile.t_compute,
        "t_ro": profile.t_ro,
        "t_g": profile.t_g,
        "max_object_bytes": profile.max_object_bytes,
        "broadcast_bytes": profile.broadcast_bytes,
        "gather_rounds": profile.gather_rounds,
        "processes_per_node": profile.processes_per_node,
        "t_cache": profile.t_cache,
    }


def profile_fingerprint(profile: Profile) -> str:
    """SHA-256 over the model-relevant content of a profile."""
    return content_digest(_profile_dict(profile))


def target_fingerprint(target: PredictionTarget) -> str:
    """SHA-256 over the model-relevant content of a prediction target."""
    config = target.config
    return content_digest(
        {
            "storage_cluster": cluster_to_dict(config.storage_cluster),
            "compute_cluster": cluster_to_dict(config.compute_cluster),
            "data_nodes": config.data_nodes,
            "compute_nodes": config.compute_nodes,
            "bandwidth": config.bandwidth,
            "processes_per_node": config.processes_per_node,
            "dataset_bytes": target.dataset_bytes,
        }
    )


def prediction_fingerprint(
    profile: Profile,
    target: PredictionTarget,
    model_label: str,
    extra: Sequence[Tuple[str, Any]] = (),
) -> str:
    """Cache key for one (profile, target, model) prediction.

    ``extra`` admits endpoint-specific inputs (e.g. the what-if sweep's
    configuration pairs) into the key; pairs are canonicalized with the
    rest, so ordering of the *mapping* never matters while ordering of a
    list value does (a sweep over reordered pairs is a different sweep).
    """
    return content_digest(
        {
            "profile": _profile_dict(profile),
            "target": target_fingerprint(target),
            "model": model_label,
            "extra": {key: value for key, value in extra},
        }
    )
