"""A bottleneck model for pipelining middleware (extension).

The paper's ``T_exec = T_disk + T_network + T_compute`` is exact for
FREERIDE-G because the middleware runs the stages as strict phases.  A
chunk-streaming middleware (see :mod:`repro.middleware.pipelined`)
overlaps them, and the additive model then overestimates by up to the
sum-vs-max gap (quantified in ``bench_ablation_pipelining``).

The natural generalization keeps the paper's per-component predictors and
changes only the composition: a saturated pipeline finishes when its
*bottleneck stage* finishes, plus the serialized tail that cannot overlap
(reduction-object gather, global reduction, broadcast):

``T̂_pipe = max(T̂_disk, T̂_network, T̂_local) + T̂_ro + T̂_g``

where ``T̂_local`` is the scalable compute component.  Pipeline fill and
drain (the first chunk's latency through the earlier stages) are ignored,
so the model is slightly optimistic for short runs; the bench quantifies
the residual.

Multi-pass applications overlap only within a pass; the profile's
aggregate components compose the same way, so the formula applies
unchanged — cache-fed passes simply have no disk/network share.
"""

from __future__ import annotations

from repro.core.classes import ModelClasses, estimate_global_reduction_time
from repro.core.models import PredictedBreakdown, PredictionModel
from repro.core.predictors import (
    predict_disk_time,
    predict_network_time,
    predict_reduction_comm_time,
)
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.simgrid.network import CommCostModel

__all__ = ["PipelinedBottleneckModel"]


class PipelinedBottleneckModel(PredictionModel):
    """Bottleneck composition of the paper's component predictors."""

    label = "pipelined bottleneck"

    def __init__(self, classes: ModelClasses) -> None:
        self.classes = classes

    def predict(
        self, profile: Profile, target: PredictionTarget
    ) -> PredictedBreakdown:
        comm_model = CommCostModel.fit_for_cluster(
            target.config.compute_cluster
        )
        t_disk = predict_disk_time(profile, target)
        t_network = predict_network_time(profile, target)
        t_ro_hat = predict_reduction_comm_time(
            profile, target, self.classes.object_size, comm_model
        )
        t_g_hat = estimate_global_reduction_time(
            profile, target, self.classes.global_reduction
        )
        size_ratio = target.dataset_bytes / profile.dataset_bytes
        slot_ratio = profile.compute_slots / target.config.compute_slots
        t_local = size_ratio * slot_ratio * profile.scalable_compute

        bottleneck = max(t_disk, t_network, t_local)
        # Report the makespan through t_compute so ``total`` (which sums
        # the three components) equals the bottleneck composition: the
        # overlapped stages contribute nothing beyond the bottleneck.
        return PredictedBreakdown(
            t_disk=0.0,
            t_network=0.0,
            t_compute=bottleneck + t_ro_hat + t_g_hat,
            t_ro=t_ro_hat,
            t_g=t_g_hat,
        )
