"""The three nested prediction models compared in Section 5.1.

- :class:`NoCommunicationModel` — retrieval and communication predictors
  plus the naive linear-speedup compute predictor.
- :class:`ReductionCommunicationModel` — additionally models the
  interprocessor communication of the reduction object:
  ``T' = t_c - T_ro``; ``T̂_compute = (ŝ/s)(c/ĉ) T' + T̂_ro``.
- :class:`GlobalReductionModel` — additionally models the serialized
  global reduction: ``T'' = t_c - T_ro - T_g``;
  ``T̂_compute = (ŝ/s)(c/ĉ) T'' + T̂_ro + T̂_g``.

All three share the component predictors of :mod:`repro.core.predictors`
for ``T̂_disk`` and ``T̂_network``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.classes import (
    ModelClasses,
    estimate_global_reduction_time,
)
from repro.core.predictors import (
    predict_compute_naive,
    predict_disk_time,
    predict_network_time,
    predict_reduction_comm_time,
)
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.core.units import Ratio, Seconds
from repro.simgrid.network import CommCostModel

__all__ = [
    "PredictedBreakdown",
    "PredictionModel",
    "NoCommunicationModel",
    "ReductionCommunicationModel",
    "GlobalReductionModel",
]


@dataclass(frozen=True)
class PredictedBreakdown:
    """A predicted execution time, componentwise."""

    t_disk: Seconds
    t_network: Seconds
    t_compute: Seconds
    t_ro: Seconds = 0.0
    t_g: Seconds = 0.0

    @property
    def total(self) -> Seconds:
        """T̂_exec = T̂_disk + T̂_network + T̂_compute."""
        return self.t_disk + self.t_network + self.t_compute

    def scaled(self, sd: Ratio, sn: Ratio, sc: Ratio) -> "PredictedBreakdown":
        """Componentwise rescaling (used by cross-cluster prediction)."""
        ratio = sc
        return PredictedBreakdown(
            t_disk=self.t_disk * sd,
            t_network=self.t_network * sn,
            t_compute=self.t_compute * sc,
            t_ro=self.t_ro * ratio,
            t_g=self.t_g * ratio,
        )


class PredictionModel(abc.ABC):
    """Common interface of the three model levels."""

    #: Display name used in reports (matches the paper's figure legends).
    label: str = "model"

    @abc.abstractmethod
    def predict(
        self, profile: Profile, target: PredictionTarget
    ) -> PredictedBreakdown:
        """Predict the target's execution-time breakdown from the profile."""

    def predict_total(self, profile: Profile, target: PredictionTarget) -> float:
        """Convenience: the predicted total execution time."""
        return self.predict(profile, target).total


class NoCommunicationModel(PredictionModel):
    """Linear-speedup compute model; no communication terms."""

    label = "no communication"

    def predict(
        self, profile: Profile, target: PredictionTarget
    ) -> PredictedBreakdown:
        return PredictedBreakdown(
            t_disk=predict_disk_time(profile, target),
            t_network=predict_network_time(profile, target),
            t_compute=predict_compute_naive(profile, target),
        )


class ReductionCommunicationModel(PredictionModel):
    """Models the serialized reduction-object communication (T_ro)."""

    label = "reduction communication"

    def __init__(self, classes: ModelClasses) -> None:
        self.classes = classes

    def predict(
        self, profile: Profile, target: PredictionTarget
    ) -> PredictedBreakdown:
        comm_model = CommCostModel.fit_for_cluster(target.config.compute_cluster)
        t_ro_hat = predict_reduction_comm_time(
            profile, target, self.classes.object_size, comm_model
        )
        scalable = max(profile.t_compute - profile.t_ro, 0.0)
        size_ratio = target.dataset_bytes / profile.dataset_bytes
        slot_ratio = profile.compute_slots / target.config.compute_slots
        t_compute = size_ratio * slot_ratio * scalable + t_ro_hat
        return PredictedBreakdown(
            t_disk=predict_disk_time(profile, target),
            t_network=predict_network_time(profile, target),
            t_compute=t_compute,
            t_ro=t_ro_hat,
        )


class GlobalReductionModel(PredictionModel):
    """Models both T_ro and the serialized global reduction T_g."""

    label = "global reduction"

    def __init__(self, classes: ModelClasses) -> None:
        self.classes = classes

    def predict(
        self, profile: Profile, target: PredictionTarget
    ) -> PredictedBreakdown:
        comm_model = CommCostModel.fit_for_cluster(target.config.compute_cluster)
        t_ro_hat = predict_reduction_comm_time(
            profile, target, self.classes.object_size, comm_model
        )
        t_g_hat = estimate_global_reduction_time(
            profile, target, self.classes.global_reduction
        )
        scalable = profile.scalable_compute
        size_ratio = target.dataset_bytes / profile.dataset_bytes
        slot_ratio = profile.compute_slots / target.config.compute_slots
        t_compute = size_ratio * slot_ratio * scalable + t_ro_hat + t_g_hat
        return PredictedBreakdown(
            t_disk=predict_disk_time(profile, target),
            t_network=predict_network_time(profile, target),
            t_compute=t_compute,
            t_ro=t_ro_hat,
            t_g=t_g_hat,
        )
