"""Wide-area bandwidth prediction for obtaining b̂.

Section 3.2 of the paper assumes the bandwidth between storage and compute
nodes is known, noting that "in recent years, many efforts have focused on
determining the effective bandwidth available for a particular data
movement task [23, 28, 35, 36].  We can directly use this work to
determine b̂."  This module supplies that ingredient in the style of those
efforts (NWS-like forecasters; Vazhkudai-Schopf regression on past
transfers):

- :class:`BandwidthTrace` — a synthetic shared-WAN bandwidth time series
  (AR(1) variation around a base rate, a diurnal swing, and occasional
  congestion episodes), standing in for the production traces we cannot
  obtain.
- A family of one-step-ahead predictors: last value, running mean, sliding
  window mean/median, and EWMA.
- :class:`AdaptivePredictor` — NWS-style forecaster selection: at each
  step, use whichever member predictor has the lowest mean absolute error
  so far.
- :func:`evaluate_predictors` — walk a trace and score every predictor.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.simgrid.errors import ConfigurationError

__all__ = [
    "BandwidthTrace",
    "BandwidthPredictor",
    "LastValuePredictor",
    "RunningMeanPredictor",
    "SlidingMeanPredictor",
    "SlidingMedianPredictor",
    "EWMAPredictor",
    "AdaptivePredictor",
    "PredictorScore",
    "evaluate_predictors",
]


class BandwidthTrace:
    """A synthetic time series of observed transfer bandwidths (bytes/s)."""

    def __init__(self, samples: Sequence[float]) -> None:
        samples = list(float(s) for s in samples)
        if not samples:
            raise ConfigurationError("a bandwidth trace needs samples")
        if any(s <= 0 for s in samples):
            raise ConfigurationError("bandwidth samples must be positive")
        self.samples = samples

    @classmethod
    def synthesize(
        cls,
        length: int,
        base_bw: float = 1.0e6,
        ar_coefficient: float = 0.8,
        noise_level: float = 0.1,
        diurnal_amplitude: float = 0.2,
        diurnal_period: int = 96,
        congestion_prob: float = 0.02,
        congestion_depth: float = 0.6,
        seed: int = 0,
    ) -> "BandwidthTrace":
        """Generate a plausible shared-link bandwidth series.

        AR(1) multiplicative noise around ``base_bw`` plus a sinusoidal
        diurnal load swing; with probability ``congestion_prob`` a step
        starts a congestion episode that cuts bandwidth by
        ``congestion_depth`` and decays over a few steps.
        """
        if length <= 0:
            raise ConfigurationError("trace length must be positive")
        if not 0.0 <= ar_coefficient < 1.0:
            raise ConfigurationError("AR coefficient must be in [0, 1)")
        rng = np.random.default_rng(seed)
        samples: List[float] = []
        state = 0.0
        congestion = 0.0
        for step in range(length):
            state = ar_coefficient * state + rng.normal(0.0, noise_level)
            diurnal = diurnal_amplitude * np.sin(
                2.0 * np.pi * step / diurnal_period
            )
            if rng.random() < congestion_prob:
                congestion = congestion_depth
            congestion *= 0.7  # episodes decay over a few steps
            factor = max(1.0 + state + diurnal - congestion, 0.05)
            samples.append(base_bw * factor)
        return cls(samples)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)


class BandwidthPredictor(abc.ABC):
    """One-step-ahead bandwidth forecaster."""

    label = "predictor"

    @abc.abstractmethod
    def predict(self) -> float:
        """Forecast the next observation (before seeing it)."""

    @abc.abstractmethod
    def observe(self, value: float) -> None:
        """Feed the actual observation."""


class LastValuePredictor(BandwidthPredictor):
    """Predicts the previous observation (persistence forecast)."""

    label = "last value"

    def __init__(self, initial: float = 1.0e6) -> None:
        self._last = float(initial)

    def predict(self) -> float:
        return self._last

    def observe(self, value: float) -> None:
        self._last = float(value)


class RunningMeanPredictor(BandwidthPredictor):
    """Predicts the mean of all observations so far."""

    label = "running mean"

    def __init__(self, initial: float = 1.0e6) -> None:
        self._sum = float(initial)
        self._count = 1

    def predict(self) -> float:
        return self._sum / self._count

    def observe(self, value: float) -> None:
        self._sum += float(value)
        self._count += 1


class SlidingMeanPredictor(BandwidthPredictor):
    """Predicts the mean of the last ``window`` observations."""

    def __init__(self, window: int = 10, initial: float = 1.0e6) -> None:
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self.label = f"sliding mean ({window})"
        self._window: deque = deque([float(initial)], maxlen=window)

    def predict(self) -> float:
        return sum(self._window) / len(self._window)

    def observe(self, value: float) -> None:
        self._window.append(float(value))


class SlidingMedianPredictor(BandwidthPredictor):
    """Predicts the median of the last ``window`` observations.

    Medians resist the congestion outliers that drag means down — the
    Vazhkudai-Schopf observation for sporadic grid transfers.
    """

    def __init__(self, window: int = 10, initial: float = 1.0e6) -> None:
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self.label = f"sliding median ({window})"
        self._window: deque = deque([float(initial)], maxlen=window)

    def predict(self) -> float:
        return float(np.median(list(self._window)))

    def observe(self, value: float) -> None:
        self._window.append(float(value))


class EWMAPredictor(BandwidthPredictor):
    """Exponentially weighted moving average forecast."""

    def __init__(self, alpha: float = 0.3, initial: float = 1.0e6) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        self.label = f"EWMA ({alpha})"
        self.alpha = alpha
        self._value = float(initial)

    def predict(self) -> float:
        return self._value

    def observe(self, value: float) -> None:
        self._value = self.alpha * float(value) + (1.0 - self.alpha) * self._value


class AdaptivePredictor(BandwidthPredictor):
    """NWS-style forecaster selection over member predictors.

    Each step forecasts with the member whose mean absolute error on past
    observations is lowest, then feeds the observation to every member.
    """

    label = "adaptive (NWS-style)"

    def __init__(self, members: Sequence[BandwidthPredictor] | None = None) -> None:
        if members is None:
            members = [
                LastValuePredictor(),
                SlidingMeanPredictor(window=10),
                SlidingMedianPredictor(window=10),
                EWMAPredictor(alpha=0.3),
            ]
        if not members:
            raise ConfigurationError("adaptive predictor needs members")
        self.members = list(members)
        self._abs_error = [0.0] * len(self.members)
        self._steps = 0

    def predict(self) -> float:
        best = min(
            range(len(self.members)), key=lambda i: self._abs_error[i]
        )
        return self.members[best].predict()

    def observe(self, value: float) -> None:
        for i, member in enumerate(self.members):
            self._abs_error[i] += abs(member.predict() - float(value))
            member.observe(value)
        self._steps += 1


@dataclass(frozen=True)
class PredictorScore:
    """Accuracy of one predictor over a trace."""

    label: str
    mean_absolute_error: float
    mean_absolute_percentage_error: float


def evaluate_predictors(
    trace: BandwidthTrace,
    predictors: Sequence[BandwidthPredictor],
    warmup: int = 5,
) -> Dict[str, PredictorScore]:
    """Walk a trace, scoring every predictor's one-step-ahead forecasts.

    The first ``warmup`` observations prime the predictors without being
    scored.
    """
    if not predictors:
        raise ConfigurationError("need at least one predictor")
    if warmup < 0 or warmup >= len(trace):
        raise ConfigurationError("warmup must be inside the trace")
    abs_err = {p.label: 0.0 for p in predictors}
    pct_err = {p.label: 0.0 for p in predictors}
    scored = 0
    for step, value in enumerate(trace):
        if step >= warmup:
            scored += 1
            for predictor in predictors:
                forecast = predictor.predict()
                abs_err[predictor.label] += abs(forecast - value)
                pct_err[predictor.label] += abs(forecast - value) / value
        for predictor in predictors:
            predictor.observe(value)
    return {
        p.label: PredictorScore(
            label=p.label,
            mean_absolute_error=abs_err[p.label] / scored,
            mean_absolute_percentage_error=pct_err[p.label] / scored,
        )
        for p in predictors
    }
