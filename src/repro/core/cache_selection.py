"""Non-local cache-site selection.

Section 2.1 of the paper lists "Finding Non-local Caching Resources" as a
resource-selection responsibility: "Many data mining and data processing
applications involve multiple passes on data.  If sufficient storage is
not available at the site where computations are performed, data may be
cached at a non-local site, i.e., at a location from which it can be
accessed at a lower cost than the original repository."  The paper's
implementation did not include it; this module supplies it in the same
profile-driven style as the rest of the framework.

Given a profile of a multi-pass application, a prediction target, and a
set of candidate caching sites (each with the per-compute-node bandwidth
obtained from the grid topology), :func:`select_cache_site` estimates the
total execution time under each option and returns them ranked.  The local
option is included whenever the compute site has storage; re-fetching from
the origin repository every pass (no caching at all) is the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.models import PredictionModel
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.simgrid.errors import ConfigurationError

__all__ = ["CacheSiteOption", "CachePlan", "select_cache_site"]


@dataclass(frozen=True)
class CacheSiteOption:
    """One candidate caching location.

    ``bandwidth`` is the bytes/s each compute node gets to the site
    (``None`` marks the compute nodes' own local disks).
    """

    site: str
    bandwidth: Optional[float]

    def __post_init__(self) -> None:
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ConfigurationError("cache-site bandwidth must be positive")

    @property
    def is_local(self) -> bool:
        return self.bandwidth is None


@dataclass(frozen=True)
class CachePlan:
    """A ranked caching decision with its estimated execution time."""

    option: CacheSiteOption
    estimated_total: float


def _estimated_cache_traffic_time(
    profile: Profile,
    target: PredictionTarget,
    bandwidth: float,
) -> float:
    """Time for the remote write pass plus the remote read passes.

    Each compute node streams its share ``ŝ/ĉ`` to/from the caching site;
    nodes stream in parallel; one write (first pass) plus one read per
    subsequent pass.  Per-chunk latencies are second-order here and the
    profile does not expose the chunk count, so they are omitted — the
    tests quantify the resulting optimism against actual simulated runs.
    """
    passes = profile.gather_rounds
    per_node_bytes = target.dataset_bytes / target.compute_nodes
    transfers = 1 + max(passes - 1, 0)
    return transfers * per_node_bytes / bandwidth


def select_cache_site(
    profile: Profile,
    target: PredictionTarget,
    model: PredictionModel,
    options: Sequence[CacheSiteOption],
) -> List[CachePlan]:
    """Rank caching options by estimated total execution time.

    The base prediction (made with ``model`` from the profile) corresponds
    to the profile's own caching mode — local-disk caching, whose traffic
    is inside the compute component.  For a remote option the local cache
    traffic is replaced by network traffic to the caching site:

    ``T̂(option) = T̂_base − (scaled local cache time) + (remote traffic)``
    """
    if not options:
        raise ConfigurationError("need at least one caching option")
    if profile.gather_rounds <= 1:
        raise ConfigurationError(
            "cache-site selection only applies to multi-pass applications"
        )

    base_total = model.predict(profile, target).total
    size_ratio = target.dataset_bytes / profile.dataset_bytes
    slot_ratio = profile.compute_slots / target.config.compute_slots
    local_cache_scaled = size_ratio * slot_ratio * profile.t_cache

    plans: List[CachePlan] = []
    for option in options:
        if option.is_local:
            estimated = base_total
        else:
            remote = _estimated_cache_traffic_time(
                profile, target, option.bandwidth  # type: ignore[arg-type]
            )
            estimated = base_total - local_cache_scaled + remote
        plans.append(CachePlan(option=option, estimated_total=estimated))

    plans.sort(key=lambda plan: (plan.estimated_total, plan.option.site))
    return plans
