"""Physical-unit markers for the prediction model's quantities.

The paper's algebra — ``T_exec = T_disk + T_network + T_compute`` with
scaling formulas like ``(ŝ/s)·(n/n̂)·(b/b̂)·t_n`` — is dimensionally
coherent: times are seconds, dataset sizes are bytes, bandwidths are
bytes/second, node counts are counts, and scaling factors are
dimensionless ratios.  This module gives those dimensions names so that

- dataclass fields can carry their unit in the type (``t_disk:
  Seconds``), readable by humans, type checkers (``Annotated[float, u]``
  is just ``float`` to mypy), and
- the whole-program lint layer (``repro lint --flow``, rule REP104) can
  seed its unit lattice from the annotations instead of guessing from
  names alone.

The string constants are the canonical spelling the REP104 checker
matches on; keep them in sync with ``repro.lint.flow.units``.
"""

from __future__ import annotations

from typing import Annotated

__all__ = [
    "SECONDS",
    "BYTES",
    "BYTES_PER_SECOND",
    "COUNT",
    "RATIO",
    "Seconds",
    "Bytes",
    "BytesPerSecond",
    "Count",
    "Ratio",
]

#: Durations: every ``t_*`` component, latency, and recovery term.
SECONDS = "s"
#: Data volumes: dataset sizes, reduction-object sizes, chunk sizes.
BYTES = "B"
#: Transfer rates: link bandwidth, disk streaming rate.
BYTES_PER_SECOND = "B/s"
#: Cardinalities: node counts, slot counts, pass/round counts.
COUNT = "count"
#: Dimensionless quantities: scaling factors, speedups, fractions.
RATIO = "ratio"

Seconds = Annotated[float, SECONDS]
Bytes = Annotated[float, BYTES]
BytesPerSecond = Annotated[float, BYTES_PER_SECOND]
Count = Annotated[int, COUNT]
Ratio = Annotated[float, RATIO]
