"""Cross-cluster prediction (Section 3.4 of the paper).

To predict on cluster B from a profile collected on cluster A, a small set
of representative FREERIDE-G applications is executed on *identical
configurations* (same storage/compute node counts, same dataset size) on
both clusters.  The per-component relative speedups

``s_d = mean(T_disk,app-B / T_disk,app-A)``   (and likewise ``s_n``, ``s_c``)

are averaged across the representative applications.  A prediction for a
new application is then made on cluster A for the target configuration and
rescaled componentwise:

``T̂_exec-B = s_d · T̂_disk-A + s_n · T̂_network-A + s_c · T̂_compute-A``

Because applications differ in operation mix, their true compute speedups
differ (0.233-0.370 in the paper); the averaged ``s_c`` is the dominant
source of cross-cluster prediction error.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

from repro.core.models import PredictedBreakdown, PredictionModel
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.core.units import Ratio
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "ComponentScalingFactors",
    "measure_scaling_factors",
    "CrossClusterPredictor",
]


@dataclass(frozen=True)
class ComponentScalingFactors:
    """Averaged componentwise speedups from cluster A to cluster B."""

    sd: Ratio  # data retrieval
    sn: Ratio  # data communication
    sc: Ratio  # data processing
    per_app: Dict[str, Tuple[float, float, float]] | None = None

    def __post_init__(self) -> None:
        for name in ("sd", "sn", "sc"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"scaling factor {name} must be > 0")


def _require_identical_configuration(a: Profile, b: Profile) -> None:
    if (
        a.data_nodes != b.data_nodes
        or a.compute_nodes != b.compute_nodes
        or a.dataset_bytes != b.dataset_bytes
    ):
        raise ConfigurationError(
            "scaling factors must be measured on identical configurations "
            f"(got {a.label}@{a.dataset_bytes:g} vs {b.label}@{b.dataset_bytes:g})"
        )


def measure_scaling_factors(
    pairs: Sequence[Tuple[Profile, Profile]],
) -> ComponentScalingFactors:
    """Average componentwise speedups over representative applications.

    ``pairs`` holds, per representative application, its profile on
    cluster A and its profile on cluster B, both on the same configuration
    and dataset size.
    """
    if not pairs:
        raise ConfigurationError("need at least one representative application")
    per_app: Dict[str, Tuple[float, float, float]] = {}
    sd = sn = sc = 0.0
    for prof_a, prof_b in pairs:
        _require_identical_configuration(prof_a, prof_b)
        if min(prof_a.t_disk, prof_a.t_network, prof_a.t_compute) <= 0:
            raise ConfigurationError(
                f"profile for '{prof_a.app}' has a zero component; cannot "
                "form componentwise ratios"
            )
        ratios = (
            prof_b.t_disk / prof_a.t_disk,
            prof_b.t_network / prof_a.t_network,
            prof_b.t_compute / prof_a.t_compute,
        )
        per_app[prof_a.app] = ratios
        sd += ratios[0]
        sn += ratios[1]
        sc += ratios[2]
    count = len(pairs)
    return ComponentScalingFactors(
        sd=sd / count, sn=sn / count, sc=sc / count, per_app=per_app
    )


class CrossClusterPredictor(PredictionModel):
    """Wraps a base model with Section 3.4's componentwise rescaling.

    ``predict`` first predicts the target configuration *as if it ran on
    the profile's clusters* (same n̂, ĉ, ŝ, b̂), then rescales each
    component by the measured factors.

    ``apply`` selects which components actually move to the new hardware.
    The paper's experiments relocate the whole deployment (repository and
    compute cluster together) — the default.  In mixed deployments only
    part of the stack changes: e.g. a job computing on the new cluster
    while still retrieving from the old repository over the same network
    should rescale only the compute component (``apply=("compute",)``).
    """

    label = "cross-cluster"

    _COMPONENTS = ("disk", "network", "compute")

    def __init__(
        self,
        base_model: PredictionModel,
        factors: ComponentScalingFactors,
        apply: Sequence[str] = _COMPONENTS,
    ) -> None:
        unknown = set(apply) - set(self._COMPONENTS)
        if unknown:
            raise ConfigurationError(
                f"unknown components {sorted(unknown)}; "
                f"expected a subset of {self._COMPONENTS}"
            )
        if not apply:
            raise ConfigurationError("apply must name at least one component")
        self.base_model = base_model
        self.factors = factors
        self.apply = tuple(apply)

    def predict(
        self, profile: Profile, target: PredictionTarget
    ) -> PredictedBreakdown:
        same_cluster_config = target.config.with_clusters(
            profile.storage_cluster, profile.compute_cluster
        )
        target_on_a = replace(target, config=same_cluster_config)
        on_a = self.base_model.predict(profile, target_on_a)
        return on_a.scaled(
            self.factors.sd if "disk" in self.apply else 1.0,
            self.factors.sn if "network" in self.apply else 1.0,
            self.factors.sc if "compute" in self.apply else 1.0,
        )
