"""Resource and replica selection (Sections 2.1 and 3 of the paper).

"We are given a dataset, which is replicated at r sites.  We have also
identified c different computing configurations where the processing can
be performed. ... Our goal is to choose a replica and computing
configuration pair where the data processing can be performed with the
minimum cost."

:class:`ResourceSelector` enumerates every (replica site, compute site,
node allocation) combination, obtains the path bandwidth from the grid
topology, predicts the execution time with the supplied model, and ranks
the candidates by predicted cost.

Pruned combinations are not silently dropped: every infeasible
(replica, configuration) pair is recorded as a
:class:`RejectedCandidate` with a machine-usable ``code`` and a
human-readable ``reason``, available on :attr:`SelectionOutcome.rejections`.
When *nothing* is feasible, :meth:`ResourceSelector.select` raises
:class:`InfeasibleSelectionError`, which carries the same rejection list —
the broker's admission control turns these into its rejection messages.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.models import PredictedBreakdown, PredictionModel
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.middleware.replica import ReplicaCatalog
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError, TopologyError
from repro.simgrid.topology import GridTopology, SiteKind

__all__ = [
    "SelectionCandidate",
    "RejectedCandidate",
    "SelectionOutcome",
    "InfeasibleSelectionError",
    "ResourceSelector",
]


@dataclass(frozen=True)
class RejectedCandidate:
    """One pruned (replica, configuration) combination and why.

    ``data_nodes``/``compute_nodes`` are ``None`` when the whole site pair
    was pruned before any allocation was considered (e.g. the sites are
    not connected).  ``code`` is stable and machine-usable:

    - ``"unreachable"``           — no topology path replica -> compute site;
    - ``"infeasible-allocation"`` — the allocation violates a resource
      constraint (cluster too small, ``c < n``, ...).

    ``arrival_index`` and ``vo`` identify the *job* whose selection was
    pruned (``None`` when the rejection is not job-scoped, e.g. a bare
    selector query).  The broker stamps them via
    :meth:`InfeasibleSelectionError.tagged` so six-figure-run reports
    can aggregate rejections per VO instead of per job.
    """

    replica_site: str
    compute_site: str
    data_nodes: Optional[int]
    compute_nodes: Optional[int]
    code: str
    reason: str
    arrival_index: Optional[int] = None
    vo: Optional[str] = None

    def with_job_tag(
        self, arrival_index: Optional[int], vo: Optional[str]
    ) -> "RejectedCandidate":
        """A copy carrying the rejected job's identity."""
        return RejectedCandidate(
            replica_site=self.replica_site,
            compute_site=self.compute_site,
            data_nodes=self.data_nodes,
            compute_nodes=self.compute_nodes,
            code=self.code,
            reason=self.reason,
            arrival_index=arrival_index,
            vo=vo,
        )

    @property
    def label(self) -> str:
        """Human-readable description of the pruned combination."""
        alloc = (
            f"[{self.data_nodes}] -> {self.compute_site}[{self.compute_nodes}]"
            if self.data_nodes is not None
            else f" -> {self.compute_site}"
        )
        return f"{self.replica_site}{alloc}: {self.reason}"


class InfeasibleSelectionError(ConfigurationError):
    """No (replica, configuration) pair is feasible.

    Carries the per-candidate :attr:`rejections` so callers (notably the
    grid broker's admission control) can report *why* each combination was
    pruned instead of a bare "nothing feasible".
    """

    def __init__(
        self, message: str, rejections: Sequence[RejectedCandidate] = ()
    ) -> None:
        super().__init__(message)
        self.rejections: Tuple[RejectedCandidate, ...] = tuple(rejections)

    def tagged(
        self, arrival_index: Optional[int], vo: Optional[str]
    ) -> "InfeasibleSelectionError":
        """The same error with every rejection stamped with a job identity.

        The selector itself is job-agnostic; the broker calls this at
        admission time so the rejections surfacing in its report carry
        the arrival index and VO tag of the refused job.
        """
        return InfeasibleSelectionError(
            str(self),
            [r.with_job_tag(arrival_index, vo) for r in self.rejections],
        )


@dataclass(frozen=True)
class SelectionCandidate:
    """One (replica, computing configuration) pair with its predicted cost."""

    replica_site: str
    compute_site: str
    data_nodes: int
    compute_nodes: int
    bandwidth: float
    prediction: PredictedBreakdown

    @property
    def predicted_total(self) -> float:
        """Predicted execution time (the selection cost)."""
        return self.prediction.total

    @functools.cached_property
    def sort_key(self) -> Tuple[str, str, int, int]:
        """Deterministic tie-break tuple, computed once per candidate.

        Candidates are immutable and memoized for a broker's lifetime,
        so policies re-reading the tie-break on every decision hit the
        cached tuple instead of rebuilding it.
        """
        return (
            self.replica_site,
            self.compute_site,
            self.data_nodes,
            self.compute_nodes,
        )

    @property
    def label(self) -> str:
        """Human-readable candidate description."""
        return (
            f"{self.replica_site}[{self.data_nodes}] -> "
            f"{self.compute_site}[{self.compute_nodes}]"
        )


@dataclass(frozen=True)
class SelectionOutcome:
    """Ranked candidates; ``best`` minimizes predicted execution time.

    ``rejections`` records every pruned combination (in enumeration
    order) so callers can explain why a particular pairing is absent.
    """

    candidates: Tuple[SelectionCandidate, ...]
    rejections: Tuple[RejectedCandidate, ...] = ()

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ConfigurationError("selection produced no candidates")

    @property
    def best(self) -> SelectionCandidate:
        return self.candidates[0]

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)


class ResourceSelector:
    """Enumerates and ranks (replica, configuration) pairs.

    Parameters
    ----------
    topology:
        The grid; provides path bandwidth between replica and compute
        sites.
    catalog:
        Replica locations per dataset.
    model_for_site:
        Maps a compute-site name to the prediction model to use there —
        typically a within-cluster model for the profile's own cluster and
        a :class:`~repro.core.heterogeneous.CrossClusterPredictor` for
        other machine types.  A plain :class:`PredictionModel` may be
        passed instead to use one model everywhere.
    allocations:
        Candidate ``(data_nodes, compute_nodes)`` pairs to consider at
        every site pair; infeasible ones (exceeding a cluster's size) are
        pruned and recorded on :attr:`SelectionOutcome.rejections`.
    """

    def __init__(
        self,
        topology: GridTopology,
        catalog: ReplicaCatalog,
        model_for_site: PredictionModel | Callable[[str], PredictionModel],
        allocations: Sequence[Tuple[int, int]],
    ) -> None:
        if not allocations:
            raise ConfigurationError("need at least one candidate allocation")
        self.topology = topology
        self.catalog = catalog
        self._model_for_site = model_for_site
        self.allocations = list(allocations)

    def _model(self, compute_site: str) -> PredictionModel:
        if isinstance(self._model_for_site, PredictionModel):
            return self._model_for_site
        return self._model_for_site(compute_site)

    def select(
        self,
        dataset: str,
        dataset_bytes: float,
        profile: Profile,
        compute_sites: Optional[Sequence[str]] = None,
    ) -> SelectionOutcome:
        """Rank every feasible (replica, compute site, allocation) triple."""
        if dataset_bytes <= 0:
            raise ConfigurationError("dataset size must be positive")
        replicas = self.catalog.replicas_of(dataset)
        if compute_sites is None:
            sites = [s.name for s in self.topology.sites(SiteKind.COMPUTE)]
        else:
            sites = list(compute_sites)
        if not sites:
            raise ConfigurationError("no compute sites to consider")

        candidates: List[SelectionCandidate] = []
        rejections: List[RejectedCandidate] = []
        for replica in replicas:
            storage_cluster = self.topology.site(replica.site).cluster
            for site_name in sites:
                compute_cluster = self.topology.site(site_name).cluster
                try:
                    bandwidth = self.topology.bandwidth_between(
                        replica.site, site_name
                    )
                except TopologyError as exc:
                    rejections.append(
                        RejectedCandidate(
                            replica_site=replica.site,
                            compute_site=site_name,
                            data_nodes=None,
                            compute_nodes=None,
                            code="unreachable",
                            reason=str(exc),
                        )
                    )
                    continue
                model = self._model(site_name)
                for data_nodes, compute_nodes in self.allocations:
                    try:
                        config = RunConfig(
                            storage_cluster=storage_cluster,
                            compute_cluster=compute_cluster,
                            data_nodes=data_nodes,
                            compute_nodes=compute_nodes,
                            bandwidth=bandwidth,
                        )
                    except ConfigurationError as exc:
                        rejections.append(
                            RejectedCandidate(
                                replica_site=replica.site,
                                compute_site=site_name,
                                data_nodes=data_nodes,
                                compute_nodes=compute_nodes,
                                code="infeasible-allocation",
                                reason=str(exc),
                            )
                        )
                        continue
                    target = PredictionTarget(
                        config=config, dataset_bytes=dataset_bytes
                    )
                    prediction = model.predict(profile, target)
                    candidates.append(
                        SelectionCandidate(
                            replica_site=replica.site,
                            compute_site=site_name,
                            data_nodes=data_nodes,
                            compute_nodes=compute_nodes,
                            bandwidth=bandwidth,
                            prediction=prediction,
                        )
                    )

        if not candidates:
            detail = "; ".join(r.label for r in rejections[:4])
            if len(rejections) > 4:
                detail += f"; ... {len(rejections) - 4} more"
            raise InfeasibleSelectionError(
                f"no feasible (replica, configuration) pair for '{dataset}'"
                + (f" ({detail})" if detail else ""),
                rejections,
            )
        candidates.sort(key=lambda cand: (cand.predicted_total, cand.label))
        return SelectionOutcome(
            candidates=tuple(candidates), rejections=tuple(rejections)
        )
