"""Resource and replica selection (Sections 2.1 and 3 of the paper).

"We are given a dataset, which is replicated at r sites.  We have also
identified c different computing configurations where the processing can
be performed. ... Our goal is to choose a replica and computing
configuration pair where the data processing can be performed with the
minimum cost."

:class:`ResourceSelector` enumerates every (replica site, compute site,
node allocation) combination, obtains the path bandwidth from the grid
topology, predicts the execution time with the supplied model, and ranks
the candidates by predicted cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.models import PredictedBreakdown, PredictionModel
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.middleware.replica import ReplicaCatalog
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError, TopologyError
from repro.simgrid.topology import GridTopology, SiteKind

__all__ = ["SelectionCandidate", "SelectionOutcome", "ResourceSelector"]


@dataclass(frozen=True)
class SelectionCandidate:
    """One (replica, computing configuration) pair with its predicted cost."""

    replica_site: str
    compute_site: str
    data_nodes: int
    compute_nodes: int
    bandwidth: float
    prediction: PredictedBreakdown

    @property
    def predicted_total(self) -> float:
        """Predicted execution time (the selection cost)."""
        return self.prediction.total

    @property
    def label(self) -> str:
        """Human-readable candidate description."""
        return (
            f"{self.replica_site}[{self.data_nodes}] -> "
            f"{self.compute_site}[{self.compute_nodes}]"
        )


@dataclass(frozen=True)
class SelectionOutcome:
    """Ranked candidates; ``best`` minimizes predicted execution time."""

    candidates: Tuple[SelectionCandidate, ...]

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ConfigurationError("selection produced no candidates")

    @property
    def best(self) -> SelectionCandidate:
        return self.candidates[0]

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)


class ResourceSelector:
    """Enumerates and ranks (replica, configuration) pairs.

    Parameters
    ----------
    topology:
        The grid; provides path bandwidth between replica and compute
        sites.
    catalog:
        Replica locations per dataset.
    model_for_site:
        Maps a compute-site name to the prediction model to use there —
        typically a within-cluster model for the profile's own cluster and
        a :class:`~repro.core.heterogeneous.CrossClusterPredictor` for
        other machine types.  A plain :class:`PredictionModel` may be
        passed instead to use one model everywhere.
    allocations:
        Candidate ``(data_nodes, compute_nodes)`` pairs to consider at
        every site pair; infeasible ones (exceeding a cluster's size) are
        skipped silently.
    """

    def __init__(
        self,
        topology: GridTopology,
        catalog: ReplicaCatalog,
        model_for_site: PredictionModel | Callable[[str], PredictionModel],
        allocations: Sequence[Tuple[int, int]],
    ) -> None:
        if not allocations:
            raise ConfigurationError("need at least one candidate allocation")
        self.topology = topology
        self.catalog = catalog
        self._model_for_site = model_for_site
        self.allocations = list(allocations)

    def _model(self, compute_site: str) -> PredictionModel:
        if isinstance(self._model_for_site, PredictionModel):
            return self._model_for_site
        return self._model_for_site(compute_site)

    def select(
        self,
        dataset: str,
        dataset_bytes: float,
        profile: Profile,
        compute_sites: Optional[Sequence[str]] = None,
    ) -> SelectionOutcome:
        """Rank every feasible (replica, compute site, allocation) triple."""
        if dataset_bytes <= 0:
            raise ConfigurationError("dataset size must be positive")
        replicas = self.catalog.replicas_of(dataset)
        if compute_sites is None:
            sites = [s.name for s in self.topology.sites(SiteKind.COMPUTE)]
        else:
            sites = list(compute_sites)
        if not sites:
            raise ConfigurationError("no compute sites to consider")

        candidates: List[SelectionCandidate] = []
        for replica in replicas:
            storage_cluster = self.topology.site(replica.site).cluster
            for site_name in sites:
                compute_cluster = self.topology.site(site_name).cluster
                try:
                    bandwidth = self.topology.bandwidth_between(
                        replica.site, site_name
                    )
                except TopologyError:
                    continue  # unreachable pair
                model = self._model(site_name)
                for data_nodes, compute_nodes in self.allocations:
                    try:
                        config = RunConfig(
                            storage_cluster=storage_cluster,
                            compute_cluster=compute_cluster,
                            data_nodes=data_nodes,
                            compute_nodes=compute_nodes,
                            bandwidth=bandwidth,
                        )
                    except ConfigurationError:
                        continue  # infeasible allocation at this site pair
                    target = PredictionTarget(
                        config=config, dataset_bytes=dataset_bytes
                    )
                    prediction = model.predict(profile, target)
                    candidates.append(
                        SelectionCandidate(
                            replica_site=replica.site,
                            compute_site=site_name,
                            data_nodes=data_nodes,
                            compute_nodes=compute_nodes,
                            bandwidth=bandwidth,
                            prediction=prediction,
                        )
                    )

        if not candidates:
            raise ConfigurationError(
                f"no feasible (replica, configuration) pair for '{dataset}'"
            )
        candidates.sort(key=lambda cand: (cand.predicted_total, cand.label))
        return SelectionOutcome(candidates=tuple(candidates))
