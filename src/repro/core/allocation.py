"""Dynamic resource allocation: the end-goal the paper motivates.

Section 1: "A major goal of grid computing is enabling applications to
identify and allocate resources dynamically. ... for a middleware to
perform resource allocation, prediction models are needed, which can
determine how long an application will take for completion on a
particular platform or configuration."

This module closes that loop: a :class:`GridScheduler` receives a batch
of jobs (workload + dataset), tracks per-site node capacity over time, and
places each job on the feasible (replica, compute site, allocation) pair
its policy chooses.  The *predicted-best* policy uses the paper's
prediction framework; *random* and *max-parallelism* are the baselines a
prediction-free middleware would be stuck with.  Placed jobs execute for
real on the simulated middleware, so schedule quality (makespan, mean
turnaround) is measured, not assumed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.models import PredictionModel
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.middleware.dataset import Dataset
from repro.middleware.replica import ReplicaCatalog
from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError, TopologyError
from repro.simgrid.topology import GridTopology, SiteKind

__all__ = [
    "Job",
    "Placement",
    "Schedule",
    "GridScheduler",
    "predicted_best_policy",
    "random_policy",
    "max_parallelism_policy",
]


@dataclass(frozen=True)
class Job:
    """One unit of work submitted to the grid."""

    job_id: str
    workload: str
    dataset: Dataset
    app_factory: Callable[[], object]
    profile: Profile

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("jobs need a non-empty id")


@dataclass(frozen=True)
class Candidate:
    """A feasible placement option for a job at some instant."""

    replica_site: str
    compute_site: str
    data_nodes: int
    compute_nodes: int
    bandwidth: float
    predicted: float


@dataclass(frozen=True)
class Placement:
    """Where and when a job ran, and how long it actually took."""

    job_id: str
    replica_site: str
    compute_site: str
    data_nodes: int
    compute_nodes: int
    start: float
    end: float
    predicted: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def label(self) -> str:
        return (
            f"{self.job_id}: {self.replica_site}[{self.data_nodes}] -> "
            f"{self.compute_site}[{self.compute_nodes}]"
        )


@dataclass
class Schedule:
    """A completed schedule with its quality metrics."""

    placements: List[Placement] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Completion time of the last job."""
        if not self.placements:
            raise ConfigurationError("empty schedule has no makespan")
        return max(p.end for p in self.placements)

    @property
    def mean_turnaround(self) -> float:
        """Average completion time over jobs (all submitted at t=0)."""
        if not self.placements:
            raise ConfigurationError("empty schedule has no turnaround")
        return sum(p.end for p in self.placements) / len(self.placements)

    def placement_of(self, job_id: str) -> Placement:
        for placement in self.placements:
            if placement.job_id == job_id:
                return placement
        raise ConfigurationError(f"no placement for job '{job_id}'")


Policy = Callable[[Job, Sequence[Candidate]], Candidate]


def predicted_best_policy(job: Job, candidates: Sequence[Candidate]) -> Candidate:
    """Pick the candidate with minimum predicted execution time."""
    return min(candidates, key=lambda c: (c.predicted, c.compute_site))


def random_policy(seed: int = 0) -> Policy:
    """A prediction-free baseline: pick a feasible candidate uniformly."""
    rng = np.random.default_rng(seed)

    def choose(job: Job, candidates: Sequence[Candidate]) -> Candidate:
        return candidates[int(rng.integers(len(candidates)))]

    return choose


def max_parallelism_policy(job: Job, candidates: Sequence[Candidate]) -> Candidate:
    """A prediction-free heuristic: grab the most compute nodes available.

    Ties break on data nodes, then site name — deliberately *not* on the
    predicted time, which a prediction-free middleware would not have.
    """
    return max(
        candidates,
        key=lambda c: (
            c.compute_nodes,
            c.data_nodes,
            c.compute_site,
            c.replica_site,
        ),
    )


class GridScheduler:
    """Places a batch of jobs on a capacity-constrained grid.

    Jobs are considered in submission order; when no candidate fits the
    currently free capacity, time advances to the next job completion.
    Compute-site node reservations are exclusive; repository (data-node)
    capacity is tracked the same way.
    """

    def __init__(
        self,
        topology: GridTopology,
        catalog: ReplicaCatalog,
        model: PredictionModel,
        allocations: Sequence[Tuple[int, int]],
    ) -> None:
        if not allocations:
            raise ConfigurationError("need at least one candidate allocation")
        self.topology = topology
        self.catalog = catalog
        self.model = model
        self.allocations = list(allocations)

    # ------------------------------------------------------------------

    def schedule(self, jobs: Sequence[Job], policy: Policy) -> Schedule:
        """Place and execute every job; returns the completed schedule."""
        if not jobs:
            raise ConfigurationError("no jobs to schedule")

        free: Dict[str, int] = {
            site.name: site.cluster.num_nodes for site in self.topology.sites()
        }
        releases: List[Tuple[float, str, int]] = []  # (time, site, nodes)
        now = 0.0
        schedule = Schedule()

        for job in jobs:
            while True:
                candidates = self._feasible(job, free)
                if candidates:
                    break
                if not releases:
                    raise ConfigurationError(
                        f"job '{job.job_id}' can never be placed: no "
                        "allocation fits the grid"
                    )
                now, site, nodes = heapq.heappop(releases)
                free[site] += nodes

            choice = policy(job, candidates)
            duration = self._execute(job, choice)

            free[choice.compute_site] -= choice.compute_nodes
            free[choice.replica_site] -= choice.data_nodes
            heapq.heappush(
                releases,
                (now + duration, choice.compute_site, choice.compute_nodes),
            )
            heapq.heappush(
                releases,
                (now + duration, choice.replica_site, choice.data_nodes),
            )
            schedule.placements.append(
                Placement(
                    job_id=job.job_id,
                    replica_site=choice.replica_site,
                    compute_site=choice.compute_site,
                    data_nodes=choice.data_nodes,
                    compute_nodes=choice.compute_nodes,
                    start=now,
                    end=now + duration,
                    predicted=choice.predicted,
                )
            )
        return schedule

    # ------------------------------------------------------------------

    def _feasible(
        self, job: Job, free: Dict[str, int]
    ) -> List[Candidate]:
        candidates: List[Candidate] = []
        for replica in self.catalog.replicas_of(job.dataset.name):
            storage_cluster = self.topology.site(replica.site).cluster
            for site in self.topology.sites(SiteKind.COMPUTE):
                try:
                    bandwidth = self.topology.bandwidth_between(
                        replica.site, site.name
                    )
                except TopologyError:
                    continue
                for data_nodes, compute_nodes in self.allocations:
                    if data_nodes > free[replica.site]:
                        continue
                    if compute_nodes > free[site.name]:
                        continue
                    try:
                        config = RunConfig(
                            storage_cluster=storage_cluster,
                            compute_cluster=site.cluster,
                            data_nodes=data_nodes,
                            compute_nodes=compute_nodes,
                            bandwidth=bandwidth,
                        )
                    except ConfigurationError:
                        continue
                    target = PredictionTarget(
                        config=config, dataset_bytes=job.dataset.nbytes
                    )
                    predicted = self.model.predict(job.profile, target).total
                    candidates.append(
                        Candidate(
                            replica_site=replica.site,
                            compute_site=site.name,
                            data_nodes=data_nodes,
                            compute_nodes=compute_nodes,
                            bandwidth=bandwidth,
                            predicted=predicted,
                        )
                    )
        return candidates

    def _execute(self, job: Job, choice: Candidate) -> float:
        config = RunConfig(
            storage_cluster=self.topology.site(choice.replica_site).cluster,
            compute_cluster=self.topology.site(choice.compute_site).cluster,
            data_nodes=choice.data_nodes,
            compute_nodes=choice.compute_nodes,
            bandwidth=choice.bandwidth,
        )
        result = FreerideGRuntime(config).execute(
            job.app_factory(), job.dataset
        )
        return result.breakdown.total
