"""Class auto-detection from multiple profile runs.

Section 3.3.1: "Whether an application falls into the linear object size
or constant reduction object size class can be determined in one of many
ways.  A user of the FREERIDE-G can provide this information ...
Alternatively, by looking at reduction object size from two or more
profile runs with different dataset size and/or processing nodes, we can
obtain this information."  Section 3.3.2 makes the same observation for
the global-reduction time classes.

Both detectors below compare the relative residuals of the two candidate
hypotheses over all profile pairs and pick the better-fitting class.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.classes import GlobalReductionClass, ReductionObjectClass
from repro.core.profile import Profile
from repro.simgrid.errors import ConfigurationError

__all__ = ["classify_object_size", "classify_global_reduction"]


def _require_varied_profiles(profiles: Sequence[Profile]) -> None:
    if len(profiles) < 2:
        raise ConfigurationError(
            "class detection needs at least two profile runs"
        )
    varied = any(
        p.compute_nodes != profiles[0].compute_nodes
        or p.dataset_bytes != profiles[0].dataset_bytes
        for p in profiles[1:]
    )
    if not varied:
        raise ConfigurationError(
            "profile runs must differ in dataset size and/or compute nodes"
        )


def _mean_relative_residual(
    observed: Sequence[float], predicted: Sequence[float]
) -> float:
    total = 0.0
    for obs, pred in zip(observed, predicted):
        denom = max(abs(obs), 1e-12)
        total += abs(obs - pred) / denom
    return total / len(observed)


def classify_object_size(
    profiles: Sequence[Profile],
) -> ReductionObjectClass:
    """Pick CONSTANT vs LINEAR from measured reduction-object sizes.

    The CONSTANT hypothesis predicts every profile's object size equals
    the first profile's; the LINEAR hypothesis predicts it scales with the
    per-node data share ``s / c``.
    """
    _require_varied_profiles(profiles)
    base = profiles[0]
    observed = [p.max_object_bytes for p in profiles]
    constant = [base.max_object_bytes for _ in profiles]
    base_share = base.dataset_bytes / base.compute_nodes
    linear = [
        base.max_object_bytes
        * (p.dataset_bytes / p.compute_nodes)
        / base_share
        for p in profiles
    ]
    if _mean_relative_residual(observed, constant) <= _mean_relative_residual(
        observed, linear
    ):
        return ReductionObjectClass.CONSTANT
    return ReductionObjectClass.LINEAR


def classify_global_reduction(
    profiles: Sequence[Profile],
) -> GlobalReductionClass:
    """Pick LINEAR_CONSTANT vs CONSTANT_LINEAR from measured ``T_g``.

    LINEAR_CONSTANT predicts ``T_g ∝ compute nodes``; CONSTANT_LINEAR
    predicts ``T_g ∝ dataset size``.
    """
    _require_varied_profiles(profiles)
    base = profiles[0]
    observed = [p.t_g for p in profiles]
    linear_constant = [
        base.t_g * (p.compute_nodes / base.compute_nodes) for p in profiles
    ]
    constant_linear = [
        base.t_g * (p.dataset_bytes / base.dataset_bytes) for p in profiles
    ]
    if _mean_relative_residual(
        observed, linear_constant
    ) <= _mean_relative_residual(observed, constant_linear):
        return GlobalReductionClass.LINEAR_CONSTANT
    return GlobalReductionClass.CONSTANT_LINEAR
