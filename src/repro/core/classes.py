"""Application model classes (Sections 3.3.1-3.3.2 of the paper).

Two independent two-way classifications determine how the serialized parts
of the processing component scale to a new configuration:

**Reduction-object size** (Section 3.3.1) — how the per-node reduction
object's size scales:

- ``CONSTANT`` — "the reduction object size depends only on the
  application parameters, and does not change with respect to dataset size
  or the number of processors" (k-means centroids, kNN candidate lists, EM
  sufficient statistics).
- ``LINEAR`` — the object holds features extracted from the node's local
  data, so it scales with the node's data share ``s / c`` (vortex
  fragments, molecular defects).  At the aggregate level the communicated
  volume then "grows linearly with the number of processing nodes, as well
  as the dataset size" — the paper's phrasing — because ``c - 1`` such
  objects are gathered.

**Global-reduction time** (Section 3.3.2):

- ``LINEAR_CONSTANT`` — "scales up linearly with the number of processing
  nodes, but is independent of the dataset size" (merging ``c``
  fixed-size objects: k-means, kNN).
- ``CONSTANT_LINEAR`` — "remains constant as the number of processing
  nodes is varied, but is linear on the dataset size" (joining /
  de-noising / categorizing feature sets: vortex, defect).

Either classification can be supplied by the user or auto-detected from
two or more profile runs (:mod:`repro.core.classify`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "ReductionObjectClass",
    "GlobalReductionClass",
    "ModelClasses",
    "estimate_object_size",
    "estimate_global_reduction_time",
]


class ReductionObjectClass(str, enum.Enum):
    """How per-node reduction-object size scales across configurations."""

    CONSTANT = "constant"
    LINEAR = "linear"


class GlobalReductionClass(str, enum.Enum):
    """How global-reduction time scales across configurations."""

    LINEAR_CONSTANT = "linear-constant"
    CONSTANT_LINEAR = "constant-linear"


@dataclass(frozen=True)
class ModelClasses:
    """The pair of class assignments used by the refined predictors."""

    object_size: ReductionObjectClass
    global_reduction: GlobalReductionClass

    @classmethod
    def parse(cls, object_size: str, global_reduction: str) -> "ModelClasses":
        """Build from the string labels used in workload specs."""
        try:
            return cls(
                object_size=ReductionObjectClass(object_size),
                global_reduction=GlobalReductionClass(global_reduction),
            )
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc


def estimate_object_size(
    profile: Profile,
    target: PredictionTarget,
    object_class: ReductionObjectClass,
) -> float:
    """Estimate the per-node reduction-object size r̂ on the target.

    "The size of a reduction object for a particular configuration can be
    estimated from the size of the reduction object on the profile
    configuration" (Section 3.3.1).
    """
    r = profile.max_object_bytes
    if object_class is ReductionObjectClass.CONSTANT:
        return r
    # LINEAR: the object scales with the node's local data share.
    share_profile = profile.dataset_bytes / profile.compute_nodes
    share_target = target.dataset_bytes / target.compute_nodes
    if share_profile <= 0:
        raise ConfigurationError("profile data share must be positive")
    return r * share_target / share_profile


def estimate_global_reduction_time(
    profile: Profile,
    target: PredictionTarget,
    global_class: GlobalReductionClass,
) -> float:
    """Estimate T̂_g on the target from the profile's measured ``T_g``."""
    if global_class is GlobalReductionClass.LINEAR_CONSTANT:
        return profile.t_g * (target.compute_nodes / profile.compute_nodes)
    return profile.t_g * (target.dataset_bytes / profile.dataset_bytes)
