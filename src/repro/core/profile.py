"""The profile artefact: everything a prediction is based on.

Section 3.1 of the paper — "predictions have to be based on a profile,
which is collected by executing the application on one dataset and one
execution configuration".  The summary information comprises:

- the configuration: storage nodes ``n``, compute nodes ``c``, bandwidth
  ``b``, and dataset size ``s``;
- the breakdown of execution time into data retrieval, network
  communication and processing components (``t_d``, ``t_n``, ``t_c``);
- the maximum reduction-object size;
- the reduction-object communication time ``T_ro`` and global-reduction
  time ``T_g`` on the profile configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

from repro.core.units import Bytes, BytesPerSecond, Seconds
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import ClusterSpec
from repro.simgrid.trace import TimeBreakdown

__all__ = ["Profile"]


@dataclass(frozen=True)
class Profile:
    """Summary information from one profile execution."""

    app: str
    storage_cluster: ClusterSpec
    compute_cluster: ClusterSpec
    data_nodes: int
    compute_nodes: int
    bandwidth: BytesPerSecond
    dataset_bytes: Bytes
    t_disk: Seconds
    t_network: Seconds
    t_compute: Seconds
    t_ro: Seconds
    t_g: Seconds
    max_object_bytes: Bytes
    broadcast_bytes: Bytes = 0.0
    gather_rounds: int = 1
    processes_per_node: int = 1
    t_cache: Seconds = 0.0
    metadata: Dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.data_nodes <= 0 or self.compute_nodes <= 0:
            raise ConfigurationError("profile node counts must be positive")
        if self.dataset_bytes <= 0:
            raise ConfigurationError("profile dataset size must be positive")
        if self.bandwidth <= 0:
            raise ConfigurationError("profile bandwidth must be positive")
        for name in ("t_disk", "t_network", "t_compute", "t_ro", "t_g", "t_cache"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"profile {name} must be >= 0")
        if self.t_ro + self.t_g + self.t_cache > self.t_compute + 1e-12:
            raise ConfigurationError(
                "T_ro + T_g + cache time cannot exceed the processing component"
            )
        if self.gather_rounds <= 0:
            raise ConfigurationError("gather_rounds must be positive")
        if self.processes_per_node <= 0:
            raise ConfigurationError("processes_per_node must be positive")

    @property
    def total(self) -> Seconds:
        """Profile execution time (``t_d + t_n + t_c``)."""
        return self.t_disk + self.t_network + self.t_compute

    @property
    def label(self) -> str:
        """The paper's 'n-c' notation for the profile configuration."""
        return f"{self.data_nodes}-{self.compute_nodes}"

    @property
    def compute_slots(self) -> int:
        """Total parallel reduction slots on the profile configuration."""
        return self.compute_nodes * self.processes_per_node

    @property
    def scalable_compute(self) -> Seconds:
        """``T'' = t_c - T_ro - T_g`` — the parallelizable processing time."""
        return max(self.t_compute - self.t_ro - self.t_g, 0.0)

    @classmethod
    def from_run(cls, config: RunConfig, breakdown: TimeBreakdown) -> "Profile":
        """Build a profile from a middleware execution's breakdown."""
        meta = breakdown.metadata
        return cls(
            app=str(meta.get("app", "unknown")),
            storage_cluster=config.storage_cluster,
            compute_cluster=config.compute_cluster,
            data_nodes=config.data_nodes,
            compute_nodes=config.compute_nodes,
            bandwidth=config.bandwidth,
            dataset_bytes=float(meta["dataset_nbytes"]),
            t_disk=breakdown.t_disk,
            t_network=breakdown.t_network,
            t_compute=breakdown.t_compute,
            t_ro=breakdown.t_ro,
            t_g=breakdown.t_g,
            max_object_bytes=breakdown.max_reduction_object_bytes,
            broadcast_bytes=float(meta.get("broadcast_nbytes", 0.0)),
            gather_rounds=int(meta.get("gather_rounds", 1)),
            processes_per_node=int(meta.get("processes_per_node", 1)),
            t_cache=breakdown.t_cache,
            metadata=dict(meta),
        )

    def with_breakdown(
        self, t_disk: float, t_network: float, t_compute: float
    ) -> "Profile":
        """A copy with substituted component times (keeps ``T_ro``/``T_g``
        proportional to the compute rescaling)."""
        if self.t_compute > 0:
            ratio = t_compute / self.t_compute
        else:
            ratio = 0.0
        return replace(
            self,
            t_disk=t_disk,
            t_network=t_network,
            t_compute=t_compute,
            t_ro=self.t_ro * ratio,
            t_g=self.t_g * ratio,
        )
