"""Canonical alias for the hot-path registry (see :mod:`repro.hotpath`).

The implementation lives at the top of the package tree because the
leaf layers that declare hot entries (``repro.simgrid``,
``repro.broker``) are imported *by* :mod:`repro.core`'s package init —
importing ``repro.core.hotpath`` from inside the simulator would be a
cycle.  Framework-level code is welcome to keep importing from here;
both spellings are the same objects and the same registry, and the
static analyzer accepts either as a hot declaration.
"""

from repro.hotpath import HOT_DECORATOR, declared_hot, hot, is_declared_hot

__all__ = ["hot", "declared_hot", "is_declared_hot", "HOT_DECORATOR"]
