"""Component predictors (Sections 3.2-3.3.1 of the paper).

Each function maps (profile, target) to a predicted component time:

- ``predict_disk_time``      — T̂_disk    = (ŝ/s) · (n/n̂) · t_d
- ``predict_network_time``   — T̂_network = (ŝ/s) · (n/n̂) · (b/b̂) · t_n
- ``predict_compute_naive``  — T̂_compute = (ŝ/s) · (c/ĉ) · t_c
  (linear parallel speedup, no communication modelling)
- ``predict_reduction_comm_time`` — T̂_ro from the experimentally fitted
  ``(w, l)`` message cost on the target cluster and the class-estimated
  reduction-object size; ``c - 1`` objects are gathered serially at the
  master, plus the re-broadcast for applications that return the combined
  object to the compute nodes.

The disk predictor assumes retrieval throughput grows linearly with the
number of storage nodes, and the network predictor assumes per-node
bandwidth ``b`` is known for the target (the paper points at wide-area
bandwidth prediction work [23, 28, 35, 36] for obtaining b̂; in this
reproduction b̂ comes from the grid topology or the experiment spec).
"""

from __future__ import annotations

from repro.core.classes import (
    ReductionObjectClass,
    estimate_object_size,
)
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.simgrid.network import CommCostModel

__all__ = [
    "predict_disk_time",
    "predict_network_time",
    "predict_compute_naive",
    "predict_reduction_comm_time",
]


def predict_disk_time(profile: Profile, target: PredictionTarget) -> float:
    """T̂_disk = (ŝ/s) · (n/n̂) · t_d  (Section 3.2)."""
    size_ratio = target.dataset_bytes / profile.dataset_bytes
    node_ratio = profile.data_nodes / target.data_nodes
    return size_ratio * node_ratio * profile.t_disk


def predict_network_time(
    profile: Profile,
    target: PredictionTarget,
    scale_with_data_nodes: bool = True,
) -> float:
    """T̂_network = (ŝ/s) · (n/n̂) · (b/b̂) · t_n  (Section 3.2).

    ``scale_with_data_nodes=False`` drops the ``n/n̂`` factor, the paper's
    fallback for deployments where aggregate throughput does not grow with
    the number of storage nodes.
    """
    size_ratio = target.dataset_bytes / profile.dataset_bytes
    node_ratio = (
        profile.data_nodes / target.data_nodes if scale_with_data_nodes else 1.0
    )
    bw_ratio = profile.bandwidth / target.bandwidth
    return size_ratio * node_ratio * bw_ratio * profile.t_network


def predict_compute_naive(profile: Profile, target: PredictionTarget) -> float:
    """T̂_compute = (ŝ/s) · (c/ĉ) · t_c — linear speedup, no communication.

    ``c`` counts parallel reduction *slots* (nodes times processes per
    node), which reduces to the paper's compute-node count for pure
    distributed-memory runs.
    """
    size_ratio = target.dataset_bytes / profile.dataset_bytes
    slot_ratio = profile.compute_slots / target.config.compute_slots
    return size_ratio * slot_ratio * profile.t_compute


def predict_reduction_comm_time(
    profile: Profile,
    target: PredictionTarget,
    object_class: ReductionObjectClass,
    comm_model: CommCostModel | None = None,
) -> float:
    """T̂_ro: serialized reduction-object communication on the target.

    ``T_ro = w · r + l`` per message (Section 3.3.1) with ``w`` and ``l``
    experimentally determined for the target processing configuration via
    the gather microbenchmark; the master receives ``ĉ - 1`` objects per
    gather round, and applications that re-broadcast the combined object
    pay ``ĉ - 1`` further messages of the profiled broadcast size.
    """
    if comm_model is None:
        comm_model = CommCostModel.fit_for_cluster(target.config.compute_cluster)
    r_hat = estimate_object_size(profile, target, object_class)
    per_round = comm_model.gather_time(target.compute_nodes, r_hat)
    if profile.broadcast_bytes > 0:
        per_round += comm_model.gather_time(
            target.compute_nodes, profile.broadcast_bytes
        )
    return profile.gather_rounds * per_round
