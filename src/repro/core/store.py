"""Profile persistence.

Profiles are meant to be collected once and reused for many predictions —
possibly in later sessions, by a scheduler daemon, or on another machine.
This module provides a JSON round-trip for
:class:`~repro.core.profile.Profile` and a small directory-backed store.
"""

from __future__ import annotations

import pathlib
import warnings
from typing import Any, Dict, List

from repro.core.durable import (
    CorruptStoreError,
    atomic_write_json,
    check_format_version,
    quarantine_corrupt,
    read_json_document,
)
from repro.core.profile import Profile
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.serialize import cluster_from_dict, cluster_to_dict

__all__ = [
    "profile_to_dict",
    "profile_from_dict",
    "save_profile",
    "load_profile",
    "ProfileStore",
]

_FORMAT_VERSION = 1


def profile_to_dict(profile: Profile) -> Dict[str, Any]:
    """A JSON-serializable snapshot of a profile."""
    return {
        "format_version": _FORMAT_VERSION,
        "app": profile.app,
        "storage_cluster": cluster_to_dict(profile.storage_cluster),
        "compute_cluster": cluster_to_dict(profile.compute_cluster),
        "data_nodes": profile.data_nodes,
        "compute_nodes": profile.compute_nodes,
        "bandwidth": profile.bandwidth,
        "dataset_bytes": profile.dataset_bytes,
        "t_disk": profile.t_disk,
        "t_network": profile.t_network,
        "t_compute": profile.t_compute,
        "t_ro": profile.t_ro,
        "t_g": profile.t_g,
        "max_object_bytes": profile.max_object_bytes,
        "broadcast_bytes": profile.broadcast_bytes,
        "gather_rounds": profile.gather_rounds,
        "processes_per_node": profile.processes_per_node,
        "t_cache": profile.t_cache,
    }


def profile_from_dict(data: Dict[str, Any]) -> Profile:
    """Rebuild a profile from :func:`profile_to_dict` output."""
    check_format_version(data, "profile", _FORMAT_VERSION)
    try:
        return Profile(
            app=str(data["app"]),
            storage_cluster=cluster_from_dict(data["storage_cluster"]),
            compute_cluster=cluster_from_dict(data["compute_cluster"]),
            data_nodes=int(data["data_nodes"]),
            compute_nodes=int(data["compute_nodes"]),
            bandwidth=float(data["bandwidth"]),
            dataset_bytes=float(data["dataset_bytes"]),
            t_disk=float(data["t_disk"]),
            t_network=float(data["t_network"]),
            t_compute=float(data["t_compute"]),
            t_ro=float(data["t_ro"]),
            t_g=float(data["t_g"]),
            max_object_bytes=float(data["max_object_bytes"]),
            broadcast_bytes=float(data.get("broadcast_bytes", 0.0)),
            gather_rounds=int(data.get("gather_rounds", 1)),
            processes_per_node=int(data.get("processes_per_node", 1)),
            t_cache=float(data.get("t_cache", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed profile: {exc}") from exc


def save_profile(profile: Profile, path: str | pathlib.Path) -> pathlib.Path:
    """Durably write a profile to a JSON file; returns the path.

    The write is atomic (temp file + fsync + rename), so a crash here
    can never leave a truncated profile behind.
    """
    return atomic_write_json(path, profile_to_dict(profile))


def load_profile(path: str | pathlib.Path) -> Profile:
    """Read a profile from a JSON file.

    A truncated or tampered file raises
    :class:`~repro.core.durable.CorruptStoreError`, an unknown
    ``format_version`` raises
    :class:`~repro.core.durable.FormatVersionError`.
    """
    data = read_json_document(
        path,
        "profile",
        remedy="re-profile the workload with "
        "`repro run WORKLOAD ... --save-profile`",
    )
    return profile_from_dict(data)


class ProfileStore:
    """A directory of named profiles.

    >>> import tempfile
    >>> from tests.core.conftest import make_profile  # doctest: +SKIP
    """

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> pathlib.Path:
        if not name or "/" in name or name.startswith("."):
            raise ConfigurationError(f"invalid profile name '{name}'")
        return self.directory / f"{name}.json"

    def save(self, name: str, profile: Profile) -> pathlib.Path:
        """Persist a profile under ``name``."""
        return save_profile(profile, self._path(name))

    def load(self, name: str) -> Profile:
        """Load a previously saved profile."""
        return load_profile(self._path(name))

    def names(self) -> List[str]:
        """All stored profile names, sorted."""
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def scan(self) -> Dict[str, Profile]:
        """Load every readable profile; quarantine the corrupt ones.

        A directory scan (a service warm-starting its profile set) must
        not die because one file is truncated: each corrupt profile is
        moved aside to ``<name>.json.corrupt-<hash>`` (see
        :func:`~repro.core.durable.quarantine_corrupt`) with a clear
        warning, and the scan continues with the rest.  Quarantined
        files no longer match the store's ``*.json`` glob, so later
        scans are clean.
        """
        profiles: Dict[str, Profile] = {}
        for name in self.names():
            path = self._path(name)
            try:
                profiles[name] = load_profile(path)
            except CorruptStoreError as exc:
                quarantined = quarantine_corrupt(path)
                warnings.warn(
                    f"profile '{name}' is corrupt and was quarantined to "
                    f"'{quarantined}' (scan continues): {exc}",
                    stacklevel=2,
                )
        return profiles

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._path(name).exists()

    def __len__(self) -> int:
        return len(self.names())
