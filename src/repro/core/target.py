"""The configuration a prediction is made for."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError

__all__ = ["PredictionTarget"]


@dataclass(frozen=True)
class PredictionTarget:
    """A (resources, dataset size) pair to predict execution time for.

    Wraps a :class:`~repro.middleware.scheduler.RunConfig` (which carries
    the hatted quantities n̂, ĉ, b̂ and the target clusters) together with
    the dataset size ŝ.
    """

    config: RunConfig
    dataset_bytes: float

    def __post_init__(self) -> None:
        if self.dataset_bytes <= 0:
            raise ConfigurationError("target dataset size must be positive")

    @property
    def data_nodes(self) -> int:
        """n̂ — storage nodes in the target configuration."""
        return self.config.data_nodes

    @property
    def compute_nodes(self) -> int:
        """ĉ — compute nodes in the target configuration."""
        return self.config.compute_nodes

    @property
    def bandwidth(self) -> float:
        """b̂ — repository-to-compute bandwidth in the target."""
        return self.config.bandwidth

    @property
    def label(self) -> str:
        """The paper's 'n-c' notation."""
        return self.config.label

    def with_dataset_bytes(self, dataset_bytes: float) -> "PredictionTarget":
        """A copy predicting for a different dataset size."""
        return replace(self, dataset_bytes=dataset_bytes)

    @classmethod
    def from_run_config(
        cls, config: RunConfig, dataset_bytes: float
    ) -> "PredictionTarget":
        """Convenience constructor mirroring :meth:`Profile.from_run`."""
        return cls(config=config, dataset_bytes=dataset_bytes)
