"""What-if analysis: configuration sensitivity from a single profile.

Resource selection (Section 3) boils down to comparing predicted costs of
candidate configurations.  This module packages the comparisons a grid
operator actually asks for:

- :func:`sweep_configurations` — predicted time over a grid of
  (data nodes, compute nodes) pairs;
- :func:`marginal_speedups` — how much each doubling of compute nodes
  buys (predicted), exposing the knee of the scaling curve;
- :func:`recommend_nodes` — the smallest allocation whose predicted time
  is within ``tolerance`` of the best, i.e. "don't burn nodes for nothing"
  (the flip side of the paper's 8-storage/8-compute vs 4-storage/16-compute
  example in Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.models import PredictionModel
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "ConfigurationForecast",
    "sweep_configurations",
    "marginal_speedups",
    "recommend_nodes",
]


@dataclass(frozen=True)
class ConfigurationForecast:
    """Predicted execution time of one candidate configuration."""

    data_nodes: int
    compute_nodes: int
    predicted_total: float

    @property
    def label(self) -> str:
        return f"{self.data_nodes}-{self.compute_nodes}"

    @property
    def node_cost(self) -> int:
        """Total machines the configuration occupies."""
        return self.data_nodes + self.compute_nodes


def sweep_configurations(
    profile: Profile,
    model: PredictionModel,
    template: RunConfig,
    pairs: Sequence[Tuple[int, int]],
    dataset_bytes: float | None = None,
) -> List[ConfigurationForecast]:
    """Predict every (data nodes, compute nodes) pair in ``pairs``.

    ``template`` supplies the clusters and bandwidth; ``dataset_bytes``
    defaults to the profile's.
    """
    if not pairs:
        raise ConfigurationError("need at least one configuration pair")
    size = dataset_bytes if dataset_bytes is not None else profile.dataset_bytes
    out: List[ConfigurationForecast] = []
    for data_nodes, compute_nodes in pairs:
        config = template.with_nodes(data_nodes, compute_nodes)
        target = PredictionTarget(config=config, dataset_bytes=size)
        out.append(
            ConfigurationForecast(
                data_nodes=data_nodes,
                compute_nodes=compute_nodes,
                predicted_total=model.predict(profile, target).total,
            )
        )
    return out


def marginal_speedups(
    forecasts: Sequence[ConfigurationForecast],
) -> List[Tuple[str, str, float]]:
    """Speedup of each successive forecast over its predecessor.

    Forecasts are taken in the given order (typically increasing compute
    nodes); returns ``(from_label, to_label, speedup)`` triples.
    """
    if len(forecasts) < 2:
        raise ConfigurationError("need at least two forecasts to compare")
    out = []
    for prev, nxt in zip(forecasts, forecasts[1:]):
        if nxt.predicted_total <= 0:
            raise ConfigurationError("predicted totals must be positive")
        out.append(
            (prev.label, nxt.label, prev.predicted_total / nxt.predicted_total)
        )
    return out


def recommend_nodes(
    forecasts: Sequence[ConfigurationForecast],
    tolerance: float = 0.05,
) -> ConfigurationForecast:
    """The cheapest configuration within ``tolerance`` of the fastest.

    "Cheapest" means fewest total machines, ties broken by predicted
    time.  With ``tolerance=0`` this is simply the predicted-fastest
    configuration.
    """
    if not forecasts:
        raise ConfigurationError("no forecasts to recommend from")
    if tolerance < 0:
        raise ConfigurationError("tolerance must be >= 0")
    best = min(f.predicted_total for f in forecasts)
    acceptable = [
        f for f in forecasts if f.predicted_total <= best * (1.0 + tolerance)
    ]
    return min(acceptable, key=lambda f: (f.node_cost, f.predicted_total))
