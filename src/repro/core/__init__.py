"""The paper's contribution: the performance prediction framework.

Given a single **profile run** (one configuration, one dataset size), the
framework predicts the execution time of a FREERIDE-G application on any
other configuration — a different number of storage nodes, compute nodes,
dataset size, network bandwidth, or even a different cluster — by modelling
the three components of ``T_exec = T_disk + T_network + T_compute``
separately (Section 3 of the paper):

- :mod:`repro.core.profile`       — the profile artefact collected from one
  execution.
- :mod:`repro.core.target`        — the configuration being predicted.
- :mod:`repro.core.predictors`    — component predictors (Sections 3.2-3.3).
- :mod:`repro.core.classes`       — the reduction-object-size and
  global-reduction-time application classes (Sections 3.3.1-3.3.2).
- :mod:`repro.core.classify`      — class auto-detection from multiple
  profile runs.
- :mod:`repro.core.models`        — the three nested model levels compared
  in Section 5.1 (*no communication*, *reduction communication*, *global
  reduction*).
- :mod:`repro.core.heterogeneous` — cross-cluster prediction via averaged
  component scaling factors (Section 3.4).
- :mod:`repro.core.selection`     — replica + computing-configuration
  selection (the middleware's resource-selection framework).
- :mod:`repro.core.errors`        — the relative-error metric of Section 5.
- :mod:`repro.core.degraded`      — the degraded-mode extension: expected
  recovery term ``T̂_recover`` for runs under an installed fault schedule.
- :mod:`repro.core.durable`       — crash-safe atomic JSON persistence
  shared by the profile store, result store, and campaign journal.
"""

from repro.core.allocation import (
    GridScheduler,
    Job,
    Placement,
    Schedule,
    max_parallelism_policy,
    predicted_best_policy,
    random_policy,
)
from repro.core.cache_selection import (
    CachePlan,
    CacheSiteOption,
    select_cache_site,
)
from repro.core.classes import (
    GlobalReductionClass,
    ModelClasses,
    ReductionObjectClass,
    estimate_global_reduction_time,
    estimate_object_size,
)
from repro.core.classify import classify_global_reduction, classify_object_size
from repro.core.degraded import (
    DegradedModePredictor,
    DegradedPrediction,
    RecoveryBreakdown,
)
from repro.core.durable import (
    CorruptStoreError,
    FormatVersionError,
    StoreError,
    atomic_write_json,
    atomic_write_text,
)
from repro.core.errors import relative_error
from repro.core.heterogeneous import (
    ComponentScalingFactors,
    CrossClusterPredictor,
    measure_scaling_factors,
)
from repro.core.models import (
    GlobalReductionModel,
    NoCommunicationModel,
    PredictedBreakdown,
    PredictionModel,
    ReductionCommunicationModel,
)
from repro.core.pipeline_model import PipelinedBottleneckModel
from repro.core.profile import Profile
from repro.core.selection import (
    InfeasibleSelectionError,
    RejectedCandidate,
    ResourceSelector,
    SelectionCandidate,
    SelectionOutcome,
)
from repro.core.target import PredictionTarget
from repro.core.whatif import (
    ConfigurationForecast,
    marginal_speedups,
    recommend_nodes,
    sweep_configurations,
)

__all__ = [
    "GridScheduler",
    "Job",
    "Placement",
    "Schedule",
    "max_parallelism_policy",
    "predicted_best_policy",
    "random_policy",
    "CachePlan",
    "CacheSiteOption",
    "select_cache_site",
    "GlobalReductionClass",
    "ModelClasses",
    "ReductionObjectClass",
    "estimate_global_reduction_time",
    "estimate_object_size",
    "classify_global_reduction",
    "classify_object_size",
    "DegradedModePredictor",
    "DegradedPrediction",
    "RecoveryBreakdown",
    "CorruptStoreError",
    "FormatVersionError",
    "StoreError",
    "atomic_write_json",
    "atomic_write_text",
    "relative_error",
    "ComponentScalingFactors",
    "CrossClusterPredictor",
    "measure_scaling_factors",
    "GlobalReductionModel",
    "NoCommunicationModel",
    "PredictedBreakdown",
    "PredictionModel",
    "ReductionCommunicationModel",
    "PipelinedBottleneckModel",
    "Profile",
    "InfeasibleSelectionError",
    "RejectedCandidate",
    "ResourceSelector",
    "SelectionCandidate",
    "SelectionOutcome",
    "PredictionTarget",
    "ConfigurationForecast",
    "marginal_speedups",
    "recommend_nodes",
    "sweep_configurations",
]
