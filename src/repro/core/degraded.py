"""Degraded-mode prediction: what faults cost, before they happen.

The paper's framework predicts ``T_exec`` on healthy resources; grids are
not healthy.  :class:`DegradedModePredictor` extends the additive model
with an **expected recovery term**:

    T̂_exec(faulted) = T̂_exec + T̂_recover

``T̂_recover`` prices exactly the recovery work the fault-tolerant runtime
performs (see DESIGN.md, "Fault model and recovery semantics"):

- transient read **retries** under the injector's retry policy;
- replica **re-fetch** of a crashed data node's unshipped chunk tail;
- a crashed compute node's **lost work**, checkpoint **restore**, role
  re-feed, and the **redistribution** drag of survivors running extra
  reduction roles for the remaining passes;
- reduction-object **checkpoint** writes;
- **degraded links** and externally **slowed nodes** stretching their
  phases.

Each term mirrors the corresponding runtime charge using the target's
hardware specs and the profile-scaled per-pass component times, so the
prediction degrades exactly as the base model does — perfectly when the
target equals the profile configuration, within the base model's error
otherwise.

What-if queries — "predict T_exec if one data node fails at 50% of
retrieval" — are one-line conveniences over :meth:`predict`::

    DegradedModePredictor(model).predict_data_node_crash(
        profile, target, at_fraction=0.5
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.models import PredictedBreakdown, PredictionModel
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.core.units import Seconds
from repro.errors import FaultError
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.faults.specs import (
    ChunkReadError,
    ComputeNodeCrash,
    DataNodeCrash,
    FaultSchedule,
    LinkDegradation,
    SlowNode,
)
from repro.middleware.chunks import map_roles_to_survivors

__all__ = [
    "RecoveryBreakdown",
    "DegradedPrediction",
    "DegradedModePredictor",
]


@dataclass(frozen=True)
class RecoveryBreakdown:
    """The expected recovery term, componentwise (all seconds)."""

    t_retry: Seconds = 0.0
    t_refetch_disk: Seconds = 0.0
    t_refetch_network: Seconds = 0.0
    t_lost_work: Seconds = 0.0
    t_restore: Seconds = 0.0
    t_redistribution: Seconds = 0.0
    t_ckpt: Seconds = 0.0
    t_degraded_links: Seconds = 0.0
    t_slow_nodes: Seconds = 0.0

    @property
    def total(self) -> Seconds:
        """T̂_recover — the sum of every expected recovery cost."""
        return (
            self.t_retry
            + self.t_refetch_disk
            + self.t_refetch_network
            + self.t_lost_work
            + self.t_restore
            + self.t_redistribution
            + self.t_ckpt
            + self.t_degraded_links
            + self.t_slow_nodes
        )


@dataclass(frozen=True)
class DegradedPrediction:
    """A fault-free prediction plus its expected recovery term."""

    base: PredictedBreakdown
    recovery: RecoveryBreakdown

    @property
    def t_recover(self) -> Seconds:
        """The expected recovery term T̂_recover."""
        return self.recovery.total

    @property
    def total(self) -> Seconds:
        """T̂_exec(faulted) = T̂_exec + T̂_recover."""
        return self.base.total + self.recovery.total


class DegradedModePredictor:
    """Predicts faulted execution times from a healthy profile.

    Parameters
    ----------
    model:
        The base :class:`~repro.core.models.PredictionModel` supplying
        the fault-free T̂_exec (typically the Section 5.1 full model).
    policy:
        The retry policy the faulted run will execute under; must match
        the injector's for the retry term to be meaningful.
    """

    def __init__(
        self,
        model: PredictionModel,
        policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> None:
        self.model = model
        self.policy = policy

    # ------------------------------------------------------------------
    # The what-if API
    # ------------------------------------------------------------------

    def predict(
        self,
        profile: Profile,
        target: PredictionTarget,
        schedule: FaultSchedule,
    ) -> DegradedPrediction:
        """Predict the target's execution time under ``schedule``."""
        base = self.model.predict(profile, target)
        ctx = _Context(profile, target, base, self.policy)

        retry = sum(
            ctx.retry_cost(spec) for spec in schedule.of_type(ChunkReadError)
        )
        refetch_disk = refetch_net = 0.0
        for crash in schedule.of_type(DataNodeCrash):
            if crash.pass_index >= ctx.fed_passes:
                continue  # cache-fed pass: repository idle, nothing to recover
            disk, net = ctx.refetch_cost(
                (1.0 - crash.at_fraction) * ctx.chunks_per_data_node,
                (1.0 - crash.at_fraction) * ctx.bytes_per_data_node,
            )
            refetch_disk += disk
            refetch_net += net

        lost = restore = redistribution = t_ckpt = 0.0
        crashes = sorted(
            schedule.of_type(ComputeNodeCrash),
            key=lambda f: (f.pass_index, f.at_fraction, f.compute_node),
        )
        if crashes:
            crashed: list = []
            for crash in crashes:
                if crash.compute_node in crashed:
                    continue
                # Work lost in the aborted attempt, on the pre-crash map.
                lost += crash.at_fraction * ctx.local_phase_time(crashed)
                crashed.append(crash.compute_node)
                if len(crashed) >= target.compute_nodes:
                    raise FaultError(
                        "schedule crashes every compute node in the target; "
                        "no degraded mode exists to predict"
                    )
                restore += ctx.checkpoint_read_time
                disk, net = ctx.refetch_cost(
                    ctx.chunks_per_compute_node, ctx.bytes_per_compute_node
                )
                refetch_disk += disk
                refetch_net += net
                # Survivors drag the re-executed pass and every later pass.
                remaining = max(ctx.num_passes - crash.pass_index, 0)
                drag = ctx.local_phase_time(crashed) - ctx.local_per_pass
                redistribution += remaining * max(drag, 0.0)
        if schedule.checkpoints_enabled:
            t_ckpt = ctx.num_passes * ctx.checkpoint_write_time

        degraded = ctx.link_degradation_cost(schedule)
        slowed = ctx.slow_node_cost(schedule)

        return DegradedPrediction(
            base=base,
            recovery=RecoveryBreakdown(
                t_retry=retry,
                t_refetch_disk=refetch_disk,
                t_refetch_network=refetch_net,
                t_lost_work=lost,
                t_restore=restore,
                t_redistribution=redistribution,
                t_ckpt=t_ckpt,
                t_degraded_links=degraded,
                t_slow_nodes=slowed,
            ),
        )

    def predict_data_node_crash(
        self,
        profile: Profile,
        target: PredictionTarget,
        data_node: int = 0,
        at_fraction: float = 0.5,
        pass_index: int = 0,
    ) -> DegradedPrediction:
        """What-if: one data node fails at ``at_fraction`` of retrieval."""
        return self.predict(
            profile,
            target,
            FaultSchedule(
                [DataNodeCrash(pass_index, data_node, at_fraction)]
            ),
        )

    def predict_compute_node_crash(
        self,
        profile: Profile,
        target: PredictionTarget,
        compute_node: int = 0,
        at_fraction: float = 0.5,
        pass_index: int = 0,
    ) -> DegradedPrediction:
        """What-if: one compute node fails mid-pass."""
        return self.predict(
            profile,
            target,
            FaultSchedule(
                [ComputeNodeCrash(pass_index, compute_node, at_fraction)]
            ),
        )


class _Context:
    """Profile-scaled per-pass quantities and hardware pricing helpers."""

    def __init__(
        self,
        profile: Profile,
        target: PredictionTarget,
        base: PredictedBreakdown,
        policy: RetryPolicy,
    ) -> None:
        self.profile = profile
        self.target = target
        self.base = base
        self.policy = policy

        meta = profile.metadata or {}
        self.num_passes = max(profile.gather_rounds, 1)
        self.fed_passes = max(int(meta.get("network_fed_passes", 1)), 1)
        # Chunk count scales with dataset size (fixed nominal chunk size).
        profile_chunks = meta.get("dataset_chunks")
        if profile_chunks:
            self.num_chunks: Optional[float] = (
                float(profile_chunks)
                * target.dataset_bytes
                / profile.dataset_bytes
            )
        else:
            self.num_chunks = None  # per-chunk overheads dropped

        self.disk_per_fed = base.t_disk / self.fed_passes
        self.net_per_fed = base.t_network / self.fed_passes
        self.local_per_pass = (
            max(base.t_compute - base.t_ro - base.t_g, 0.0) / self.num_passes
        )

        storage = target.config.storage_cluster
        self._disk_spec = storage.node.disk
        self._startup_s = storage.node_startup_s
        nic = storage.node.nic
        self._link_latency_s = nic.latency_s
        self._link_bw = min(nic.bw, target.bandwidth)
        self._contended_bw = storage.effective_disk_bw(target.data_nodes)
        self._cache_disk = target.config.compute_cluster.effective_cache_disk
        self._object_bytes = profile.max_object_bytes

    # ---- dataset geometry on the target ------------------------------

    @property
    def chunks_per_data_node(self) -> float:
        if self.num_chunks is None:
            return 0.0
        return self.num_chunks / self.target.data_nodes

    @property
    def bytes_per_data_node(self) -> float:
        return self.target.dataset_bytes / self.target.data_nodes

    @property
    def chunks_per_compute_node(self) -> float:
        if self.num_chunks is None:
            return 0.0
        return self.num_chunks / self.target.compute_nodes

    @property
    def bytes_per_compute_node(self) -> float:
        return self.target.dataset_bytes / self.target.compute_nodes

    @property
    def chunk_bytes(self) -> float:
        if not self.num_chunks:
            return 0.0
        return self.target.dataset_bytes / self.num_chunks

    # ---- hardware pricing (mirrors DataServer.refetch_cost) ----------

    def refetch_cost(
        self, chunks: float, nbytes: float, link_factor: float = 1.0
    ) -> tuple:
        """(disk, network) expected cost of re-serving a chunk set."""
        if nbytes <= 0.0:
            return 0.0, 0.0
        disk = (
            self._startup_s
            + chunks * self._disk_spec.seek_s
            + nbytes / self._disk_spec.stream_bw
        )
        network = (
            chunks * self._link_latency_s + nbytes / self._link_bw
        ) * link_factor
        return disk, network

    @property
    def contended_chunk_read_s(self) -> float:
        """Expected read time of one chunk under backplane contention."""
        return self._disk_spec.seek_s + self.chunk_bytes / self._contended_bw

    @property
    def checkpoint_write_time(self) -> float:
        return self._object_bytes / self._cache_disk.stream_bw

    @property
    def checkpoint_read_time(self) -> float:
        return (
            self._cache_disk.seek_s
            + self._object_bytes / self._cache_disk.stream_bw
        )

    # ---- per-fault expected costs ------------------------------------

    def retry_cost(self, spec: ChunkReadError) -> float:
        """Expected retry time a ChunkReadError spec charges into t_disk."""
        read = self.contended_chunk_read_s
        total = 0.0
        if spec.failures:
            for count in spec.failures.values():
                bounded = min(count, self.policy.max_failures)
                total += self.policy.retry_cost_s(bounded, read)
        if spec.rate > 0.0 and self.num_chunks:
            # The injector draws a geometric failure count per chunk,
            # capped at the retry budget: P(>= i failures) = rate**i.
            per_chunk = 0.0
            for i in range(1, self.policy.max_failures + 1):
                p_at_least_i = spec.rate**i
                per_chunk += p_at_least_i * (
                    self.policy.attempt_cost_s(read)
                    + self.policy.backoff_s(i)
                )
            # The retrieval phase ends at the slowest data node; retries
            # land on every affected node alike, so the phase stretches
            # by one node's share per affected fed pass.
            affected_passes = (
                1 if spec.pass_index is not None else self.fed_passes
            )
            total += (
                affected_passes * self.chunks_per_data_node * per_chunk
            )
        return total

    def local_phase_time(self, crashed: list) -> float:
        """Local-phase time with ``crashed`` nodes' roles migrated."""
        if not crashed:
            return self.local_per_pass
        roles = map_roles_to_survivors(self.target.compute_nodes, crashed)
        heaviest = max(len(r) for r in roles.values())
        return heaviest * self.local_per_pass

    def link_degradation_cost(self, schedule: FaultSchedule) -> float:
        """Expected stretch of the communication phase, degraded links."""
        specs = schedule.of_type(LinkDegradation)
        if not specs:
            return 0.0
        total = 0.0
        for pass_index in range(self.fed_passes):
            worst = 1.0
            for node in range(self.target.data_nodes):
                factor = 1.0
                for spec in specs:
                    if spec.data_node == node and spec.active(pass_index):
                        factor *= spec.factor
                worst = max(worst, factor)
            total += (worst - 1.0) * self.net_per_fed
        return total

    def slow_node_cost(self, schedule: FaultSchedule) -> float:
        """Expected stretch of the local phase from externally slow nodes."""
        specs = schedule.of_type(SlowNode)
        if not specs:
            return 0.0
        total = 0.0
        for pass_index in range(self.num_passes):
            worst = 1.0
            for node in range(self.target.compute_nodes):
                factor = 1.0
                for spec in specs:
                    if spec.compute_node == node and spec.active(pass_index):
                        factor *= spec.factor
                worst = max(worst, factor)
            total += (worst - 1.0) * self.local_per_pass
        return total
