"""The evaluation metric of Section 5, plus the shared error base.

``E = |T_exact - T_predicted| / T_exact`` — prediction error relative to
the actual execution time.

:class:`~repro.errors.ReproError` is re-exported here so prediction-core
callers can catch framework errors uniformly without importing from the
simulation substrate; every exception this package raises (including
:class:`~repro.simgrid.errors.ConfigurationError` below and the
:class:`~repro.errors.FaultError` branch) derives from it.
"""

from __future__ import annotations

from repro.errors import FaultError, RecoveryExhaustedError, ReproError
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "relative_error",
    "ReproError",
    "FaultError",
    "RecoveryExhaustedError",
]


def relative_error(actual: float, predicted: float) -> float:
    """Relative prediction error (a fraction; multiply by 100 for %).

    >>> relative_error(10.0, 9.5)
    0.05
    """
    if actual <= 0:
        raise ConfigurationError("actual execution time must be positive")
    if predicted < 0:
        raise ConfigurationError("predicted execution time must be >= 0")
    return abs(actual - predicted) / actual
