"""The evaluation metric of Section 5.

``E = |T_exact - T_predicted| / T_exact`` — prediction error relative to
the actual execution time.
"""

from __future__ import annotations

from repro.simgrid.errors import ConfigurationError

__all__ = ["relative_error"]


def relative_error(actual: float, predicted: float) -> float:
    """Relative prediction error (a fraction; multiply by 100 for %).

    >>> relative_error(10.0, 9.5)
    0.05
    """
    if actual <= 0:
        raise ConfigurationError("actual execution time must be positive")
    if predicted < 0:
        raise ConfigurationError("predicted execution time must be >= 0")
    return abs(actual - predicted) / actual
