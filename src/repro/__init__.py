"""Reproduction of 'A Performance Prediction Framework for Grid-Based
Data Mining Applications' (Glimcher & Agrawal, IPDPS 2007).

Subpackages: :mod:`repro.simgrid` (simulation substrate),
:mod:`repro.middleware` (FREERIDE-G), :mod:`repro.apps` (workload
kernels), :mod:`repro.core` (the prediction framework),
:mod:`repro.faults` (fault injection and tolerance),
:mod:`repro.analysis` and :mod:`repro.workloads` (evaluation harness).

The root exception hierarchy is exported here for uniform catching.
"""

from repro.errors import FaultError, RecoveryExhaustedError, ReproError

__all__ = ["ReproError", "FaultError", "RecoveryExhaustedError"]
