"""JSON-friendly (de)serialization of hardware specifications.

Profiles reference the clusters they were collected on; persisting a
profile (see :mod:`repro.core.store`) therefore needs a faithful
round-trip for :class:`~repro.simgrid.hardware.ClusterSpec` and its
nested specs.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import (
    ClusterSpec,
    CPUSpec,
    DiskSpec,
    NICSpec,
    NodeSpec,
    OpCategory,
)

__all__ = ["cluster_to_dict", "cluster_from_dict"]


def _disk_to_dict(disk: DiskSpec) -> Dict[str, float]:
    return {"seek_s": disk.seek_s, "stream_bw": disk.stream_bw}


def _disk_from_dict(data: Dict[str, Any]) -> DiskSpec:
    return DiskSpec(seek_s=float(data["seek_s"]), stream_bw=float(data["stream_bw"]))


def cluster_to_dict(cluster: ClusterSpec) -> Dict[str, Any]:
    """A plain-dict snapshot of a cluster spec (JSON serializable)."""
    node = cluster.node
    return {
        "name": cluster.name,
        "num_nodes": cluster.num_nodes,
        "cpu": {
            "name": node.cpu.name,
            "rates": {cat.value: rate for cat, rate in node.cpu.rates.items()},
        },
        "disk": _disk_to_dict(node.disk),
        "nic": {"latency_s": node.nic.latency_s, "bw": node.nic.bw},
        "repository_backplane_bw": cluster.repository_backplane_bw,
        "node_startup_s": cluster.node_startup_s,
        "compute_pass_startup_s": cluster.compute_pass_startup_s,
        "chunk_dispatch_overhead_s": cluster.chunk_dispatch_overhead_s,
        "chunk_receive_overhead_s": cluster.chunk_receive_overhead_s,
        "intra_latency_s": cluster.intra_latency_s,
        "intra_bw": cluster.intra_bw,
        "gather_deserialize_s": cluster.gather_deserialize_s,
        "cache_disk": (
            _disk_to_dict(cluster.cache_disk)
            if cluster.cache_disk is not None
            else None
        ),
        "smp_width": cluster.smp_width,
        "smp_memory_contention": cluster.smp_memory_contention,
    }


def cluster_from_dict(data: Dict[str, Any]) -> ClusterSpec:
    """Rebuild a cluster spec from :func:`cluster_to_dict` output."""
    try:
        cpu = CPUSpec(
            name=str(data["cpu"]["name"]),
            rates={
                OpCategory(cat): float(rate)
                for cat, rate in data["cpu"]["rates"].items()
            },
        )
        node = NodeSpec(
            cpu=cpu,
            disk=_disk_from_dict(data["disk"]),
            nic=NICSpec(
                latency_s=float(data["nic"]["latency_s"]),
                bw=float(data["nic"]["bw"]),
            ),
        )
        cache_disk = data.get("cache_disk")
        return ClusterSpec(
            name=str(data["name"]),
            node=node,
            num_nodes=int(data["num_nodes"]),
            repository_backplane_bw=float(data["repository_backplane_bw"]),
            node_startup_s=float(data.get("node_startup_s", 0.0)),
            compute_pass_startup_s=float(data.get("compute_pass_startup_s", 0.0)),
            chunk_dispatch_overhead_s=float(
                data.get("chunk_dispatch_overhead_s", 0.0)
            ),
            chunk_receive_overhead_s=float(
                data.get("chunk_receive_overhead_s", 0.0)
            ),
            intra_latency_s=float(data.get("intra_latency_s", 0.0)),
            intra_bw=float(data.get("intra_bw", 1.0e12)),
            gather_deserialize_s=float(data.get("gather_deserialize_s", 0.0)),
            cache_disk=_disk_from_dict(cache_disk) if cache_disk else None,
            smp_width=int(data.get("smp_width", 1)),
            smp_memory_contention=float(data.get("smp_memory_contention", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed cluster spec: {exc}") from exc
