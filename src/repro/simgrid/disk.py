"""Disk service models for data repositories and compute-node caches.

A repository hosting a dataset across ``n`` data nodes retrieves chunks in
parallel, but all data nodes share a storage backplane of finite aggregate
bandwidth.  Per the paper's observation (Section 5.2: defect detection
"scales linearly when number of data nodes is 2 or 4, but only demonstrates
a sub-linear speedup once the number of data nodes is increased beyond
that"), the per-node effective bandwidth is
``min(disk_stream_bw, backplane_bw / n)``.

The prediction framework (which assumes retrieval time is inversely
proportional to ``n``) does *not* know about the backplane — that gap is one
of the genuine sources of prediction error this reproduction measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hotpath import hot
from repro.simgrid.engine import FIFOServer
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import ClusterSpec, DiskSpec

__all__ = ["DiskModel", "RepositoryDiskSystem"]


@dataclass
class DiskModel:
    """Service-time model for a single disk under a fixed contention level."""

    spec: DiskSpec
    effective_bw: float

    def __post_init__(self) -> None:
        if self.effective_bw <= 0:
            raise ConfigurationError("effective disk bandwidth must be > 0")

    def chunk_read_time(self, nbytes: float) -> float:
        """Seconds to read one chunk (seek + contended stream)."""
        return self.spec.read_time(nbytes, effective_bw=self.effective_bw)

    @hot
    def batch_read_time(self, chunk_sizes: Sequence[float]) -> float:
        """Seconds to read a batch of chunks back-to-back on this disk.

        Inlines :meth:`DiskSpec.read_time` with the contended bandwidth
        and seek latency hoisted out of the loop (REP303 burn-down); the
        per-chunk operands and addition order are unchanged, so the sum
        is bit-identical to the per-call version.
        """
        spec = self.spec
        bw = min(spec.stream_bw, self.effective_bw)
        seek = spec.seek_s
        if bw <= 0:
            raise ConfigurationError("effective disk bandwidth must be > 0")
        total = 0.0
        for size in chunk_sizes:
            if size < 0:
                raise ConfigurationError(
                    "cannot read a negative number of bytes"
                )
            total += seek + size / bw
        return total


class RepositoryDiskSystem:
    """The ``n`` parallel data-node disks of one repository.

    Retrieval of a chunk list partitioned over data nodes proceeds in
    parallel across nodes; each node's disk is an exclusive FIFO resource.
    The phase completes when the slowest node finishes — returned by
    :meth:`retrieval_time`.
    """

    def __init__(self, cluster: ClusterSpec, num_data_nodes: int) -> None:
        cluster.require_nodes(num_data_nodes)
        self.cluster = cluster
        self.num_data_nodes = num_data_nodes
        bw = cluster.effective_disk_bw(num_data_nodes)
        self._models = [
            DiskModel(cluster.node.disk, bw) for _ in range(num_data_nodes)
        ]
        self._servers = [FIFOServer(f"disk{i}") for i in range(num_data_nodes)]

    @property
    def per_node_effective_bw(self) -> float:
        """Contended per-node streaming bandwidth."""
        return self._models[0].effective_bw

    def node_read_time(self, node: int, chunk_sizes: Sequence[float]) -> float:
        """Total read time for the chunk batch assigned to one data node."""
        if not 0 <= node < self.num_data_nodes:
            raise ConfigurationError(
                f"data node index {node} out of range "
                f"(0..{self.num_data_nodes - 1})"
            )
        if not chunk_sizes:
            return 0.0
        return self.cluster.node_startup_s + self._models[node].batch_read_time(
            chunk_sizes
        )

    def retrieval_time(
        self, per_node_chunk_sizes: Sequence[Sequence[float]]
    ) -> float:
        """Phase time: max over data nodes of each node's batch read time."""
        if len(per_node_chunk_sizes) != self.num_data_nodes:
            raise ConfigurationError(
                f"expected chunk batches for {self.num_data_nodes} data nodes, "
                f"got {len(per_node_chunk_sizes)}"
            )
        return max(
            self.node_read_time(i, sizes)
            for i, sizes in enumerate(per_node_chunk_sizes)
        )

    def node_finish_times(
        self, per_node_chunk_sizes: Sequence[Sequence[float]]
    ) -> list[float]:
        """Per-data-node completion times (for pipelined hand-off analysis)."""
        return [
            self.node_read_time(i, sizes)
            for i, sizes in enumerate(per_node_chunk_sizes)
        ]
