"""Exception hierarchy for the simulation substrate.

All simulation errors derive from :class:`repro.errors.ReproError` via
:class:`SimulationError`, so framework users can catch every repro failure
— simulation, middleware, or fault-tolerance — with one except clause.
"""

from repro.errors import ReproError


class SimulationError(ReproError):
    """Base class for all errors raised by :mod:`repro.simgrid`."""


class ConfigurationError(SimulationError):
    """A hardware or run configuration is inconsistent or out of range.

    Raised, for example, when a cluster is asked for more nodes than it has,
    when a negative bandwidth is specified, or when the middleware is asked
    to run with more data nodes than compute nodes (the paper's M >= N
    constraint, Section 2.1).
    """


class TopologyError(SimulationError):
    """A grid-topology query cannot be satisfied.

    Raised when two sites are not connected, when a site name is unknown, or
    when a replica is placed on a site that is not a data repository.
    """


class EngineError(SimulationError):
    """The discrete-event engine was used inconsistently.

    Raised for scheduling events in the past or running a stopped simulator.
    """
