"""Network transfer models.

Three pieces live here:

- :class:`LinkModel` — latency + bandwidth cost of a point-to-point link,
  used for repository-to-compute chunk shipping.  The available bandwidth
  between storage and compute nodes is a *parameter* (the paper varies it
  synthetically in Section 5.3), so the middleware passes the experiment's
  bandwidth in rather than reading a fixed hardware value.
- :func:`maxmin_fair_share` — progressive-filling allocation for flows that
  share a capacity, used to model concurrent chunk streams sharing the
  repository egress.
- :class:`CommCostModel` — the experimentally determined ``(w, l)`` of
  Section 3.3.1 ("w and l are experimentally determined bandwidth and
  latency for the target processing configuration"), obtained by fitting a
  line to a gather microbenchmark run on the simulated cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hotpath import hot
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import ClusterSpec

__all__ = ["LinkModel", "maxmin_fair_share", "fit_linear_cost", "CommCostModel"]


@dataclass(frozen=True)
class LinkModel:
    """A point-to-point link with per-message latency and bandwidth."""

    latency_s: float
    bw: float  # bytes per second

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError("link latency must be >= 0")
        if self.bw <= 0:
            raise ConfigurationError("link bandwidth must be > 0")

    @hot
    def message_time(self, nbytes: float) -> float:
        """Seconds to transfer one message."""
        if nbytes < 0:
            raise ConfigurationError("cannot transfer a negative size")
        return self.latency_s + nbytes / self.bw

    @hot
    def stream_time(self, chunk_sizes: Sequence[float]) -> float:
        """Seconds to push a sequence of chunks back-to-back.

        Inlines :meth:`message_time` with the frozen-dataclass attribute
        loads hoisted out of the loop (REP303 burn-down); the additions
        happen in the same order with the same operands, so the result
        is bit-identical to summing per-message times.
        """
        latency = self.latency_s
        bw = self.bw
        total = 0.0
        for size in chunk_sizes:
            if size < 0:
                raise ConfigurationError("cannot transfer a negative size")
            total += latency + size / bw
        return total


def maxmin_fair_share(
    demands: Sequence[float], capacity: float
) -> list[float]:
    """Max-min fair allocation of ``capacity`` among flows with rate caps.

    Classic progressive filling: repeatedly give every unfrozen flow an
    equal share; a flow whose demand is below its share is frozen at its
    demand and the slack is redistributed.

    >>> maxmin_fair_share([10.0, 10.0], 30.0)
    [10.0, 10.0]
    >>> maxmin_fair_share([5.0, 50.0], 30.0)
    [5.0, 25.0]
    >>> maxmin_fair_share([50.0, 50.0, 50.0], 30.0)
    [10.0, 10.0, 10.0]
    """
    if capacity <= 0:
        raise ConfigurationError("shared capacity must be > 0")
    if any(d < 0 for d in demands):
        raise ConfigurationError("flow demands must be >= 0")
    n = len(demands)
    alloc = [0.0] * n
    active = [i for i in range(n) if demands[i] > 0]
    remaining = float(capacity)
    while active:
        share = remaining / len(active)
        bounded = [i for i in active if demands[i] <= share]
        if not bounded:
            for i in active:
                alloc[i] = share
            return alloc
        for i in bounded:
            alloc[i] = demands[i]
            remaining -= demands[i]
        active = [i for i in active if i not in set(bounded)]
    return alloc


def fit_linear_cost(
    sizes: Sequence[float], times: Sequence[float]
) -> tuple[float, float]:
    """Least-squares fit ``time = w * size + l``; returns ``(w, l)``.

    Used to turn microbenchmark (size, time) samples into the paper's
    per-byte cost ``w`` and latency ``l``.
    """
    if len(sizes) != len(times):
        raise ConfigurationError("sizes and times must have equal length")
    if len(sizes) < 2:
        raise ConfigurationError("need at least two samples to fit a line")
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(times, dtype=float)
    if np.ptp(x) <= 0.0:
        raise ConfigurationError("samples must span at least two distinct sizes")
    design = np.stack([x, np.ones_like(x)], axis=1)
    (w, l), *_ = np.linalg.lstsq(design, y, rcond=None)
    return float(w), float(l)


@dataclass(frozen=True)
class CommCostModel:
    """Fitted reduction-object message cost: ``time = w * bytes + l``.

    ``w`` and ``l`` correspond exactly to Section 3.3.1's experimentally
    determined bandwidth and latency for the target processing
    configuration.
    """

    w: float  # seconds per byte
    l: float  # seconds per message

    def __post_init__(self) -> None:
        if self.w < 0 or self.l < 0:
            raise ConfigurationError("fitted comm costs must be >= 0")

    def message_time(self, nbytes: float) -> float:
        """Predicted time for a single reduction-object message."""
        if nbytes < 0:
            raise ConfigurationError("cannot transfer a negative size")
        return self.w * nbytes + self.l

    def gather_time(self, num_compute_nodes: int, object_bytes: float) -> float:
        """Predicted time to gather one object from each non-master node.

        The FREERIDE-G master receives ``c - 1`` reduction objects serially
        (the serialized component of parallel processing time, Section
        3.3.1), so the gather is ``(c - 1)`` messages.
        """
        if num_compute_nodes < 1:
            raise ConfigurationError("need at least one compute node")
        return (num_compute_nodes - 1) * self.message_time(object_bytes)

    def tree_gather_time(
        self, num_compute_nodes: int, object_bytes: float
    ) -> float:
        """Predicted time for a binomial-tree gather (ablation).

        ``ceil(log2 c)`` rounds of parallel pairwise messages; constant
        object size assumed (for linear-class applications the merged
        objects grow along the tree, which this first-order formula
        ignores).
        """
        if num_compute_nodes < 1:
            raise ConfigurationError("need at least one compute node")
        rounds = math.ceil(math.log2(num_compute_nodes)) if num_compute_nodes > 1 else 0
        return rounds * self.message_time(object_bytes)

    @classmethod
    def fit_for_cluster(
        cls,
        cluster: ClusterSpec,
        probe_sizes: Sequence[float] = (1024.0, 8192.0, 65536.0, 524288.0),
    ) -> "CommCostModel":
        """Run the gather microbenchmark on ``cluster`` and fit ``(w, l)``.

        The microbenchmark measures single reduction-object messages on the
        intra-cluster interconnect, mirroring how a FREERIDE-G deployment
        would calibrate ``w`` and ``l`` once per cluster.
        """
        times = [cluster.gather_message_time(size) for size in probe_sizes]
        w, l = fit_linear_cost(probe_sizes, times)
        return cls(w=max(w, 0.0), l=max(l, 0.0))
