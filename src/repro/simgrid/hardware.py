"""Hardware specifications and the operation-category compute cost model.

The prediction framework of the paper works on *component times* only; what
creates realistic component times here is a small first-principles cost
model:

- Compute time is charged from **operation vectors**: every application
  kernel reports how many floating-point, memory and branch operations it
  performed (counted from the real NumPy computation it just ran), and the
  CPU spec converts that vector into seconds through per-category rates.
  Two clusters with different per-category rates therefore speed up
  different applications by *different* factors — exactly the effect that
  makes the paper's averaged cross-cluster scaling factor (Section 3.4) an
  approximation (their measured compute factors ranged 0.233-0.370).
- Disk time is ``seek + bytes / stream_bw`` per chunk (see
  :mod:`repro.simgrid.disk` for backplane contention).
- Network time is ``latency + bytes / bw`` per message.

All values are in *model units* — a uniformly scaled-down replica of the
paper's 2007-era testbed (see the package docstring).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping

from repro.hotpath import hot
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "OpCategory",
    "OpVector",
    "CPUSpec",
    "DiskSpec",
    "NICSpec",
    "NodeSpec",
    "ClusterSpec",
]


class OpCategory(str, enum.Enum):
    """Categories of abstract machine operations charged by kernels."""

    FLOP = "flop"
    MEM = "mem"
    BRANCH = "branch"


@dataclass(frozen=True, slots=True)
class OpVector:
    """A count of operations per category.

    Supports addition and scalar multiplication so kernels can accumulate
    counts chunk by chunk:

    >>> a = OpVector(flop=10, mem=4)
    >>> b = OpVector(flop=5, branch=2)
    >>> (a + b).flop
    15.0
    >>> (a * 2).mem
    8.0
    """

    flop: float = 0.0
    mem: float = 0.0
    branch: float = 0.0

    @hot
    def __post_init__(self) -> None:
        for name in ("flop", "mem", "branch"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"negative op count for {name}")

    @hot
    def __add__(self, other: "OpVector") -> "OpVector":
        return OpVector(
            self.flop + other.flop,
            self.mem + other.mem,
            self.branch + other.branch,
        )

    def __mul__(self, factor: float) -> "OpVector":
        return OpVector(self.flop * factor, self.mem * factor, self.branch * factor)

    __rmul__ = __mul__

    @property
    def total(self) -> float:
        """Total operation count across categories."""
        return self.flop + self.mem + self.branch

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (useful for traces and serialization)."""
        return {"flop": self.flop, "mem": self.mem, "branch": self.branch}

    @staticmethod
    @hot
    def zero() -> "OpVector":
        """The additive identity."""
        return OpVector()

    @staticmethod
    def sum(vectors: Iterable["OpVector"]) -> "OpVector":
        """Sum an iterable of op vectors."""
        out = OpVector()
        for v in vectors:
            out = out + v
        return out


@dataclass(frozen=True)
class CPUSpec:
    """Per-category operation rates (operations per second, model units)."""

    name: str
    rates: Mapping[OpCategory, float]

    def __post_init__(self) -> None:
        for cat in OpCategory:
            rate = self.rates.get(cat)
            if rate is None or rate <= 0:
                raise ConfigurationError(
                    f"CPU '{self.name}' needs a positive rate for {cat.value}"
                )

    @hot
    def compute_time(self, ops: OpVector) -> float:
        """Seconds to execute an operation vector on one core."""
        return (
            ops.flop / self.rates[OpCategory.FLOP]
            + ops.mem / self.rates[OpCategory.MEM]
            + ops.branch / self.rates[OpCategory.BRANCH]
        )

    def speedup_over(self, other: "CPUSpec", ops: OpVector) -> float:
        """Ratio time(other)/time(self) for a given operation mix.

        This is the *application-specific* compute scaling factor whose
        variation across applications the paper reports in Section 5.4.
        """
        mine = self.compute_time(ops)
        if mine <= 0.0:
            raise ConfigurationError("cannot compute speedup for an empty op vector")
        return other.compute_time(ops) / mine


@dataclass(frozen=True)
class DiskSpec:
    """A repository or local disk: per-chunk seek latency + streaming rate."""

    seek_s: float
    stream_bw: float  # bytes per second

    def __post_init__(self) -> None:
        if self.seek_s < 0:
            raise ConfigurationError("disk seek latency must be >= 0")
        if self.stream_bw <= 0:
            raise ConfigurationError("disk streaming bandwidth must be > 0")

    def read_time(self, nbytes: float, effective_bw: float | None = None) -> float:
        """Seconds to read one chunk of ``nbytes`` (optionally contended)."""
        bw = self.stream_bw if effective_bw is None else min(self.stream_bw, effective_bw)
        if nbytes < 0:
            raise ConfigurationError("cannot read a negative number of bytes")
        if bw <= 0:
            raise ConfigurationError("effective disk bandwidth must be > 0")
        return self.seek_s + nbytes / bw


@dataclass(frozen=True)
class NICSpec:
    """A network interface: per-message latency + bandwidth."""

    latency_s: float
    bw: float  # bytes per second

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError("NIC latency must be >= 0")
        if self.bw <= 0:
            raise ConfigurationError("NIC bandwidth must be > 0")

    def send_time(self, nbytes: float, effective_bw: float | None = None) -> float:
        """Seconds to push one message of ``nbytes`` through this NIC."""
        bw = self.bw if effective_bw is None else min(self.bw, effective_bw)
        if nbytes < 0:
            raise ConfigurationError("cannot send a negative number of bytes")
        return self.latency_s + nbytes / bw


@dataclass(frozen=True)
class NodeSpec:
    """One machine: CPU + local disk + NIC."""

    cpu: CPUSpec
    disk: DiskSpec
    nic: NICSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster, plus the non-ideality knobs of the simulator.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"pentium-myrinet"``).
    node:
        Spec of every machine in the cluster (clusters are homogeneous,
        matching the paper's testbeds).
    num_nodes:
        Machines available.
    repository_backplane_bw:
        Aggregate bandwidth (bytes/s) of the storage backplane shared by all
        data nodes of a repository hosted on this cluster.  When ``n`` data
        nodes retrieve concurrently each sees
        ``min(disk.stream_bw, backplane/n)`` — the source of the sub-linear
        retrieval scaling the paper observes at 8 data nodes.
    node_startup_s:
        Fixed per-node phase start-up cost (process launch, handshakes)
        charged once per retrieval phase on each data node.
    compute_pass_startup_s:
        Fixed per-compute-node cost charged at the start of every pass
        (buffer setup, synchronization).  Because it does not scale with
        dataset size, it makes compute time slightly *affine* in ``s`` —
        the predictor's strict proportionality assumption then
        overestimates small-``c`` targets when predicting a larger dataset
        from a smaller profile, which is the error shape of Figures 7-8 of
        the paper (worst at equal node counts, recovering as compute nodes
        scale up).
    chunk_dispatch_overhead_s:
        Per-chunk bookkeeping at a compute node (buffer management, API
        upcall) charged in the compute phase.
    chunk_receive_overhead_s:
        Per-chunk receive/demultiplex cost at a compute node.  It sits on
        the critical path only to the extent the incoming stream saturates
        the node, i.e. scaled by ``n / c`` (data nodes per compute node);
        with more compute nodes than data nodes, arrivals have gaps that
        hide this cost.  This unmodelled term is what makes configurations
        with *equal numbers of data and compute nodes* the hardest to
        predict — the error shape in Figures 7-10 of the paper.
    intra_latency_s / intra_bw:
        Latency and bandwidth of the intra-cluster interconnect used to
        gather reduction objects (Section 3.3.1's ``l`` and ``1/w``).
    gather_deserialize_s:
        Per-reduction-object handling cost (deserialization, API upcall)
        paid by the master during the global reduction for *every* object
        it folds in — its own included.  Because the cost is symmetric in
        the object count, ``T_g`` on one node is exactly the per-object
        cost, which is what makes the paper's linear-constant scaling of
        ``T_g`` with compute nodes hold for the accumulator applications.
    cache_disk:
        Disk model for the compute-node chunk cache.  Local cached reads
        are mostly served from the OS buffer cache, so this is much faster
        than the repository disks; defaults to the node disk when unset.
    smp_width:
        Processors per machine.  FREERIDE-G executes "on distributed
        memory and shared memory systems, as well as on cluster of SMPs,
        starting from a common high-level interface" (Section 1); a run
        may use up to this many processes per compute node.
    smp_memory_contention:
        Per-extra-process slowdown of the shared memory bus: with ``p``
        processes a node's effective per-process rate is divided by
        ``1 + contention * (p - 1)``.
    """

    name: str
    node: NodeSpec
    num_nodes: int
    repository_backplane_bw: float
    node_startup_s: float = 0.0
    compute_pass_startup_s: float = 0.0
    chunk_dispatch_overhead_s: float = 0.0
    chunk_receive_overhead_s: float = 0.0
    intra_latency_s: float = 0.0
    intra_bw: float = 1.0e12
    gather_deserialize_s: float = 0.0
    cache_disk: DiskSpec | None = None
    smp_width: int = 1
    smp_memory_contention: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("a cluster needs at least one node")
        if self.repository_backplane_bw <= 0:
            raise ConfigurationError("backplane bandwidth must be > 0")
        if self.intra_bw <= 0:
            raise ConfigurationError("intra-cluster bandwidth must be > 0")
        for attr in (
            "node_startup_s",
            "compute_pass_startup_s",
            "chunk_dispatch_overhead_s",
            "chunk_receive_overhead_s",
            "intra_latency_s",
            "gather_deserialize_s",
        ):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{attr} must be >= 0")

        if self.smp_width < 1:
            raise ConfigurationError("smp_width must be >= 1")
        if self.smp_memory_contention < 0:
            raise ConfigurationError("smp_memory_contention must be >= 0")

    @property
    def effective_cache_disk(self) -> DiskSpec:
        """The disk model used for compute-node chunk caching."""
        return self.cache_disk if self.cache_disk is not None else self.node.disk

    def smp_slowdown(self, processes: int) -> float:
        """Memory-bus contention factor for ``processes`` per node."""
        if not 1 <= processes <= self.smp_width:
            raise ConfigurationError(
                f"cluster '{self.name}' supports 1..{self.smp_width} "
                f"processes per node, {processes} requested"
            )
        return 1.0 + self.smp_memory_contention * (processes - 1)

    def require_nodes(self, count: int) -> None:
        """Validate that ``count`` nodes can be allocated from this cluster."""
        if count <= 0:
            raise ConfigurationError("node count must be positive")
        if count > self.num_nodes:
            raise ConfigurationError(
                f"cluster '{self.name}' has {self.num_nodes} nodes, "
                f"{count} requested"
            )

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        """A copy of this spec with a different machine count."""
        return replace(self, num_nodes=num_nodes)

    def effective_disk_bw(self, active_data_nodes: int) -> float:
        """Per-node disk bandwidth when ``n`` data nodes retrieve at once."""
        if active_data_nodes <= 0:
            raise ConfigurationError("active data node count must be positive")
        share = self.repository_backplane_bw / active_data_nodes
        return min(self.node.disk.stream_bw, share)

    def gather_message_time(self, nbytes: float) -> float:
        """Time for one reduction-object message on the intra-cluster link."""
        if nbytes < 0:
            raise ConfigurationError("cannot send a negative number of bytes")
        return self.intra_latency_s + nbytes / self.intra_bw
