"""Discrete-event grid simulation substrate.

This package replaces the physical testbed used in the paper (two clusters —
700 MHz Pentium machines on Myrinet and 2.4 GHz Opteron 250 machines on
InfiniBand — plus a data repository) with a deterministic, laptop-scale
simulator.  Everything the FREERIDE-G middleware needs from hardware is
modelled here:

- :mod:`repro.simgrid.engine`    — virtual clock, event queue, FIFO servers.
- :mod:`repro.simgrid.hardware`  — CPU / disk / NIC / node / cluster specs and
  the operation-category cost model used to charge compute time.
- :mod:`repro.simgrid.disk`      — disk service times with repository
  backplane contention (the source of sub-linear retrieval scaling).
- :mod:`repro.simgrid.network`   — link transfer times, max-min fair
  bandwidth sharing, and the experimentally-fitted (w, l) communication cost
  model of Section 3.3.1 of the paper.
- :mod:`repro.simgrid.topology`  — a networkx grid topology connecting data
  repositories and compute clusters, used for replica selection.
- :mod:`repro.simgrid.trace`     — execution-time breakdowns
  (T_disk / T_network / T_compute / T_ro / T_g) recorded by the middleware.

All quantities are expressed in *model units*: the simulated testbed is a
uniformly scaled-down replica of the paper's (sizes, latencies and service
times all divided by the same constant), which leaves every ratio — and hence
every prediction error — unchanged.
"""

from repro.simgrid.engine import Event, FIFOServer, Simulator
from repro.simgrid.errors import (
    ConfigurationError,
    SimulationError,
    TopologyError,
)
from repro.simgrid.hardware import (
    ClusterSpec,
    CPUSpec,
    DiskSpec,
    NICSpec,
    NodeSpec,
    OpCategory,
    OpVector,
)
from repro.simgrid.disk import DiskModel, RepositoryDiskSystem
from repro.simgrid.network import (
    CommCostModel,
    LinkModel,
    fit_linear_cost,
    maxmin_fair_share,
)
from repro.simgrid.topology import GridTopology, SiteKind
from repro.simgrid.trace import PassRecord, TimeBreakdown

__all__ = [
    "Event",
    "FIFOServer",
    "Simulator",
    "ConfigurationError",
    "SimulationError",
    "TopologyError",
    "ClusterSpec",
    "CPUSpec",
    "DiskSpec",
    "NICSpec",
    "NodeSpec",
    "OpCategory",
    "OpVector",
    "DiskModel",
    "RepositoryDiskSystem",
    "CommCostModel",
    "LinkModel",
    "fit_linear_cost",
    "maxmin_fair_share",
    "GridTopology",
    "SiteKind",
    "PassRecord",
    "TimeBreakdown",
]
