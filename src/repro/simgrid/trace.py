"""Execution-time breakdowns recorded by the middleware.

The paper's prediction framework consumes exactly one artefact from an
execution: the **breakdown of execution time into data retrieval, network
communication, and processing components** (``t_d``, ``t_n``, ``t_c``),
plus the reduction-object communication time ``T_ro``, the global-reduction
time ``T_g`` and the maximum reduction-object size.  :class:`TimeBreakdown`
is that artefact; :class:`PassRecord` keeps the per-pass detail for
multi-pass applications (k-means, EM) whose later passes read from the
compute-node cache instead of the repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.simgrid.errors import ConfigurationError

__all__ = ["PassRecord", "TimeBreakdown"]


@dataclass(frozen=True, slots=True)
class PassRecord:
    """Component times of a single pass over the data.

    ``t_ckpt`` is the reduction-object checkpoint write (and, on a
    restarted pass, restore) time charged by fault-tolerant executions;
    it is zero whenever no fault schedule is installed.  ``events`` holds
    the fault/recovery events observed during the pass, as flat dicts
    (kind, node, charged times) for reports and post-mortems.
    """

    index: int
    t_disk: float = 0.0
    t_network: float = 0.0
    t_local_compute: float = 0.0
    t_cache: float = 0.0
    t_ro: float = 0.0
    t_g: float = 0.0
    t_ckpt: float = 0.0
    events: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "t_disk",
            "t_network",
            "t_local_compute",
            "t_cache",
            "t_ro",
            "t_g",
            "t_ckpt",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def t_compute(self) -> float:
        """Processing component of this pass (cache reads included).

        Cache retrieval by a compute node scales with the number of compute
        nodes, not data nodes, so — like the paper's ``t_c`` — it belongs in
        the compute component rather than the data-retrieval component.
        """
        return self.t_local_compute + self.t_cache + self.t_ro + self.t_g

    @property
    def total(self) -> float:
        """Wall time of the pass (phases do not overlap)."""
        return self.t_disk + self.t_network + self.t_compute + self.t_ckpt


@dataclass
class TimeBreakdown:
    """Aggregate execution-time breakdown of one run.

    The three top-level components match the paper's
    ``T_exec = T_disk + T_network + T_compute``; ``t_ro`` and ``t_g`` are the
    serialized sub-components of ``t_compute`` that the refined predictors of
    Sections 3.3.1-3.3.2 model separately.
    """

    passes: List[PassRecord] = field(default_factory=list)
    max_reduction_object_bytes: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_pass(self, record: PassRecord) -> None:
        """Append one pass record."""
        self.passes.append(record)

    @property
    def num_passes(self) -> int:
        """Number of passes over the dataset."""
        return len(self.passes)

    @property
    def t_disk(self) -> float:
        """Repository data-retrieval component (``t_d``)."""
        return sum(p.t_disk for p in self.passes)

    @property
    def t_network(self) -> float:
        """Repository-to-compute communication component (``t_n``)."""
        return sum(p.t_network for p in self.passes)

    @property
    def t_compute(self) -> float:
        """Processing component (``t_c``), including ``T_ro`` and ``T_g``."""
        return sum(p.t_compute for p in self.passes)

    @property
    def t_ro(self) -> float:
        """Total reduction-object communication time (``T_ro``)."""
        return sum(p.t_ro for p in self.passes)

    @property
    def t_g(self) -> float:
        """Total global-reduction time (``T_g``)."""
        return sum(p.t_g for p in self.passes)

    @property
    def t_cache(self) -> float:
        """Total compute-node cache read/write time (inside ``t_c``)."""
        return sum(p.t_cache for p in self.passes)

    @property
    def t_ckpt(self) -> float:
        """Total reduction-object checkpoint time (fault tolerance)."""
        return sum(p.t_ckpt for p in self.passes)

    @property
    def fault_events(self) -> List[Dict[str, Any]]:
        """Every fault/recovery event across all passes, in pass order."""
        return [event for p in self.passes for event in p.events]

    @property
    def total(self) -> float:
        """Total execution time (``T_exec``)."""
        return self.t_disk + self.t_network + self.t_compute + self.t_ckpt

    def to_dict(self) -> Dict[str, float]:
        """Flat dictionary view used by reports and tests."""
        return {
            "t_disk": self.t_disk,
            "t_network": self.t_network,
            "t_compute": self.t_compute,
            "t_ro": self.t_ro,
            "t_g": self.t_g,
            "t_cache": self.t_cache,
            "t_ckpt": self.t_ckpt,
            "total": self.total,
            "num_passes": float(self.num_passes),
            "max_reduction_object_bytes": self.max_reduction_object_bytes,
        }

    def scaled(self, factor: float) -> "TimeBreakdown":
        """A copy with every component multiplied by ``factor``.

        Used by tests and by the heterogeneous-cluster analysis, which
        rescales component times between machine types.
        """
        if factor < 0:
            raise ConfigurationError("scale factor must be >= 0")
        out = TimeBreakdown(
            max_reduction_object_bytes=self.max_reduction_object_bytes,
            metadata=dict(self.metadata),
        )
        for p in self.passes:
            out.add_pass(
                PassRecord(
                    index=p.index,
                    t_disk=p.t_disk * factor,
                    t_network=p.t_network * factor,
                    t_local_compute=p.t_local_compute * factor,
                    t_cache=p.t_cache * factor,
                    t_ro=p.t_ro * factor,
                    t_g=p.t_g * factor,
                    t_ckpt=p.t_ckpt * factor,
                    events=p.events,
                )
            )
        return out
