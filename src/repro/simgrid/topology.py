"""Wide-area grid topology connecting repositories and compute sites.

The resource-selection problem of the paper (Section 3: "We are given a
dataset, which is replicated at r sites.  We have also identified c
different computing configurations...") needs to know, for every
(replica site, compute site) pair, the bandwidth and latency of the data
movement path.  This module models the grid as a networkx graph whose edges
carry bandwidth/latency; the effective path bandwidth is the bottleneck
(minimum) edge bandwidth and the path latency is additive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

import networkx as nx

from repro.simgrid.errors import TopologyError
from repro.simgrid.hardware import ClusterSpec

__all__ = ["SiteKind", "Site", "GridTopology"]


class SiteKind(str, enum.Enum):
    """Role of a site in the grid."""

    REPOSITORY = "repository"
    COMPUTE = "compute"


@dataclass(frozen=True)
class Site:
    """A named grid site hosting a cluster in a given role."""

    name: str
    kind: SiteKind
    cluster: ClusterSpec


class GridTopology:
    """A graph of sites with bandwidth/latency annotated links.

    >>> from repro.workloads.clusters import pentium_myrinet_cluster
    >>> topo = GridTopology()
    >>> _ = topo.add_site("repo-a", SiteKind.REPOSITORY, pentium_myrinet_cluster())
    >>> _ = topo.add_site("hpc-1", SiteKind.COMPUTE, pentium_myrinet_cluster())
    >>> topo.connect("repo-a", "hpc-1", bw=1.0e6, latency_s=0.01)
    >>> topo.bandwidth_between("repo-a", "hpc-1")
    1000000.0
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._sites: dict[str, Site] = {}

    def add_site(self, name: str, kind: SiteKind, cluster: ClusterSpec) -> Site:
        """Register a site; names must be unique."""
        if name in self._sites:
            raise TopologyError(f"site '{name}' already exists")
        site = Site(name=name, kind=kind, cluster=cluster)
        self._sites[name] = site
        self._graph.add_node(name)
        return site

    def connect(self, a: str, b: str, bw: float, latency_s: float = 0.0) -> None:
        """Add a bidirectional link between two sites."""
        self._require(a)
        self._require(b)
        if a == b:
            raise TopologyError("cannot connect a site to itself")
        if bw <= 0:
            raise TopologyError("link bandwidth must be > 0")
        if latency_s < 0:
            raise TopologyError("link latency must be >= 0")
        self._graph.add_edge(a, b, bw=float(bw), latency_s=float(latency_s))

    def site(self, name: str) -> Site:
        """Look a site up by name."""
        return self._require(name)

    def sites(self, kind: Optional[SiteKind] = None) -> Iterator[Site]:
        """Iterate sites, optionally filtered by role."""
        for site in self._sites.values():
            if kind is None or site.kind is kind:
                yield site

    def repositories(self) -> list[Site]:
        """All repository sites."""
        return list(self.sites(SiteKind.REPOSITORY))

    def compute_sites(self) -> list[Site]:
        """All compute sites."""
        return list(self.sites(SiteKind.COMPUTE))

    def links(self) -> list[tuple[str, str]]:
        """All direct links as sorted (a, b) tuples, sorted."""
        return sorted(tuple(sorted(edge)) for edge in self._graph.edges)

    def path(self, a: str, b: str) -> list[str]:
        """Minimum-hop path between two sites."""
        self._require(a)
        self._require(b)
        try:
            return nx.shortest_path(self._graph, a, b)
        except nx.NetworkXNoPath as exc:
            raise TopologyError(f"no path between '{a}' and '{b}'") from exc

    def bandwidth_between(self, a: str, b: str) -> float:
        """Bottleneck bandwidth along the minimum-hop path (bytes/s)."""
        if a == b:
            raise TopologyError("bandwidth within a site is not path-limited")
        hops = self.path(a, b)
        return min(
            self._graph.edges[u, v]["bw"] for u, v in zip(hops, hops[1:])
        )

    def latency_between(self, a: str, b: str) -> float:
        """Additive latency along the minimum-hop path (seconds)."""
        if a == b:
            return 0.0
        hops = self.path(a, b)
        return sum(
            self._graph.edges[u, v]["latency_s"] for u, v in zip(hops, hops[1:])
        )

    def _require(self, name: str) -> Site:
        site = self._sites.get(name)
        if site is None:
            raise TopologyError(f"unknown site '{name}'")
        return site

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, name: object) -> bool:
        return name in self._sites
