"""Virtual clock, event queue and FIFO service primitives.

The middleware layers a *phased* execution model on top of this engine (the
paper's ``T_exec = T_disk + T_network + T_compute`` decomposition assumes the
three stages do not overlap), but inside a phase the engine provides genuine
discrete-event semantics: events are ordered by (time, sequence number) so
ties resolve deterministically, and :class:`FIFOServer` models an exclusive
resource (a disk arm, a NIC, a CPU) that serves requests in arrival order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.hotpath import hot
from repro.simgrid.errors import EngineError

__all__ = ["Event", "Simulator", "FIFOServer"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback in virtual time.

    Events compare by ``(time, seq)`` which makes the execution order of
    same-time events deterministic (FIFO in scheduling order).  The class
    is slotted (REP301): one Event per scheduled callback means the
    per-instance dict would be pure overhead at trace scale.
    """

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Heap of (time, seq, event): ties still resolve by sequence
        # number exactly as when Events were heaped directly, but the
        # heap sifts compare C-level tuples of floats/ints instead of
        # dispatching into the dataclass __lt__ per comparison.
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled events included)."""
        return len(self._queue)

    @hot
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise EngineError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    @hot
    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise EngineError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        when = float(time)
        seq = next(self._seq)
        event = Event(when, seq, callback, tuple(args))
        heappush(self._queue, (when, seq, event))
        return event

    def step(self) -> bool:
        """Execute the next non-cancelled event. Returns False when idle.

        Not declared ``@hot``: the drain loop in :meth:`run` inlines
        this sequence, so per-event dispatch no longer routes through
        here.  It stays in the hot *region* (reachable from ``run``'s
        bounded branch), so the cost rules still police it.
        """
        queue = self._queue
        while queue:
            when, _seq, event = heappop(queue)
            if event.cancelled:
                continue
            self._now = when
            event.callback(*event.args)
            self._processed += 1
            return True
        return False

    @hot
    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until virtual time ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the queue drains earlier, so phase barriers can be expressed
        as ``sim.run(until=phase_end)``.
        """
        queue = self._queue
        if until is None:
            # Drain inline: one bound-method call per event (the
            # callback) instead of three.  Same pop/skip/execute
            # sequence as step(), and the counter still advances per
            # event so callbacks observing ``processed_events`` see
            # exactly what they saw under the step() loop.
            while queue:
                when, _seq, event = heappop(queue)
                if event.cancelled:
                    continue
                self._now = when
                event.callback(*event.args)
                self._processed += 1
            return
        if until < self._now:
            raise EngineError(f"cannot run backwards to t={until}")
        while queue:
            when, _seq, event = queue[0]
            if event.cancelled:
                heappop(queue)
                continue
            if when > until:
                break
            self.step()
        self._now = float(until)

    def advance(self, delay: float) -> float:
        """Advance the clock by ``delay`` without executing queued events."""
        if delay < 0:
            raise EngineError(f"cannot advance by a negative delay ({delay})")
        self._now += delay
        return self._now


class FIFOServer:
    """An exclusive resource serving requests in arrival order.

    ``serve(arrival, duration)`` returns the (start, end) of the service
    window: service starts at ``max(arrival, previous end)``.  This is the
    standard single-server FIFO queue recurrence; because all the middleware
    phases submit requests in non-decreasing arrival order, the analytic
    recurrence is event-exact.

    >>> nic = FIFOServer("nic0")
    >>> nic.serve(0.0, 2.0)
    (0.0, 2.0)
    >>> nic.serve(1.0, 1.0)   # arrives while busy, waits
    (2.0, 3.0)
    >>> nic.serve(5.0, 1.0)   # arrives idle
    (5.0, 6.0)
    """

    def __init__(self, name: str = "server") -> None:
        self.name = name
        self._free_at = 0.0
        self._busy_time = 0.0
        self._requests = 0

    @property
    def free_at(self) -> float:
        """Earliest time the server can begin a new request."""
        return self._free_at

    @property
    def busy_time(self) -> float:
        """Total time spent serving requests."""
        return self._busy_time

    @property
    def requests(self) -> int:
        """Number of requests served."""
        return self._requests

    @hot
    def serve(self, arrival: float, duration: float) -> tuple[float, float]:
        """Enqueue a request; returns its (start, end) service window."""
        if duration < 0:
            raise EngineError(f"negative service duration ({duration})")
        if arrival < 0:
            raise EngineError(f"negative arrival time ({arrival})")
        start = max(arrival, self._free_at)
        end = start + duration
        self._free_at = end
        self._busy_time += duration
        self._requests += 1
        return (start, end)

    def reset(self, free_at: float = 0.0) -> None:
        """Clear the queue state (used at phase barriers)."""
        self._free_at = float(free_at)
