"""Retry policy for transient repository read errors.

Failed chunk reads are retried with capped exponential backoff; the time
spent on failed attempts and backoff delays is *charged into the pass's
``t_disk``* — retrying is part of data retrieval, exactly where a real
deployment would lose the time.  A chunk whose read keeps failing past
``max_attempts`` exhausts recovery
(:class:`~repro.errors.RecoveryExhaustedError`), which the runtime treats
as fatal for the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import FaultError

__all__ = [
    "RetryPolicy",
    "BrokerRetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_BROKER_RETRY_POLICY",
    "WATCHDOG_RETRY_POLICY",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential-backoff retry for per-chunk read errors.

    Attributes
    ----------
    max_attempts:
        Total attempts per chunk, first try included (``>= 1``).
    base_backoff_s:
        Delay before the first retry.
    backoff_factor:
        Multiplier applied to the delay after each failed retry.
    max_backoff_s:
        Cap on any single backoff delay.
    per_chunk_timeout_s:
        When set, a failed read attempt is abandoned after this long —
        bounding the cost of an attempt that would otherwise hang.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    per_chunk_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError("max_attempts must be >= 1")
        if self.base_backoff_s < 0:
            raise FaultError("base_backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise FaultError("backoff_factor must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise FaultError("max_backoff_s must be >= base_backoff_s")
        if self.per_chunk_timeout_s is not None and self.per_chunk_timeout_s <= 0:
            raise FaultError("per_chunk_timeout_s must be positive")

    def backoff_s(self, retry_index: int) -> float:
        """Delay before retry number ``retry_index`` (1-based).

        >>> RetryPolicy(base_backoff_s=0.1, backoff_factor=2.0).backoff_s(3)
        0.4
        """
        if retry_index < 1:
            raise FaultError("retry_index is 1-based")
        raw = self.base_backoff_s * self.backoff_factor ** (retry_index - 1)
        return min(raw, self.max_backoff_s)

    def total_backoff_s(self, failures: int) -> float:
        """Summed backoff delay across ``failures`` consecutive failures."""
        if failures < 0:
            raise FaultError("failure count must be >= 0")
        return sum(self.backoff_s(i) for i in range(1, failures + 1))

    def attempt_cost_s(self, read_time_s: float) -> float:
        """Time lost to one failed read attempt (timeout-capped)."""
        if read_time_s < 0:
            raise FaultError("read time must be >= 0")
        if self.per_chunk_timeout_s is None:
            return read_time_s
        return min(read_time_s, self.per_chunk_timeout_s)

    def retry_cost_s(self, failures: int, read_time_s: float) -> float:
        """Total extra retrieval time for a chunk that fails ``failures``
        times before succeeding: failed attempts plus backoff delays.

        The successful attempt itself is *not* included — the caller
        already charges one clean read per chunk.
        """
        if failures < 0:
            raise FaultError("failure count must be >= 0")
        if failures >= self.max_attempts:
            raise FaultError(
                f"{failures} failures exceed the {self.max_attempts}-attempt "
                "budget; the caller should have escalated"
            )
        return failures * self.attempt_cost_s(read_time_s) + self.total_backoff_s(
            failures
        )

    @property
    def max_failures(self) -> int:
        """Most failures a chunk can survive (one attempt must succeed)."""
        return self.max_attempts - 1

    def backoff_delays(self) -> List[float]:
        """The real sleep before each retry, in order.

        ``backoff_delays()[i]`` is the delay between failed attempt
        ``i + 1`` and retry ``i + 2`` — used by callers that actually
        wait (the campaign watchdog) rather than charge simulated time.

        >>> RetryPolicy(max_attempts=3, base_backoff_s=0.1).backoff_delays()
        [0.1, 0.2]
        """
        return [self.backoff_s(i) for i in range(1, self.max_attempts)]


@dataclass(frozen=True)
class BrokerRetryPolicy:
    """Bounded re-placement budget for preempted or failed broker jobs.

    Reuses :class:`RetryPolicy` backoff semantics at job granularity: a
    job whose execution attempt is preempted (site outage, node-pool
    shrink) or aborts (transient failure) re-enters the wait queue after
    the backoff delay of its attempt number; once ``max_attempts`` total
    placement attempts are spent, the job is *terminally failed* and
    classified as such in the broker report.  The backoff is charged in
    simulated time — a recovering job cannot re-place instantly, which
    models the detection + resubmission latency of a real broker.
    """

    backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=3,
            base_backoff_s=0.02,
            backoff_factor=2.0,
            max_backoff_s=0.5,
        )
    )

    @property
    def max_attempts(self) -> int:
        """Total placement attempts per job, first try included."""
        return self.backoff.max_attempts

    def allows_retry(self, failed_attempts: int) -> bool:
        """Whether a job with ``failed_attempts`` may be re-placed."""
        if failed_attempts < 1:
            raise FaultError("a retry decision needs at least one failure")
        return failed_attempts < self.max_attempts

    def requeue_delay_s(self, failed_attempts: int) -> float:
        """Simulated backoff before re-queueing attempt number
        ``failed_attempts + 1`` (1-based failure count)."""
        return self.backoff.backoff_s(failed_attempts)

    @classmethod
    def with_attempts(cls, max_attempts: int) -> "BrokerRetryPolicy":
        """A policy with the default backoff curve and a custom budget."""
        return cls(backoff=RetryPolicy(
            max_attempts=max_attempts,
            base_backoff_s=0.02,
            backoff_factor=2.0,
            max_backoff_s=0.5,
        ))


#: Policy used when a scenario does not specify one.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Broker-level default: three placement attempts per job.
DEFAULT_BROKER_RETRY_POLICY = BrokerRetryPolicy()

#: Policy the campaign watchdog uses for retry-after-timeout when none is
#: configured: one immediate retry, then give up and classify the entry
#: as timed-out.  A deadline overrun usually means the experiment is
#: stuck, not slow, so long backoffs would only delay the campaign.
WATCHDOG_RETRY_POLICY = RetryPolicy(
    max_attempts=2,
    base_backoff_s=0.0,
    backoff_factor=1.0,
    max_backoff_s=0.0,
)
