"""Fault-scenario files: JSON in, :class:`FaultInjector` out.

A scenario file drives ``repro run --faults scenario.json``::

    {
      "seed": 42,
      "replicas": ["repo-b"],
      "retry_policy": {"max_attempts": 5, "base_backoff_s": 0.01},
      "checkpoints": true,
      "faults": [
        {"type": "data-node-crash", "pass": 0, "data_node": 1,
         "at_fraction": 0.5},
        {"type": "compute-node-crash", "pass": 1, "compute_node": 3,
         "at_fraction": 0.25},
        {"type": "link-degradation", "data_node": 0, "factor": 2.0},
        {"type": "slow-node", "compute_node": 2, "factor": 1.5,
         "from_pass": 1},
        {"type": "chunk-read-error", "rate": 0.05}
      ]
    }

Every key except ``faults`` is optional.  Unknown fault types or keys
raise :class:`~repro.errors.FaultError` rather than being ignored — a
typo in a scenario must not silently produce a fault-free run.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Mapping, Union

from repro.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.faults.specs import (
    ChunkReadError,
    ComputeNodeCrash,
    DataNodeCrash,
    FaultSchedule,
    FaultSpec,
    LinkDegradation,
    SlowNode,
)

__all__ = ["schedule_from_dict", "injector_from_dict", "load_scenario"]


def _take(data: Mapping[str, Any], kind: str, keys: Dict[str, Any]) -> Dict[str, Any]:
    """Extract ``keys`` (name -> default, ``...`` = required) from a spec."""
    known = set(keys) | {"type"}
    unknown = set(data) - known
    if unknown:
        raise FaultError(
            f"unknown key(s) {sorted(unknown)} in '{kind}' fault spec"
        )
    out: Dict[str, Any] = {}
    for key, default in keys.items():
        if key in data:
            out[key] = data[key]
        elif default is ...:
            raise FaultError(f"'{kind}' fault spec requires key '{key}'")
        else:
            out[key] = default
    return out


def _fault_from_dict(data: Mapping[str, Any]) -> FaultSpec:
    kind = data.get("type")
    if kind == "data-node-crash":
        args = _take(data, kind, {"pass": ..., "data_node": ..., "at_fraction": 0.5})
        return DataNodeCrash(
            pass_index=int(args["pass"]),
            data_node=int(args["data_node"]),
            at_fraction=float(args["at_fraction"]),
        )
    if kind == "compute-node-crash":
        args = _take(
            data, kind, {"pass": ..., "compute_node": ..., "at_fraction": 0.5}
        )
        return ComputeNodeCrash(
            pass_index=int(args["pass"]),
            compute_node=int(args["compute_node"]),
            at_fraction=float(args["at_fraction"]),
        )
    if kind == "link-degradation":
        args = _take(
            data,
            kind,
            {"data_node": ..., "factor": ..., "from_pass": 0, "until_pass": None},
        )
        return LinkDegradation(
            data_node=int(args["data_node"]),
            factor=float(args["factor"]),
            from_pass=int(args["from_pass"]),
            until_pass=None if args["until_pass"] is None else int(args["until_pass"]),
        )
    if kind == "slow-node":
        args = _take(
            data,
            kind,
            {"compute_node": ..., "factor": ..., "from_pass": 0, "until_pass": None},
        )
        return SlowNode(
            compute_node=int(args["compute_node"]),
            factor=float(args["factor"]),
            from_pass=int(args["from_pass"]),
            until_pass=None if args["until_pass"] is None else int(args["until_pass"]),
        )
    if kind == "chunk-read-error":
        args = _take(
            data,
            kind,
            {"rate": 0.0, "pass": None, "data_node": None, "failures": None},
        )
        failures = args["failures"]
        if failures is not None:
            failures = {int(k): int(v) for k, v in failures.items()}
        return ChunkReadError(
            rate=float(args["rate"]),
            pass_index=None if args["pass"] is None else int(args["pass"]),
            data_node=None if args["data_node"] is None else int(args["data_node"]),
            failures=failures,
        )
    raise FaultError(
        f"unknown fault type {kind!r}; expected one of data-node-crash, "
        "compute-node-crash, link-degradation, slow-node, chunk-read-error"
    )


def schedule_from_dict(data: Mapping[str, Any]) -> FaultSchedule:
    """Build a :class:`FaultSchedule` from a decoded scenario mapping."""
    faults_raw = data.get("faults", [])
    if not isinstance(faults_raw, list):
        raise FaultError("'faults' must be a list of fault specs")
    faults: List[FaultSpec] = [_fault_from_dict(f) for f in faults_raw]
    checkpoints = data.get("checkpoints")
    if checkpoints is not None and not isinstance(checkpoints, bool):
        raise FaultError("'checkpoints' must be a boolean when present")
    return FaultSchedule(faults=faults, checkpoints=checkpoints)


def injector_from_dict(data: Mapping[str, Any]) -> FaultInjector:
    """Build a fully configured :class:`FaultInjector` from a mapping."""
    schedule = schedule_from_dict(data)
    policy_raw = data.get("retry_policy")
    if policy_raw is None:
        policy = DEFAULT_RETRY_POLICY
    else:
        try:
            policy = RetryPolicy(**policy_raw)
        except TypeError as exc:
            raise FaultError(f"bad retry_policy: {exc}") from exc
    replicas = data.get("replicas", ["standby-replica"])
    if not isinstance(replicas, list):
        raise FaultError("'replicas' must be a list of site names")
    return FaultInjector(
        schedule,
        policy=policy,
        seed=int(data.get("seed", 0)),
        replica_sites=[str(site) for site in replicas],
    )


def load_scenario(path: Union[str, pathlib.Path]) -> FaultInjector:
    """Load a fault-scenario JSON file into an injector."""
    p = pathlib.Path(path)
    try:
        data = json.loads(p.read_text())
    except FileNotFoundError:
        raise FaultError(f"fault scenario file not found: {p}") from None
    except json.JSONDecodeError as exc:
        raise FaultError(f"fault scenario {p} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise FaultError(f"fault scenario {p} must contain a JSON object")
    return injector_from_dict(data)
