"""Fault-scenario files: JSON in, schedules/injectors out.

Two scenario scopes share this module:

**Execution scope** drives ``repro run --faults scenario.json`` — faults
inside one middleware execution::

    {
      "seed": 42,
      "replicas": ["repo-b"],
      "retry_policy": {"max_attempts": 5, "base_backoff_s": 0.01},
      "checkpoints": true,
      "faults": [
        {"type": "data-node-crash", "pass": 0, "data_node": 1,
         "at_fraction": 0.5},
        {"type": "compute-node-crash", "pass": 1, "compute_node": 3,
         "at_fraction": 0.25},
        {"type": "link-degradation", "data_node": 0, "factor": 2.0},
        {"type": "slow-node", "compute_node": 2, "factor": 1.5,
         "from_pass": 1},
        {"type": "chunk-read-error", "rate": 0.05}
      ]
    }

**Grid scope** drives ``repro broker --faults scenario.json`` — grid
weather delivered through the broker's event queue::

    {
      "recovery": "migrate",
      "retry": {"max_attempts": 3, "base_backoff_s": 0.02},
      "grid_faults": [
        {"type": "site-outage", "site": "hpc-1", "at": 2.0,
         "repair_after": 4.0},
        {"type": "node-pool-shrink", "site": "hpc-2", "at": 1.0,
         "nodes": 8, "restore_after": 6.0},
        {"type": "wan-degradation", "a": "repo-a", "b": "hpc-1",
         "factor": 2.0, "at": 0.0, "duration": 5.0},
        {"type": "transient-job-failure", "job": "job0007-kmeans",
         "failures": 1, "at_fraction": 0.5}
      ]
    }

Every key except the fault list is optional.  An unknown fault kind — or
a kind used in the wrong scope — raises
:class:`~repro.simgrid.errors.ConfigurationError` naming the valid kinds
of both scopes; malformed fields of a *known* kind raise
:class:`~repro.errors.FaultError`.  A typo in a scenario must not
silently produce a fault-free run.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import FaultError
from repro.faults.grid import (
    GridFaultSchedule,
    GridFaultSpec,
    NodePoolShrink,
    SiteOutage,
    TransientJobFailure,
    WanDegradation,
)
from repro.faults.injector import FaultInjector
from repro.faults.retry import (
    DEFAULT_BROKER_RETRY_POLICY,
    DEFAULT_RETRY_POLICY,
    BrokerRetryPolicy,
    RetryPolicy,
)
from repro.faults.specs import (
    ChunkReadError,
    ComputeNodeCrash,
    DataNodeCrash,
    FaultSchedule,
    FaultSpec,
    LinkDegradation,
    SlowNode,
)
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "EXECUTION_FAULT_KINDS",
    "GRID_FAULT_KINDS",
    "schedule_from_dict",
    "injector_from_dict",
    "load_scenario",
    "grid_fault_from_dict",
    "grid_schedule_from_dict",
    "GridFaultScenario",
    "grid_scenario_from_dict",
    "load_grid_scenario",
]

#: Execution-scoped fault kinds (``repro run --faults``), canonical order.
EXECUTION_FAULT_KINDS = (
    "data-node-crash",
    "compute-node-crash",
    "link-degradation",
    "slow-node",
    "chunk-read-error",
)

#: Grid-scoped fault kinds (``repro broker --faults``), canonical order.
GRID_FAULT_KINDS = (
    "site-outage",
    "node-pool-shrink",
    "wan-degradation",
    "transient-job-failure",
)


def _unknown_kind(kind: Any, scope: str) -> ConfigurationError:
    """The error for a fault kind that fits neither scope."""
    return ConfigurationError(
        f"unknown fault type {kind!r}; {scope} scenarios accept "
        f"{', '.join(EXECUTION_FAULT_KINDS if scope == 'execution' else GRID_FAULT_KINDS)} "
        f"(the other scope's kinds are "
        f"{', '.join(GRID_FAULT_KINDS if scope == 'execution' else EXECUTION_FAULT_KINDS)})"
    )


def _scope_mismatch(kind: str, found_in: str) -> ConfigurationError:
    """The error for a valid kind appearing in the wrong scope."""
    if found_in == "execution":
        return ConfigurationError(
            f"'{kind}' is a grid-scoped fault and belongs in a broker "
            f"fault scenario ('grid_faults' list, `repro broker --faults`); "
            f"execution scenarios accept {', '.join(EXECUTION_FAULT_KINDS)}"
        )
    return ConfigurationError(
        f"'{kind}' is an execution-scoped fault and belongs in a "
        f"`repro run --faults` scenario ('faults' list); grid scenarios "
        f"accept {', '.join(GRID_FAULT_KINDS)}"
    )


def _take(data: Mapping[str, Any], kind: str, keys: Dict[str, Any]) -> Dict[str, Any]:
    """Extract ``keys`` (name -> default, ``...`` = required) from a spec."""
    known = set(keys) | {"type"}
    unknown = set(data) - known
    if unknown:
        raise FaultError(
            f"unknown key(s) {sorted(unknown)} in '{kind}' fault spec"
        )
    out: Dict[str, Any] = {}
    for key, default in keys.items():
        if key in data:
            out[key] = data[key]
        elif default is ...:
            raise FaultError(f"'{kind}' fault spec requires key '{key}'")
        else:
            out[key] = default
    return out


def _fault_from_dict(data: Mapping[str, Any]) -> FaultSpec:
    kind = data.get("type")
    if kind == "data-node-crash":
        args = _take(data, kind, {"pass": ..., "data_node": ..., "at_fraction": 0.5})
        return DataNodeCrash(
            pass_index=int(args["pass"]),
            data_node=int(args["data_node"]),
            at_fraction=float(args["at_fraction"]),
        )
    if kind == "compute-node-crash":
        args = _take(
            data, kind, {"pass": ..., "compute_node": ..., "at_fraction": 0.5}
        )
        return ComputeNodeCrash(
            pass_index=int(args["pass"]),
            compute_node=int(args["compute_node"]),
            at_fraction=float(args["at_fraction"]),
        )
    if kind == "link-degradation":
        args = _take(
            data,
            kind,
            {"data_node": ..., "factor": ..., "from_pass": 0, "until_pass": None},
        )
        return LinkDegradation(
            data_node=int(args["data_node"]),
            factor=float(args["factor"]),
            from_pass=int(args["from_pass"]),
            until_pass=None if args["until_pass"] is None else int(args["until_pass"]),
        )
    if kind == "slow-node":
        args = _take(
            data,
            kind,
            {"compute_node": ..., "factor": ..., "from_pass": 0, "until_pass": None},
        )
        return SlowNode(
            compute_node=int(args["compute_node"]),
            factor=float(args["factor"]),
            from_pass=int(args["from_pass"]),
            until_pass=None if args["until_pass"] is None else int(args["until_pass"]),
        )
    if kind == "chunk-read-error":
        args = _take(
            data,
            kind,
            {"rate": 0.0, "pass": None, "data_node": None, "failures": None},
        )
        failures = args["failures"]
        if failures is not None:
            failures = {int(k): int(v) for k, v in failures.items()}
        return ChunkReadError(
            rate=float(args["rate"]),
            pass_index=None if args["pass"] is None else int(args["pass"]),
            data_node=None if args["data_node"] is None else int(args["data_node"]),
            failures=failures,
        )
    if kind in GRID_FAULT_KINDS:
        raise _scope_mismatch(str(kind), "execution")
    raise _unknown_kind(kind, "execution")


def grid_fault_from_dict(data: Mapping[str, Any]) -> GridFaultSpec:
    """Parse one grid-scoped fault spec mapping."""
    kind = data.get("type")
    if kind == "site-outage":
        args = _take(data, kind, {"site": ..., "at": ..., "repair_after": None})
        return SiteOutage(
            site=str(args["site"]),
            at=float(args["at"]),
            repair_after=(
                None if args["repair_after"] is None
                else float(args["repair_after"])
            ),
        )
    if kind == "node-pool-shrink":
        args = _take(
            data, kind,
            {"site": ..., "at": ..., "nodes": ..., "restore_after": None},
        )
        return NodePoolShrink(
            site=str(args["site"]),
            at=float(args["at"]),
            nodes=int(args["nodes"]),
            restore_after=(
                None if args["restore_after"] is None
                else float(args["restore_after"])
            ),
        )
    if kind == "wan-degradation":
        args = _take(
            data, kind,
            {"a": ..., "b": ..., "factor": ..., "at": 0.0, "duration": None},
        )
        return WanDegradation(
            site_a=str(args["a"]),
            site_b=str(args["b"]),
            factor=float(args["factor"]),
            at=float(args["at"]),
            duration=(
                None if args["duration"] is None else float(args["duration"])
            ),
        )
    if kind == "transient-job-failure":
        args = _take(
            data, kind, {"job": ..., "failures": 1, "at_fraction": 0.5}
        )
        return TransientJobFailure(
            job_id=str(args["job"]),
            failures=int(args["failures"]),
            at_fraction=float(args["at_fraction"]),
        )
    if kind in EXECUTION_FAULT_KINDS:
        raise _scope_mismatch(str(kind), "grid")
    raise _unknown_kind(kind, "grid")


def schedule_from_dict(data: Mapping[str, Any]) -> FaultSchedule:
    """Build an execution-scoped :class:`FaultSchedule` from a mapping."""
    faults_raw = data.get("faults", [])
    if not isinstance(faults_raw, list):
        raise FaultError("'faults' must be a list of fault specs")
    faults: List[FaultSpec] = [_fault_from_dict(f) for f in faults_raw]
    checkpoints = data.get("checkpoints")
    if checkpoints is not None and not isinstance(checkpoints, bool):
        raise FaultError("'checkpoints' must be a boolean when present")
    return FaultSchedule(faults=faults, checkpoints=checkpoints)


def grid_schedule_from_dict(data: Mapping[str, Any]) -> GridFaultSchedule:
    """Build a :class:`GridFaultSchedule` from a decoded scenario mapping."""
    faults_raw = data.get("grid_faults", data.get("faults", []))
    if not isinstance(faults_raw, list):
        raise FaultError("'grid_faults' must be a list of fault specs")
    return GridFaultSchedule([grid_fault_from_dict(f) for f in faults_raw])


def injector_from_dict(data: Mapping[str, Any]) -> FaultInjector:
    """Build a fully configured :class:`FaultInjector` from a mapping."""
    schedule = schedule_from_dict(data)
    policy_raw = data.get("retry_policy")
    if policy_raw is None:
        policy = DEFAULT_RETRY_POLICY
    else:
        try:
            policy = RetryPolicy(**policy_raw)
        except TypeError as exc:
            raise FaultError(f"bad retry_policy: {exc}") from exc
    replicas = data.get("replicas", ["standby-replica"])
    if not isinstance(replicas, list):
        raise FaultError("'replicas' must be a list of site names")
    return FaultInjector(
        schedule,
        policy=policy,
        seed=int(data.get("seed", 0)),
        replica_sites=[str(site) for site in replicas],
    )


@dataclass(frozen=True)
class GridFaultScenario:
    """A parsed grid fault scenario: schedule + recovery configuration.

    ``recovery`` is ``None`` when the scenario leaves the recovery
    policy to the caller (the CLI's ``--recovery`` flag wins over the
    file either way).
    """

    schedule: GridFaultSchedule
    retry: BrokerRetryPolicy = DEFAULT_BROKER_RETRY_POLICY
    recovery: Optional[str] = None


def grid_scenario_from_dict(data: Mapping[str, Any]) -> GridFaultScenario:
    """Build a :class:`GridFaultScenario` from a decoded mapping."""
    schedule = grid_schedule_from_dict(data)
    retry_raw = data.get("retry")
    if retry_raw is None:
        retry = DEFAULT_BROKER_RETRY_POLICY
    else:
        try:
            retry = BrokerRetryPolicy(backoff=RetryPolicy(**retry_raw))
        except TypeError as exc:
            raise FaultError(f"bad retry: {exc}") from exc
    recovery = data.get("recovery")
    if recovery is not None:
        recovery = str(recovery)
    return GridFaultScenario(schedule=schedule, retry=retry, recovery=recovery)


def _load_json_object(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    p = pathlib.Path(path)
    try:
        data = json.loads(p.read_text())
    except FileNotFoundError:
        raise FaultError(f"fault scenario file not found: {p}") from None
    except json.JSONDecodeError as exc:
        raise FaultError(f"fault scenario {p} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise FaultError(f"fault scenario {p} must contain a JSON object")
    return data


def load_scenario(path: Union[str, pathlib.Path]) -> FaultInjector:
    """Load an execution-scoped fault-scenario JSON file into an injector."""
    return injector_from_dict(_load_json_object(path))


def load_grid_scenario(path: Union[str, pathlib.Path]) -> GridFaultScenario:
    """Load a grid-scoped fault-scenario JSON file."""
    return grid_scenario_from_dict(_load_json_object(path))
