"""Fault specifications: what can go wrong, where, and when.

Each spec is a frozen dataclass describing one fault the
:class:`~repro.faults.injector.FaultInjector` will fire during a
middleware execution.  All faults are **scheduled** — they name the pass
(and, for crashes, the phase progress fraction) at which they occur — so a
faulted run is exactly reproducible, which the recovery tests and the
degraded-mode predictor both rely on.

The five fault kinds map to the grid failure modes the related work
documents (bandwidth variability, routine node failures):

- :class:`DataNodeCrash`      — a repository node dies mid-communication.
- :class:`ComputeNodeCrash`   — a processing node dies mid-pass.
- :class:`LinkDegradation`    — a repository-to-compute link slows down.
- :class:`SlowNode`           — a compute node loses CPU to external load.
- :class:`ChunkReadError`     — transient per-chunk repository read
  failures, either explicit (``failures`` per chunk) or rate-driven
  (seeded draws by the injector).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import FaultError

__all__ = [
    "DataNodeCrash",
    "ComputeNodeCrash",
    "LinkDegradation",
    "SlowNode",
    "ChunkReadError",
    "FaultSpec",
    "FaultSchedule",
]


def _check_fraction(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultError(f"{name} must be within [0, 1], got {value}")


def _check_index(value: int, name: str) -> None:
    if value < 0:
        raise FaultError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class DataNodeCrash:
    """A repository node fails during the communication phase of a pass.

    ``at_fraction`` is the fraction of the node's chunk batch already
    shipped when the crash is detected; the unshipped tail is re-fetched
    from a failover replica chosen through the replica catalog.
    """

    pass_index: int
    data_node: int
    at_fraction: float = 0.5

    def __post_init__(self) -> None:
        _check_index(self.pass_index, "pass_index")
        _check_index(self.data_node, "data_node")
        _check_fraction(self.at_fraction, "at_fraction")


@dataclass(frozen=True)
class ComputeNodeCrash:
    """A processing node fails during the local-reduction phase of a pass.

    ``at_fraction`` is how far the local phase had progressed when the
    crash is detected; that work is lost, the node's chunks are
    redistributed over the survivors, and the pass restarts from the last
    reduction-object checkpoint.
    """

    pass_index: int
    compute_node: int
    at_fraction: float = 0.5

    def __post_init__(self) -> None:
        _check_index(self.pass_index, "pass_index")
        _check_index(self.compute_node, "compute_node")
        _check_fraction(self.at_fraction, "at_fraction")


@dataclass(frozen=True)
class LinkDegradation:
    """A repository-to-compute link degrades from a pass onward.

    ``factor`` multiplies the affected data node's communication time
    (``factor == 2.0`` halves the usable bandwidth).  ``until_pass`` is
    exclusive; ``None`` means the degradation persists to the end.
    """

    data_node: int
    factor: float
    from_pass: int = 0
    until_pass: Optional[int] = None

    def __post_init__(self) -> None:
        _check_index(self.data_node, "data_node")
        _check_index(self.from_pass, "from_pass")
        if self.factor < 1.0:
            raise FaultError(
                f"link degradation factor must be >= 1, got {self.factor}"
            )
        if self.until_pass is not None and self.until_pass <= self.from_pass:
            raise FaultError("until_pass must be greater than from_pass")

    def active(self, pass_index: int) -> bool:
        """Whether the degradation applies during ``pass_index``."""
        if pass_index < self.from_pass:
            return False
        return self.until_pass is None or pass_index < self.until_pass


@dataclass(frozen=True)
class SlowNode:
    """External load slows one compute node from a pass onward.

    ``factor`` multiplies the node's local-reduction time.  Timing-only:
    the reduction produces the same objects, later.
    """

    compute_node: int
    factor: float
    from_pass: int = 0
    until_pass: Optional[int] = None

    def __post_init__(self) -> None:
        _check_index(self.compute_node, "compute_node")
        _check_index(self.from_pass, "from_pass")
        if self.factor < 1.0:
            raise FaultError(f"slow-node factor must be >= 1, got {self.factor}")
        if self.until_pass is not None and self.until_pass <= self.from_pass:
            raise FaultError("until_pass must be greater than from_pass")

    def active(self, pass_index: int) -> bool:
        """Whether the slowdown applies during ``pass_index``."""
        if pass_index < self.from_pass:
            return False
        return self.until_pass is None or pass_index < self.until_pass


@dataclass(frozen=True)
class ChunkReadError:
    """Transient repository read errors, retried under the retry policy.

    Two forms:

    - **explicit** — ``failures`` maps chunk positions (index into the
      data node's chunk batch) to the number of consecutive failed read
      attempts before the read succeeds;
    - **rate-driven** — ``rate`` is the per-attempt failure probability;
      the injector draws the per-chunk failure counts deterministically
      from its seed.

    ``pass_index``/``data_node`` of ``None`` mean "every network-fed
    pass" / "every data node".
    """

    rate: float = 0.0
    pass_index: Optional[int] = None
    data_node: Optional[int] = None
    failures: Optional[Dict[int, int]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise FaultError(
                f"transient read-error rate must be in [0, 1), got {self.rate}"
            )
        if self.pass_index is not None:
            _check_index(self.pass_index, "pass_index")
        if self.data_node is not None:
            _check_index(self.data_node, "data_node")
        if self.failures is not None:
            for chunk, count in self.failures.items():
                if chunk < 0 or count <= 0:
                    raise FaultError(
                        "explicit chunk failures must map chunk >= 0 to "
                        f"count >= 1, got {chunk}: {count}"
                    )
        if self.rate <= 0.0 and not self.failures:
            raise FaultError(
                "a ChunkReadError needs a positive rate or explicit failures"
            )

    def applies(self, pass_index: int, data_node: int) -> bool:
        """Whether this spec covers ``(pass_index, data_node)``."""
        if self.pass_index is not None and self.pass_index != pass_index:
            return False
        return self.data_node is None or self.data_node == data_node


FaultSpec = Union[
    DataNodeCrash, ComputeNodeCrash, LinkDegradation, SlowNode, ChunkReadError
]


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable collection of fault specs for one execution.

    ``checkpoints`` controls whether the runtime writes reduction-object
    checkpoints after each gather (charged into ``t_ckpt``).  ``None``
    selects the default: checkpoint exactly when the schedule contains a
    compute-node crash to recover from.  Installing *any* schedule —
    even an empty one — never changes application results; only timing.
    """

    faults: Tuple[FaultSpec, ...] = ()
    checkpoints: Optional[bool] = None

    def __init__(
        self,
        faults: Sequence[FaultSpec] = (),
        checkpoints: Optional[bool] = None,
    ) -> None:
        for fault in faults:
            if not isinstance(
                fault,
                (
                    DataNodeCrash,
                    ComputeNodeCrash,
                    LinkDegradation,
                    SlowNode,
                    ChunkReadError,
                ),
            ):
                raise FaultError(f"not a fault spec: {fault!r}")
        object.__setattr__(self, "faults", tuple(faults))
        object.__setattr__(self, "checkpoints", checkpoints)

    def __len__(self) -> int:
        return len(self.faults)

    def of_type(self, kind: type) -> List[FaultSpec]:
        """All faults of one spec class, in schedule order."""
        return [f for f in self.faults if isinstance(f, kind)]

    @property
    def checkpoints_enabled(self) -> bool:
        """Resolved checkpointing decision (see class docstring)."""
        if self.checkpoints is not None:
            return self.checkpoints
        return any(isinstance(f, ComputeNodeCrash) for f in self.faults)
