"""Grid-scoped fault specifications: what goes wrong *between* jobs.

The specs in :mod:`repro.faults.specs` describe failures inside one
middleware execution (a data node dying mid-pass).  The specs here
describe grid weather as seen by the broker: whole sites disappearing,
node pools shrinking under a site's feet, wide-area paths degrading, and
jobs whose execution attempts fail for reasons outside the middleware's
fault model.  They are delivered as simulated-time events through the
broker's :class:`~repro.broker.events.EventQueue`, so a faulted broker
run is exactly as replayable as a fault-free one.

All times are absolute simulated seconds on the broker clock.  The four
kinds:

- :class:`SiteOutage`         — a whole site (repository or compute) goes
  dark at ``at``; running jobs touching it are preempted, and the site
  returns after ``repair_after`` seconds (``None`` = never).
- :class:`NodePoolShrink`     — a site loses its ``nodes``
  highest-indexed nodes (external users claiming capacity); jobs holding
  one of them are preempted.  ``restore_after`` returns the nodes.
- :class:`WanDegradation`     — an inter-site link loses bandwidth:
  ``factor`` multiplies the network time of every placement whose
  replica-to-compute path crosses the ``(site_a, site_b)`` edge while
  the degradation is active.
- :class:`TransientJobFailure`— the first ``failures`` execution
  attempts of one job abort at ``at_fraction`` of their runtime; the
  broker's recovery policy decides what happens next.

Scope matters: handing one of these to the execution-level scenario
parser (or vice versa) is a configuration error, not a silent no-op —
see :mod:`repro.faults.scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import FaultError

__all__ = [
    "SiteOutage",
    "NodePoolShrink",
    "WanDegradation",
    "TransientJobFailure",
    "GridFaultSpec",
    "GridFaultSchedule",
]


def _check_time(value: float, name: str) -> None:
    if value < 0:
        raise FaultError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class SiteOutage:
    """A whole site is unreachable over ``[at, at + repair_after)``.

    Jobs running on the site (serving data from it or computing on it)
    are preempted at ``at`` and routed through the broker's recovery
    policy.  ``repair_after`` of ``None`` means the site never returns;
    jobs that can only run there end the run terminally failed.
    """

    site: str
    at: float
    repair_after: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.site:
            raise FaultError("site outage needs a site name")
        _check_time(self.at, "at")
        if self.repair_after is not None and self.repair_after <= 0:
            raise FaultError(
                f"repair_after must be positive, got {self.repair_after}"
            )

    @property
    def repaired_at(self) -> Optional[float]:
        if self.repair_after is None:
            return None
        return self.at + self.repair_after


@dataclass(frozen=True)
class NodePoolShrink:
    """A site loses its ``nodes`` highest-indexed nodes at ``at``.

    Jobs holding one of the removed nodes are preempted; the rest of the
    site keeps serving.  ``restore_after`` returns the nodes that many
    seconds later (``None`` = the capacity is gone for the run).
    """

    site: str
    at: float
    nodes: int
    restore_after: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.site:
            raise FaultError("node-pool shrink needs a site name")
        _check_time(self.at, "at")
        if self.nodes < 1:
            raise FaultError(
                f"shrink must remove at least one node, got {self.nodes}"
            )
        if self.restore_after is not None and self.restore_after <= 0:
            raise FaultError(
                f"restore_after must be positive, got {self.restore_after}"
            )


@dataclass(frozen=True)
class WanDegradation:
    """An inter-site edge loses bandwidth over ``[at, at + duration)``.

    ``factor`` multiplies the network time of every placement whose
    replica-to-compute path crosses the undirected ``(site_a, site_b)``
    edge while the degradation is active (sampled at placement start —
    an in-flight transfer keeps the factor it started with).  Factors of
    concurrently active degradations on one path multiply.
    """

    site_a: str
    site_b: str
    factor: float
    at: float = 0.0
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.site_a or not self.site_b:
            raise FaultError("WAN degradation needs two site names")
        if self.site_a == self.site_b:
            raise FaultError("WAN degradation endpoints must differ")
        if self.factor < 1.0:
            raise FaultError(
                f"WAN degradation factor must be >= 1, got {self.factor}"
            )
        _check_time(self.at, "at")
        if self.duration is not None and self.duration <= 0:
            raise FaultError(
                f"duration must be positive, got {self.duration}"
            )

    def crosses(self, path: Sequence[str]) -> bool:
        """Whether a site path uses this (undirected) edge."""
        edge = frozenset((self.site_a, self.site_b))
        return any(
            frozenset((a, b)) == edge for a, b in zip(path, path[1:])
        )


@dataclass(frozen=True)
class TransientJobFailure:
    """The first ``failures`` attempts of one job abort mid-execution.

    ``at_fraction`` is how far each doomed attempt progresses before
    aborting; the time up to the last completed pass is recoverable by a
    checkpoint-aware recovery policy, the rest is wasted.
    """

    job_id: str
    failures: int = 1
    at_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not self.job_id:
            raise FaultError("transient job failure needs a job id")
        if self.failures < 1:
            raise FaultError(
                f"failures must be >= 1, got {self.failures}"
            )
        if not 0.0 <= self.at_fraction < 1.0:
            raise FaultError(
                f"at_fraction must be in [0, 1), got {self.at_fraction}"
            )


GridFaultSpec = Union[
    SiteOutage, NodePoolShrink, WanDegradation, TransientJobFailure
]

_SPEC_TYPES = (SiteOutage, NodePoolShrink, WanDegradation, TransientJobFailure)


@dataclass(frozen=True)
class GridFaultSchedule:
    """An immutable, validated collection of grid fault specs.

    Validation beyond the per-spec checks: outages on one site must not
    overlap (two concurrent outages of the same site have no meaningful
    repair order), and at most one :class:`TransientJobFailure` may
    target a given job.
    """

    faults: Tuple[GridFaultSpec, ...] = ()

    def __init__(self, faults: Sequence[GridFaultSpec] = ()) -> None:
        for fault in faults:
            if not isinstance(fault, _SPEC_TYPES):
                raise FaultError(f"not a grid fault spec: {fault!r}")
        outages: Dict[str, List[SiteOutage]] = {}
        for fault in faults:
            if isinstance(fault, SiteOutage):
                outages.setdefault(fault.site, []).append(fault)
        for site, site_outages in outages.items():
            ordered = sorted(site_outages, key=lambda o: o.at)
            for earlier, later in zip(ordered, ordered[1:]):
                end = earlier.repaired_at
                if end is None or later.at < end:
                    raise FaultError(
                        f"overlapping outages on site '{site}': one "
                        f"starting at t={earlier.at} is still open at "
                        f"t={later.at}"
                    )
        seen_jobs = set()
        for fault in faults:
            if isinstance(fault, TransientJobFailure):
                if fault.job_id in seen_jobs:
                    raise FaultError(
                        f"multiple transient-failure specs for job "
                        f"'{fault.job_id}'; merge them into one"
                    )
                seen_jobs.add(fault.job_id)
        object.__setattr__(self, "faults", tuple(faults))

    def __len__(self) -> int:
        return len(self.faults)

    def of_type(self, kind: type) -> List[GridFaultSpec]:
        """All faults of one spec class, in schedule order."""
        return [f for f in self.faults if isinstance(f, kind)]

    @property
    def transient_failures(self) -> Dict[str, TransientJobFailure]:
        """Transient-failure specs keyed by target job id."""
        return {
            f.job_id: f for f in self.faults
            if isinstance(f, TransientJobFailure)
        }
