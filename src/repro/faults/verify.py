"""Bitwise result comparison between faulted and fault-free runs.

The fault-tolerance guarantee is that recovery never changes what an
application computes: role-preserving redistribution keeps the
reduction-object merge tree identical, so a faulted run's result must be
**bit-identical** to the fault-free run's.  Application results are
heterogeneous (floats, NumPy arrays, dicts, lists of features), so the
equality walk here is what the recovery tests and the fault benchmark
both use.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["results_equal"]


def results_equal(a: Any, b: Any) -> bool:
    """Exact structural equality of two application results.

    Arrays compare element-wise with ``==`` (no tolerance); containers
    compare recursively; scalars compare with ``==``.  NaNs compare equal
    to NaNs in the same positions, so a legitimately-NaN statistic does
    not spuriously fail the bit-identity check.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        x, y = np.asarray(a), np.asarray(b)
        if x.shape != y.shape or x.dtype != y.dtype:
            return False
        return bool(np.array_equal(x, y, equal_nan=x.dtype.kind == "f"))
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            return False
        return all(results_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return False
        return all(results_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return (a == b) or (np.isnan(a) and np.isnan(b))
    return bool(a == b)
