"""Fault injection and fault tolerance for the FREERIDE-G runtime.

The paper's premise is resource selection on *shared, unreliable* grid
resources; this package supplies the unreliable part.  It provides:

- :mod:`repro.faults.specs`    — seeded, schedulable *execution-scoped*
  fault specs (:class:`DataNodeCrash`, :class:`ComputeNodeCrash`,
  :class:`LinkDegradation`, :class:`SlowNode`, transient
  :class:`ChunkReadError`) collected into a :class:`FaultSchedule`.
- :mod:`repro.faults.grid`     — *grid-scoped* fault specs the broker
  consumes (:class:`SiteOutage`, :class:`NodePoolShrink`,
  :class:`WanDegradation`, :class:`TransientJobFailure`) collected into
  a :class:`GridFaultSchedule`.
- :mod:`repro.faults.retry`    — the :class:`RetryPolicy` (attempt
  budget, capped exponential backoff, per-chunk timeout) and the
  job-granularity :class:`BrokerRetryPolicy` built on it.
- :mod:`repro.faults.injector` — the deterministic :class:`FaultInjector`
  and replica-failover selection.
- :mod:`repro.faults.scenario` — JSON scenario files for the
  ``repro run --faults`` and ``repro broker --faults`` CLI flags, with
  scope-aware kind validation.
- :mod:`repro.faults.chaos`    — seeded randomized grid-fault timelines
  and the invariant checker behind the chaos campaigns (imported
  directly, not re-exported here, because it drives the broker).
- :mod:`repro.faults.verify`   — bitwise faulted-vs-fault-free result
  comparison.

The execution-level recovery semantics live in
:class:`repro.middleware.runtime.FreerideGRuntime`; grid-level recovery
lives in :mod:`repro.broker.recovery`; the expected-cost model is
:class:`repro.core.degraded.DegradedModePredictor`.
"""

from repro.errors import FaultError, RecoveryExhaustedError
from repro.faults.grid import (
    GridFaultSchedule,
    GridFaultSpec,
    NodePoolShrink,
    SiteOutage,
    TransientJobFailure,
    WanDegradation,
)
from repro.faults.injector import FaultInjector, select_failover_replica
from repro.faults.retry import (
    DEFAULT_BROKER_RETRY_POLICY,
    DEFAULT_RETRY_POLICY,
    WATCHDOG_RETRY_POLICY,
    BrokerRetryPolicy,
    RetryPolicy,
)
from repro.faults.scenario import (
    EXECUTION_FAULT_KINDS,
    GRID_FAULT_KINDS,
    GridFaultScenario,
    grid_scenario_from_dict,
    grid_schedule_from_dict,
    injector_from_dict,
    load_grid_scenario,
    load_scenario,
    schedule_from_dict,
)
from repro.faults.specs import (
    ChunkReadError,
    ComputeNodeCrash,
    DataNodeCrash,
    FaultSchedule,
    FaultSpec,
    LinkDegradation,
    SlowNode,
)
from repro.faults.verify import results_equal

__all__ = [
    "FaultError",
    "RecoveryExhaustedError",
    "FaultInjector",
    "select_failover_replica",
    "DEFAULT_BROKER_RETRY_POLICY",
    "DEFAULT_RETRY_POLICY",
    "WATCHDOG_RETRY_POLICY",
    "BrokerRetryPolicy",
    "RetryPolicy",
    "EXECUTION_FAULT_KINDS",
    "GRID_FAULT_KINDS",
    "GridFaultScenario",
    "grid_scenario_from_dict",
    "grid_schedule_from_dict",
    "injector_from_dict",
    "load_grid_scenario",
    "load_scenario",
    "schedule_from_dict",
    "ChunkReadError",
    "ComputeNodeCrash",
    "DataNodeCrash",
    "FaultSchedule",
    "FaultSpec",
    "GridFaultSchedule",
    "GridFaultSpec",
    "LinkDegradation",
    "NodePoolShrink",
    "SiteOutage",
    "SlowNode",
    "TransientJobFailure",
    "WanDegradation",
    "results_equal",
]
