"""Fault injection and fault tolerance for the FREERIDE-G runtime.

The paper's premise is resource selection on *shared, unreliable* grid
resources; this package supplies the unreliable part.  It provides:

- :mod:`repro.faults.specs`    — seeded, schedulable fault specs
  (:class:`DataNodeCrash`, :class:`ComputeNodeCrash`,
  :class:`LinkDegradation`, :class:`SlowNode`, transient
  :class:`ChunkReadError`) collected into a :class:`FaultSchedule`.
- :mod:`repro.faults.retry`    — the :class:`RetryPolicy` (attempt
  budget, capped exponential backoff, per-chunk timeout).
- :mod:`repro.faults.injector` — the deterministic :class:`FaultInjector`
  and replica-failover selection.
- :mod:`repro.faults.scenario` — JSON scenario files for the
  ``repro run --faults`` CLI flag.
- :mod:`repro.faults.verify`   — bitwise faulted-vs-fault-free result
  comparison.

The recovery semantics themselves live in
:class:`repro.middleware.runtime.FreerideGRuntime`; the expected-cost
model is :class:`repro.core.degraded.DegradedModePredictor`.
"""

from repro.errors import FaultError, RecoveryExhaustedError
from repro.faults.injector import FaultInjector, select_failover_replica
from repro.faults.retry import (
    DEFAULT_RETRY_POLICY,
    WATCHDOG_RETRY_POLICY,
    RetryPolicy,
)
from repro.faults.scenario import (
    injector_from_dict,
    load_scenario,
    schedule_from_dict,
)
from repro.faults.specs import (
    ChunkReadError,
    ComputeNodeCrash,
    DataNodeCrash,
    FaultSchedule,
    FaultSpec,
    LinkDegradation,
    SlowNode,
)
from repro.faults.verify import results_equal

__all__ = [
    "FaultError",
    "RecoveryExhaustedError",
    "FaultInjector",
    "select_failover_replica",
    "DEFAULT_RETRY_POLICY",
    "WATCHDOG_RETRY_POLICY",
    "RetryPolicy",
    "injector_from_dict",
    "load_scenario",
    "schedule_from_dict",
    "ChunkReadError",
    "ComputeNodeCrash",
    "DataNodeCrash",
    "FaultSchedule",
    "FaultSpec",
    "LinkDegradation",
    "SlowNode",
    "results_equal",
]
