"""The deterministic fault injector.

One :class:`FaultInjector` is installed per execution.  It answers, for
each pass/phase/node, *which faults fire* — entirely deterministically:
scheduled faults fire exactly where their spec says, and rate-driven
transient read errors are drawn from a :class:`random.Random` seeded per
``(seed, pass, data node)``, so the same scenario and seed always yield
the same faulted run (the property-based tests and the degraded-mode
predictor both depend on this).

Replica failover for crashed data nodes goes through the
:class:`~repro.middleware.replica.ReplicaCatalog` when one is attached
(:meth:`FaultInjector.with_catalog` / :func:`select_failover_replica`);
otherwise through a plain list of standby replica site names.  Either
way, a data-node crash with no replica left raises
:class:`~repro.errors.RecoveryExhaustedError`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.errors import FaultError, RecoveryExhaustedError
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.faults.specs import (
    ChunkReadError,
    ComputeNodeCrash,
    DataNodeCrash,
    FaultSchedule,
    LinkDegradation,
    SlowNode,
)
from repro.middleware.replica import ReplicaCatalog

__all__ = ["FaultInjector", "select_failover_replica"]


def select_failover_replica(
    catalog: ReplicaCatalog,
    dataset: str,
    excluded_sites: Sequence[str] = (),
) -> str:
    """The replica site a crashed data node's retrieval fails over to.

    Deterministic: the lexicographically first replica site of ``dataset``
    not in ``excluded_sites`` (the primary and any previously failed
    sites).  Raises :class:`RecoveryExhaustedError` when no replica
    remains.
    """
    excluded = set(excluded_sites)
    candidates = sorted(
        r.site for r in catalog.replicas_of(dataset) if r.site not in excluded
    )
    if not candidates:
        raise RecoveryExhaustedError(
            f"no replica of dataset '{dataset}' remains after excluding "
            f"{sorted(excluded)}"
        )
    return candidates[0]


class FaultInjector:
    """Decides deterministically which faults fire during one execution.

    Parameters
    ----------
    schedule:
        The fault specs to fire.
    policy:
        Retry policy for transient chunk-read errors.
    seed:
        Seed for the rate-driven transient-error draws.
    replica_sites:
        Standby replica sites (site names) available for data-node
        failover, consumed in order; superseded by
        :meth:`with_catalog` when a real replica catalog is available.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        seed: int = 0,
        replica_sites: Sequence[str] = ("standby-replica",),
    ) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise FaultError(
                f"schedule must be a FaultSchedule, got {type(schedule).__name__}"
            )
        self.schedule = schedule
        self.policy = policy
        self.seed = int(seed)
        self._replica_sites: List[str] = list(replica_sites)
        self._catalog: Optional[ReplicaCatalog] = None
        self._catalog_dataset: Optional[str] = None
        self._primary_site: Optional[str] = None
        self._failed_sites: List[str] = []

    # ------------------------------------------------------------------
    # Replica failover
    # ------------------------------------------------------------------

    def with_catalog(
        self,
        catalog: ReplicaCatalog,
        dataset: str,
        primary_site: str,
    ) -> "FaultInjector":
        """Attach a replica catalog for data-node failover selection.

        ``primary_site`` is the repository the run retrieves from; it is
        excluded from failover candidates from the start.
        """
        self._catalog = catalog
        self._catalog_dataset = dataset
        self._primary_site = primary_site
        self._failed_sites = [primary_site]
        return self

    def failover_site(self, failed_data_node: int) -> str:
        """The replica site adopting ``failed_data_node``'s chunk batch.

        Consumes one replica per call: a site that already absorbed a
        crash is not offered again.  Raises
        :class:`RecoveryExhaustedError` when none remain.
        """
        if self._catalog is not None:
            site = select_failover_replica(
                self._catalog, self._catalog_dataset or "", self._failed_sites
            )
            self._failed_sites.append(site)
            return site
        if not self._replica_sites:
            raise RecoveryExhaustedError(
                f"data node {failed_data_node} crashed and no replica "
                "remains to fail over to"
            )
        return self._replica_sites.pop(0)

    # ------------------------------------------------------------------
    # Scheduled fault queries (all deterministic)
    # ------------------------------------------------------------------

    def data_node_crashes(self, pass_index: int) -> List[DataNodeCrash]:
        """Data-node crashes firing in ``pass_index``, by crash fraction."""
        crashes = [
            f
            for f in self.schedule.of_type(DataNodeCrash)
            if f.pass_index == pass_index
        ]
        return sorted(crashes, key=lambda f: (f.at_fraction, f.data_node))

    def compute_node_crashes(self, pass_index: int) -> List[ComputeNodeCrash]:
        """Compute-node crashes firing in ``pass_index``, by crash fraction."""
        crashes = [
            f
            for f in self.schedule.of_type(ComputeNodeCrash)
            if f.pass_index == pass_index
        ]
        return sorted(crashes, key=lambda f: (f.at_fraction, f.compute_node))

    def link_factor(self, data_node: int, pass_index: int) -> float:
        """Communication-time multiplier for one data node in one pass."""
        factor = 1.0
        for f in self.schedule.of_type(LinkDegradation):
            if f.data_node == data_node and f.active(pass_index):
                factor *= f.factor
        return factor

    def slow_factor(self, compute_node: int, pass_index: int) -> float:
        """Local-reduction-time multiplier for one compute node."""
        factor = 1.0
        for f in self.schedule.of_type(SlowNode):
            if f.compute_node == compute_node and f.active(pass_index):
                factor *= f.factor
        return factor

    @property
    def checkpoints_enabled(self) -> bool:
        """Whether the runtime should checkpoint reduction objects."""
        return self.schedule.checkpoints_enabled

    # ------------------------------------------------------------------
    # Transient read errors
    # ------------------------------------------------------------------

    def chunk_failures(
        self, pass_index: int, data_node: int, num_chunks: int
    ) -> Dict[int, int]:
        """Failed-attempt counts per chunk position for one node's batch.

        Explicit :class:`ChunkReadError.failures` maps are taken verbatim
        (and may exhaust the retry budget — the runtime escalates).
        Rate-driven errors are drawn from a sub-seeded generator, capped
        at ``policy.max_failures`` so a storm of transient errors alone
        never kills a run.
        """
        failures: Dict[int, int] = {}
        rate = 0.0
        for spec in self.schedule.of_type(ChunkReadError):
            if not spec.applies(pass_index, data_node):
                continue
            if spec.failures is not None:
                for chunk, count in spec.failures.items():
                    if chunk < num_chunks:
                        failures[chunk] = max(failures.get(chunk, 0), count)
            # Independent rate sources combine as parallel failure odds.
            rate = 1.0 - (1.0 - rate) * (1.0 - spec.rate)
        if rate > 0.0:
            rng = random.Random(f"{self.seed}:transient:{pass_index}:{data_node}")
            for chunk in range(num_chunks):
                drawn = 0
                while drawn < self.policy.max_failures and rng.random() < rate:
                    drawn += 1
                if drawn:
                    failures[chunk] = max(failures.get(chunk, 0), drawn)
        return failures

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, data_nodes: int, compute_nodes: int) -> None:
        """Reject schedules naming nodes outside the run's configuration."""
        for f in self.schedule.of_type(DataNodeCrash):
            if f.data_node >= data_nodes:
                raise FaultError(
                    f"DataNodeCrash names data node {f.data_node}, but the "
                    f"run has only {data_nodes}"
                )
        for f in self.schedule.of_type(ComputeNodeCrash):
            if f.compute_node >= compute_nodes:
                raise FaultError(
                    f"ComputeNodeCrash names compute node {f.compute_node}, "
                    f"but the run has only {compute_nodes}"
                )
        for f in self.schedule.of_type(LinkDegradation):
            if f.data_node >= data_nodes:
                raise FaultError(
                    f"LinkDegradation names data node {f.data_node}, but the "
                    f"run has only {data_nodes}"
                )
        for f in self.schedule.of_type(SlowNode):
            if f.compute_node >= compute_nodes:
                raise FaultError(
                    f"SlowNode names compute node {f.compute_node}, but the "
                    f"run has only {compute_nodes}"
                )
        crashed = {f.compute_node for f in self.schedule.of_type(ComputeNodeCrash)}
        if len(crashed) >= compute_nodes:
            raise RecoveryExhaustedError(
                "the schedule crashes every compute node; at least one "
                "survivor is required"
            )
