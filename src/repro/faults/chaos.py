"""Seeded chaos campaigns over the grid broker.

The tentpole guarantee of the grid fault model is *determinism under
adversity*: whatever weather hits the grid, every admitted job settles
exactly once, no reservation window overlaps a declared outage, and the
whole faulted run replays byte-identically from its ``(seed, scenario)``
pair.  This module turns that guarantee into an executable harness:

- :func:`chaos_timeline` draws a randomized-but-seeded
  :class:`~repro.faults.grid.GridFaultSchedule` against a concrete
  topology and job stream.  Every generated fault is *survivable by
  construction* — outages repair, shrunk pools restore, transient
  failures stay inside the default retry budget — so the stream can in
  principle finish (individual jobs may still strand or exhaust their
  budget; the invariants cover that).
- :func:`verify_run` checks one finished
  :class:`~repro.broker.report.PolicyRun` (plus the broker's node
  ledger) against the invariant suite and returns human-readable
  violations — an empty list is a pass.
- :func:`run_campaign` sweeps many seeds: for each it generates a
  timeline, brokers the stream under it, verifies the invariants, and
  re-runs the identical (seed, scenario) pair asserting a byte-identical
  report.  The result is a :class:`ChaosReport` the resilience benchmark
  serializes.

Imports deliberately flow ``faults.chaos -> broker``, which is why this
module is *not* re-exported from :mod:`repro.faults` (the broker itself
imports ``repro.faults``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.broker.engine import GridBroker
from repro.broker.events import GridLedger
from repro.broker.report import PolicyRun
from repro.core.durable import canonical_json
from repro.faults.grid import (
    GridFaultSchedule,
    GridFaultSpec,
    NodePoolShrink,
    SiteOutage,
    TransientJobFailure,
    WanDegradation,
)
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.topology import GridTopology

__all__ = [
    "ChaosSpec",
    "chaos_timeline",
    "verify_run",
    "ChaosCase",
    "ChaosReport",
    "run_campaign",
]


@dataclass(frozen=True)
class ChaosSpec:
    """Shape of one randomized timeline (all counts are maxima).

    Fault times are drawn uniformly over ``[0, horizon)``; repair and
    restore delays over ``[horizon/20, horizon/2)`` so lost capacity
    returns while the stream is still draining.
    """

    horizon: float
    max_outages: int = 2
    max_shrinks: int = 2
    max_wan: int = 2
    max_transients: int = 2
    max_transient_failures: int = 2

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("chaos horizon must be positive")
        for name in (
            "max_outages", "max_shrinks", "max_wan", "max_transients",
            "max_transient_failures",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")


def chaos_timeline(
    seed: int,
    spec: ChaosSpec,
    topology: GridTopology,
    job_ids: Sequence[str],
) -> GridFaultSchedule:
    """Draw one survivable grid-fault timeline for ``seed``.

    The draw order is fixed (outages, shrinks, WAN degradations,
    transients) — like the stream generator's, it is part of the replay
    format.  At most one outage per site and one transient spec per job
    are drawn, matching :class:`GridFaultSchedule` validation.
    """
    rng = random.Random(seed)
    sites = sorted(site.name for site in topology.sites())
    edges = sorted(
        tuple(sorted((a, b))) for a, b in topology.links()
    )
    faults: List[GridFaultSpec] = []

    def delay() -> float:
        return rng.uniform(spec.horizon / 20.0, spec.horizon / 2.0)

    outage_sites = rng.sample(
        sites, min(rng.randint(0, spec.max_outages), len(sites))
    )
    for site in outage_sites:
        faults.append(
            SiteOutage(
                site=site,
                at=rng.uniform(0.0, spec.horizon),
                repair_after=delay(),
            )
        )
    for _ in range(rng.randint(0, spec.max_shrinks)):
        site = rng.choice(sites)
        nodes = max(1, topology.site(site).cluster.num_nodes // 4)
        faults.append(
            NodePoolShrink(
                site=site,
                at=rng.uniform(0.0, spec.horizon),
                nodes=rng.randint(1, nodes),
                restore_after=delay(),
            )
        )
    if edges:
        for _ in range(rng.randint(0, spec.max_wan)):
            site_a, site_b = rng.choice(edges)
            faults.append(
                WanDegradation(
                    site_a=site_a,
                    site_b=site_b,
                    factor=rng.uniform(1.5, 4.0),
                    at=rng.uniform(0.0, spec.horizon),
                    duration=delay(),
                )
            )
    if job_ids and spec.max_transients:
        targets = rng.sample(
            sorted(job_ids),
            min(rng.randint(0, spec.max_transients), len(job_ids)),
        )
        for job_id in targets:
            faults.append(
                TransientJobFailure(
                    job_id=job_id,
                    failures=rng.randint(1, spec.max_transient_failures),
                    at_fraction=rng.uniform(0.0, 0.95),
                )
            )
    return GridFaultSchedule(faults)


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------


def verify_run(
    run: PolicyRun,
    job_ids: Sequence[str],
    ledger: Optional[GridLedger],
) -> List[str]:
    """Check one finished run against the chaos invariant suite.

    Returns human-readable violations (empty = pass):

    1. **Settled exactly once** — every job of the stream appears exactly
       once across placements, rejections and terminal failures.
    2. **No double-booking** — per (site, node), reservation windows
       never overlap.
    3. **No window inside an outage** — no reservation window overlaps a
       declared :class:`~repro.broker.events.OutageRecord`.
    4. **Books balance** — goodput is in ``(0, 1]`` and wasted time is
       never negative.
    """
    violations: List[str] = []

    settled: Dict[str, int] = {job_id: 0 for job_id in job_ids}
    for placement in run.placements:
        settled[placement.job_id] = settled.get(placement.job_id, 0) + 1
    for rejection in run.rejections:
        settled[rejection.job_id] = settled.get(rejection.job_id, 0) + 1
    for failure in run.failures:
        settled[failure.job_id] = settled.get(failure.job_id, 0) + 1
    for job_id in sorted(settled):
        count = settled[job_id]
        if count != 1:
            violations.append(
                f"job '{job_id}' settled {count} time(s); expected exactly 1"
            )

    if ledger is not None:
        windows = ledger.all_windows()
        by_node: Dict[Tuple[str, int], list] = {}
        for window in windows:
            by_node.setdefault((window.site, window.node), []).append(window)
        for key in sorted(by_node):
            stack = sorted(by_node[key], key=lambda w: (w.start, w.end))
            for earlier, later in zip(stack, stack[1:]):
                if earlier.overlaps(later):
                    violations.append(
                        f"windows overlap on {key[0]}/node{key[1]}: "
                        f"{earlier.job_id}[{earlier.start:.4f},"
                        f"{earlier.end:.4f}) vs {later.job_id}"
                        f"[{later.start:.4f},{later.end:.4f})"
                    )
        for outage in ledger.all_outages():
            for window in windows:
                if outage.covers(window):
                    violations.append(
                        f"window {window.job_id}[{window.start:.4f},"
                        f"{window.end:.4f}) on {window.site}/node"
                        f"{window.node} overlaps outage starting at "
                        f"{outage.start:.4f}"
                    )

    if not 0.0 < run.goodput <= 1.0:
        violations.append(f"goodput {run.goodput} outside (0, 1]")
    if run.wasted_time < 0.0:
        violations.append(f"negative wasted time {run.wasted_time}")
    return violations


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosCase:
    """Outcome of one (seed, timeline) chaos case."""

    seed: int
    faults: int
    completed: int
    rejected: int
    failed: int
    preemptions: int
    goodput: float
    replay_identical: bool
    violations: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.replay_identical and not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": self.faults,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "preemptions": self.preemptions,
            "goodput": self.goodput,
            "replay_identical": self.replay_identical,
            "violations": list(self.violations),
        }


@dataclass(frozen=True)
class ChaosReport:
    """One campaign: per-seed cases plus the aggregate verdict."""

    policy: str
    recovery: str
    cases: Tuple[ChaosCase, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for case in self.cases:
            out.extend(
                f"seed {case.seed}: {violation}"
                for violation in case.violations
            )
            if not case.replay_identical:
                out.append(f"seed {case.seed}: replay diverged")
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "chaos-report",
            "policy": self.policy,
            "recovery": self.recovery,
            "ok": self.ok,
            "cases": [case.to_dict() for case in self.cases],
        }


def _run_bytes(run: PolicyRun) -> bytes:
    from repro.broker.report import _run_to_dict

    return canonical_json(_run_to_dict(run)).encode("utf-8")


def run_campaign(
    broker: GridBroker,
    jobs: Sequence,
    seeds: Sequence[int],
    spec: ChaosSpec,
    *,
    policy: str = "min-completion",
    recovery: str = "resubmit",
) -> ChaosReport:
    """Sweep seeded fault timelines over one job stream.

    Each seed draws a timeline, brokers the stream under it, verifies
    the invariant suite, then replays the identical (seed, scenario)
    pair and compares the serialized reports byte for byte.  The broker
    instance is reused — its memoized executions are deterministic, so
    reuse only makes the campaign faster, never different.
    """
    if not seeds:
        raise ConfigurationError("chaos campaign needs at least one seed")
    job_ids = [job.job_id for job in jobs]
    cases: List[ChaosCase] = []
    for seed in seeds:
        schedule = chaos_timeline(seed, spec, broker.topology, job_ids)
        run = broker.run(jobs, policy, faults=schedule, recovery=recovery)
        violations = verify_run(run, job_ids, broker.last_ledger)
        replay = broker.run(jobs, policy, faults=schedule, recovery=recovery)
        cases.append(
            ChaosCase(
                seed=seed,
                faults=len(schedule),
                completed=len(run.placements),
                rejected=len(run.rejections),
                failed=len(run.failures),
                preemptions=len(run.preemptions),
                goodput=run.goodput,
                replay_identical=_run_bytes(run) == _run_bytes(replay),
                violations=tuple(violations),
            )
        )
    return ChaosReport(policy=policy, recovery=recovery, cases=tuple(cases))
