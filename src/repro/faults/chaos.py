"""Seeded chaos campaigns over the grid broker.

The tentpole guarantee of the grid fault model is *determinism under
adversity*: whatever weather hits the grid, every admitted job settles
exactly once, no reservation window overlaps a declared outage, and the
whole faulted run replays byte-identically from its ``(seed, scenario)``
pair.  This module turns that guarantee into an executable harness:

- :func:`chaos_timeline` draws a randomized-but-seeded
  :class:`~repro.faults.grid.GridFaultSchedule` against a concrete
  topology and job stream.  Every generated fault is *survivable by
  construction* — outages repair, shrunk pools restore, transient
  failures stay inside the default retry budget — so the stream can in
  principle finish (individual jobs may still strand or exhaust their
  budget; the invariants cover that).
- :func:`verify_run` checks one finished
  :class:`~repro.broker.report.PolicyRun` (plus the broker's node
  ledger) against the invariant suite and returns human-readable
  violations — an empty list is a pass.
- :func:`run_campaign` sweeps many seeds: for each it generates a
  timeline, brokers the stream under it, verifies the invariants, and
  re-runs the identical (seed, scenario) pair asserting a byte-identical
  report.  The result is a :class:`ChaosReport` the resilience benchmark
  serializes.

The same guarantee extends to the prediction service: a seeded request
workload against a seeded faulty backend must answer every request
exactly once, honor every deadline up to ε, and replay byte-identically
from its ``(seed, scenario)`` pair.  :class:`ServiceChaosSpec`,
:func:`verify_service_log` and :func:`run_service_campaign` are the
service-layer half of the harness.

Imports deliberately flow ``faults.chaos -> broker / service``, which is
why this module is *not* re-exported from :mod:`repro.faults` (broker
and service themselves import ``repro.faults``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.broker.engine import GridBroker
from repro.broker.events import GridLedger
from repro.broker.report import PolicyRun
from repro.core.durable import canonical_json
from repro.faults.grid import (
    GridFaultSchedule,
    GridFaultSpec,
    NodePoolShrink,
    SiteOutage,
    TransientJobFailure,
    WanDegradation,
)
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.topology import GridTopology

__all__ = [
    "ChaosSpec",
    "chaos_timeline",
    "verify_run",
    "ChaosCase",
    "ChaosReport",
    "run_campaign",
    "ServiceChaosSpec",
    "verify_service_log",
    "ServiceChaosCase",
    "ServiceChaosReport",
    "run_service_campaign",
]


@dataclass(frozen=True)
class ChaosSpec:
    """Shape of one randomized timeline (all counts are maxima).

    Fault times are drawn uniformly over ``[0, horizon)``; repair and
    restore delays over ``[horizon/20, horizon/2)`` so lost capacity
    returns while the stream is still draining.
    """

    horizon: float
    max_outages: int = 2
    max_shrinks: int = 2
    max_wan: int = 2
    max_transients: int = 2
    max_transient_failures: int = 2

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("chaos horizon must be positive")
        for name in (
            "max_outages", "max_shrinks", "max_wan", "max_transients",
            "max_transient_failures",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")


def chaos_timeline(
    seed: int,
    spec: ChaosSpec,
    topology: GridTopology,
    job_ids: Sequence[str],
) -> GridFaultSchedule:
    """Draw one survivable grid-fault timeline for ``seed``.

    The draw order is fixed (outages, shrinks, WAN degradations,
    transients) — like the stream generator's, it is part of the replay
    format.  At most one outage per site and one transient spec per job
    are drawn, matching :class:`GridFaultSchedule` validation.
    """
    rng = random.Random(seed)
    sites = sorted(site.name for site in topology.sites())
    edges = sorted(
        tuple(sorted((a, b))) for a, b in topology.links()
    )
    faults: List[GridFaultSpec] = []

    def delay() -> float:
        return rng.uniform(spec.horizon / 20.0, spec.horizon / 2.0)

    outage_sites = rng.sample(
        sites, min(rng.randint(0, spec.max_outages), len(sites))
    )
    for site in outage_sites:
        faults.append(
            SiteOutage(
                site=site,
                at=rng.uniform(0.0, spec.horizon),
                repair_after=delay(),
            )
        )
    for _ in range(rng.randint(0, spec.max_shrinks)):
        site = rng.choice(sites)
        nodes = max(1, topology.site(site).cluster.num_nodes // 4)
        faults.append(
            NodePoolShrink(
                site=site,
                at=rng.uniform(0.0, spec.horizon),
                nodes=rng.randint(1, nodes),
                restore_after=delay(),
            )
        )
    if edges:
        for _ in range(rng.randint(0, spec.max_wan)):
            site_a, site_b = rng.choice(edges)
            faults.append(
                WanDegradation(
                    site_a=site_a,
                    site_b=site_b,
                    factor=rng.uniform(1.5, 4.0),
                    at=rng.uniform(0.0, spec.horizon),
                    duration=delay(),
                )
            )
    if job_ids and spec.max_transients:
        targets = rng.sample(
            sorted(job_ids),
            min(rng.randint(0, spec.max_transients), len(job_ids)),
        )
        for job_id in targets:
            faults.append(
                TransientJobFailure(
                    job_id=job_id,
                    failures=rng.randint(1, spec.max_transient_failures),
                    at_fraction=rng.uniform(0.0, 0.95),
                )
            )
    return GridFaultSchedule(faults)


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------


def verify_run(
    run: PolicyRun,
    job_ids: Sequence[str],
    ledger: Optional[GridLedger],
) -> List[str]:
    """Check one finished run against the chaos invariant suite.

    Returns human-readable violations (empty = pass):

    1. **Settled exactly once** — every job of the stream appears exactly
       once across placements, rejections and terminal failures.
    2. **No double-booking** — per (site, node), reservation windows
       never overlap.
    3. **No window inside an outage** — no reservation window overlaps a
       declared :class:`~repro.broker.events.OutageRecord`.
    4. **Books balance** — goodput is in ``(0, 1]`` and wasted time is
       never negative.
    """
    violations: List[str] = []

    settled: Dict[str, int] = {job_id: 0 for job_id in job_ids}
    for placement in run.placements:
        settled[placement.job_id] = settled.get(placement.job_id, 0) + 1
    for rejection in run.rejections:
        settled[rejection.job_id] = settled.get(rejection.job_id, 0) + 1
    for failure in run.failures:
        settled[failure.job_id] = settled.get(failure.job_id, 0) + 1
    for job_id in sorted(settled):
        count = settled[job_id]
        if count != 1:
            violations.append(
                f"job '{job_id}' settled {count} time(s); expected exactly 1"
            )

    if ledger is not None:
        windows = ledger.all_windows()
        by_node: Dict[Tuple[str, int], list] = {}
        for window in windows:
            by_node.setdefault((window.site, window.node), []).append(window)
        for key in sorted(by_node):
            stack = sorted(by_node[key], key=lambda w: (w.start, w.end))
            for earlier, later in zip(stack, stack[1:]):
                if earlier.overlaps(later):
                    violations.append(
                        f"windows overlap on {key[0]}/node{key[1]}: "
                        f"{earlier.job_id}[{earlier.start:.4f},"
                        f"{earlier.end:.4f}) vs {later.job_id}"
                        f"[{later.start:.4f},{later.end:.4f})"
                    )
        for outage in ledger.all_outages():
            for window in windows:
                if outage.covers(window):
                    violations.append(
                        f"window {window.job_id}[{window.start:.4f},"
                        f"{window.end:.4f}) on {window.site}/node"
                        f"{window.node} overlaps outage starting at "
                        f"{outage.start:.4f}"
                    )

    if not 0.0 < run.goodput <= 1.0:
        violations.append(f"goodput {run.goodput} outside (0, 1]")
    if run.wasted_time < 0.0:
        violations.append(f"negative wasted time {run.wasted_time}")
    return violations


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosCase:
    """Outcome of one (seed, timeline) chaos case."""

    seed: int
    faults: int
    completed: int
    rejected: int
    failed: int
    preemptions: int
    goodput: float
    replay_identical: bool
    violations: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.replay_identical and not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": self.faults,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "preemptions": self.preemptions,
            "goodput": self.goodput,
            "replay_identical": self.replay_identical,
            "violations": list(self.violations),
        }


@dataclass(frozen=True)
class ChaosReport:
    """One campaign: per-seed cases plus the aggregate verdict."""

    policy: str
    recovery: str
    cases: Tuple[ChaosCase, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for case in self.cases:
            out.extend(
                f"seed {case.seed}: {violation}"
                for violation in case.violations
            )
            if not case.replay_identical:
                out.append(f"seed {case.seed}: replay diverged")
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "chaos-report",
            "policy": self.policy,
            "recovery": self.recovery,
            "ok": self.ok,
            "cases": [case.to_dict() for case in self.cases],
        }


def _run_bytes(run: PolicyRun) -> bytes:
    from repro.broker.report import _run_to_dict

    return canonical_json(_run_to_dict(run)).encode("utf-8")


def run_campaign(
    broker: GridBroker,
    jobs: Sequence,
    seeds: Sequence[int],
    spec: ChaosSpec,
    *,
    policy: str = "min-completion",
    recovery: str = "resubmit",
) -> ChaosReport:
    """Sweep seeded fault timelines over one job stream.

    Each seed draws a timeline, brokers the stream under it, verifies
    the invariant suite, then replays the identical (seed, scenario)
    pair and compares the serialized reports byte for byte.  The broker
    instance is reused — its memoized executions are deterministic, so
    reuse only makes the campaign faster, never different.
    """
    if not seeds:
        raise ConfigurationError("chaos campaign needs at least one seed")
    job_ids = [job.job_id for job in jobs]
    cases: List[ChaosCase] = []
    for seed in seeds:
        schedule = chaos_timeline(seed, spec, broker.topology, job_ids)
        run = broker.run(jobs, policy, faults=schedule, recovery=recovery)
        violations = verify_run(run, job_ids, broker.last_ledger)
        replay = broker.run(jobs, policy, faults=schedule, recovery=recovery)
        cases.append(
            ChaosCase(
                seed=seed,
                faults=len(schedule),
                completed=len(run.placements),
                rejected=len(run.rejections),
                failed=len(run.failures),
                preemptions=len(run.preemptions),
                goodput=run.goodput,
                replay_identical=_run_bytes(run) == _run_bytes(replay),
                violations=tuple(violations),
            )
        )
    return ChaosReport(policy=policy, recovery=recovery, cases=tuple(cases))


# ----------------------------------------------------------------------
# Service-layer chaos
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceChaosSpec:
    """One service chaos scenario: workload shape + backend weather.

    The workload seed and the fault seed are both derived from the
    case seed (``seed`` and ``seed + 1``), so a case is fully described
    by ``(seed, spec)`` — the replay key.
    """

    requests: int = 300
    rate_hz: float = 600.0
    slow_probability: float = 0.15
    crash_probability: float = 0.10
    corrupt_probability: float = 0.05
    tight_deadline_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigurationError("service chaos needs >= 1 request")
        if self.rate_hz <= 0:
            raise ConfigurationError("arrival rate must be positive")


def _service_breaker_violations(service: Any) -> List[str]:
    """Re-derive breaker state-machine legality from the transition log.

    The breaker enforces its edges at runtime; the harness audits the
    *recorded* history independently — every walk must start CLOSED,
    chain contiguously (no lost transitions), use only legal edges, and
    move forward in time.
    """
    from repro.service.resilience import BreakerState

    legal = {
        (BreakerState.CLOSED, BreakerState.OPEN),
        (BreakerState.OPEN, BreakerState.HALF_OPEN),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        (BreakerState.HALF_OPEN, BreakerState.OPEN),
    }
    violations: List[str] = []
    bank = service.breakers
    for key in sorted(bank._breakers):
        breaker = bank._breakers[key]
        label = f"{key[0]} @ {key[1]}"
        state = BreakerState.CLOSED
        last_at = float("-inf")
        for transition in breaker.transitions:
            if transition.source is not state:
                violations.append(
                    f"breaker {label}: transition log lost an edge — "
                    f"expected source {state.value}, recorded "
                    f"{transition.source.value}"
                )
            if (transition.source, transition.target) not in legal:
                violations.append(
                    f"breaker {label}: illegal edge "
                    f"{transition.source.value} -> {transition.target.value}"
                )
            if transition.at_s < last_at:
                violations.append(
                    f"breaker {label}: transitions out of order at "
                    f"t={transition.at_s:.6f}"
                )
            state = transition.target
            last_at = transition.at_s
        if breaker.state is not state:
            violations.append(
                f"breaker {label}: live state {breaker.state.value} does "
                f"not match replayed transition log ({state.value})"
            )
    return violations


def verify_service_log(service: Any, requests: Sequence[Any]) -> List[str]:
    """Check a served scenario against the service invariant suite.

    Returns human-readable violations (empty = pass):

    1. **Settled exactly once** — every submitted request id appears
       exactly once in the request log; nothing extra, nothing missing.
    2. **Shedding is loud** — every shed request carries HTTP 429 (the
       adapter adds the ``Retry-After``); admission books balance
       (admitted + shed = submitted).
    3. **Deadlines hold** — each settled latency is at most the
       request's declared deadline (or the config default) + ε.
    4. **Status/outcome coherence** — stale serves are 200s flagged
       ``stale``; fresh serves never are.
    5. **Breaker history is lossless** — the recorded transition log
       replays to the live state using only legal edges.
    """
    violations: List[str] = []
    config = service.config
    by_id = {request.request_id: request for request in requests}
    seen: Dict[str, int] = {}
    for record in service.log.records:
        seen[record.request_id] = seen.get(record.request_id, 0) + 1
    for request_id in sorted(by_id):
        count = seen.pop(request_id, 0)
        if count != 1:
            violations.append(
                f"request '{request_id}' settled {count} time(s); "
                "expected exactly 1"
            )
    for request_id in sorted(seen):
        violations.append(
            f"request '{request_id}' settled but was never submitted"
        )

    epsilon = config.deadline_epsilon_s
    for record in service.log.records:
        request = by_id.get(record.request_id)
        if request is None:
            continue
        if record.settled_s < record.arrival_s:
            violations.append(
                f"request '{record.request_id}' settled before it arrived"
            )
        deadline = (
            request.deadline_s
            if request.deadline_s is not None
            else config.default_deadline_s
        )
        if record.latency_s > deadline + epsilon:
            violations.append(
                f"request '{record.request_id}' latency "
                f"{record.latency_s:.6f}s exceeds deadline "
                f"{deadline:.6f}s + eps {epsilon:.6f}s"
            )
        if record.outcome == "shed" and record.status != 429:
            violations.append(
                f"shed request '{record.request_id}' answered with "
                f"{record.status}, not 429"
            )
        if record.outcome == "stale" and not (
            record.status == 200 and record.stale
        ):
            violations.append(
                f"stale serve '{record.request_id}' must be a 200 "
                "flagged stale"
            )
        if record.outcome == "ok" and record.stale:
            violations.append(
                f"fresh serve '{record.request_id}' is flagged stale"
            )

    submitted = len(requests)
    booked = service.bucket.admitted + service.bucket.shed
    duplicates = submitted - len(by_id)
    if booked + duplicates != submitted:
        violations.append(
            f"admission books do not balance: {service.bucket.admitted} "
            f"admitted + {service.bucket.shed} shed != {submitted} "
            "submitted"
        )

    violations.extend(_service_breaker_violations(service))
    return violations


@dataclass(frozen=True)
class ServiceChaosCase:
    """Outcome of one (seed, spec) service chaos case."""

    seed: int
    requests: int
    served: int
    shed: int
    stale_served: int
    breaker_opens: int
    injected: Tuple[Tuple[str, int], ...]
    replay_identical: bool
    violations: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.replay_identical and not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "served": self.served,
            "shed": self.shed,
            "stale_served": self.stale_served,
            "breaker_opens": self.breaker_opens,
            "injected": {kind: count for kind, count in self.injected},
            "replay_identical": self.replay_identical,
            "violations": list(self.violations),
        }


@dataclass(frozen=True)
class ServiceChaosReport:
    """One service campaign: per-seed cases plus the aggregate verdict."""

    spec: ServiceChaosSpec
    cases: Tuple[ServiceChaosCase, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for case in self.cases:
            out.extend(
                f"seed {case.seed}: {violation}"
                for violation in case.violations
            )
            if not case.replay_identical:
                out.append(f"seed {case.seed}: replay diverged")
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "service-chaos-report",
            "spec": {
                "requests": self.spec.requests,
                "rate_hz": self.spec.rate_hz,
                "slow_probability": self.spec.slow_probability,
                "crash_probability": self.spec.crash_probability,
                "corrupt_probability": self.spec.corrupt_probability,
                "tight_deadline_fraction": (
                    self.spec.tight_deadline_fraction
                ),
            },
            "ok": self.ok,
            "cases": [case.to_dict() for case in self.cases],
        }


def _serve_case(seed: int, spec: ServiceChaosSpec) -> Any:
    """Build and drive one fresh service for a (seed, spec) case."""
    from repro.service.app import PredictionService, serve_sequence
    from repro.service.backends import (
        BackendFaultSpec,
        ServiceBackend,
        ServiceFaultInjector,
    )
    from repro.service.workload import demo_profiles, generate_requests

    profiles = demo_profiles()
    injector = ServiceFaultInjector(
        seed + 1,
        BackendFaultSpec(
            slow_probability=spec.slow_probability,
            crash_probability=spec.crash_probability,
            corrupt_probability=spec.corrupt_probability,
        ),
    )
    service = PredictionService(
        profiles,
        backend=ServiceBackend(injector=injector),
        campaign_journals={"demo": "service-chaos-demo.journal"},
    )
    requests = generate_requests(
        seed,
        spec.requests,
        spec.rate_hz,
        sorted(profiles),
        tight_deadline_fraction=spec.tight_deadline_fraction,
    )
    serve_sequence(service, requests)
    return service, requests


def _service_log_bytes(service: Any) -> bytes:
    return canonical_json(service.log.to_dict()).encode("utf-8")


def run_service_campaign(
    seeds: Sequence[int],
    spec: Optional[ServiceChaosSpec] = None,
) -> ServiceChaosReport:
    """Sweep seeds through the service chaos suite.

    Each seed generates a workload and a backend fault stream, serves
    the scenario on a fresh virtual-clock service, verifies the
    invariant suite, then serves the identical (seed, spec) pair on a
    second fresh service and compares the canonical request logs byte
    for byte.
    """
    if not seeds:
        raise ConfigurationError(
            "service chaos campaign needs at least one seed"
        )
    spec = spec if spec is not None else ServiceChaosSpec()
    cases: List[ServiceChaosCase] = []
    for seed in seeds:
        service, requests = _serve_case(seed, spec)
        violations = verify_service_log(service, requests)
        replay_service, _ = _serve_case(seed, spec)
        summary = service.log.summary()
        injected = (
            service.backend.injector.injected
            if service.backend.injector is not None
            else {}
        )
        cases.append(
            ServiceChaosCase(
                seed=seed,
                requests=len(requests),
                served=summary["served"],
                shed=summary["shed"],
                stale_served=summary["stale_served"],
                breaker_opens=service.breakers.total_opens(),
                injected=tuple(sorted(injected.items())),
                replay_identical=(
                    _service_log_bytes(service)
                    == _service_log_bytes(replay_service)
                ),
                violations=tuple(violations),
            )
        )
    return ServiceChaosReport(spec=spec, cases=tuple(cases))
