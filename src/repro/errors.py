"""The framework-wide exception hierarchy.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the framework can catch one type uniformly:

- :class:`repro.simgrid.errors.SimulationError` — the simulation
  substrate's branch (configuration, topology, engine misuse).
- :class:`FaultError` — the fault-injection / fault-tolerance branch
  (:mod:`repro.faults`): malformed fault schedules, and
  :class:`RecoveryExhaustedError` when recovery cannot proceed.
- :class:`CampaignError` — the campaign-engine branch
  (:mod:`repro.campaign`): malformed manifests, journal misuse,
  watchdog deadline overruns, and operator interrupts.
- :class:`repro.core.durable.StoreError` — the durable-persistence
  branch: corrupt stored documents and unsupported format versions.

The branches live in their own modules; this module only anchors the
hierarchy so that ``repro.simgrid`` does not need to import ``repro.faults``
or vice versa.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FaultError",
    "RecoveryExhaustedError",
    "CampaignError",
    "UsageError",
    "InternalError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro framework."""


class UsageError(ReproError):
    """A library API was called in violation of its documented contract.

    Raised when an embedder passes arguments a docstring rules out (an
    empty reduction-object list to ``merge_local``, a malformed sample to
    ``farthest_point_init``).  The caller is at fault, but embedders still
    catch it under :class:`ReproError` like every other framework failure.
    """


class InternalError(ReproError):
    """An internal invariant was violated — a framework bug, not misuse.

    Raised from "unreachable" branches so that even a bug in the framework
    surfaces as a classified :class:`ReproError` instead of a bare builtin
    exception escaping the error model.
    """


class FaultError(ReproError):
    """A fault schedule or fault-tolerance operation is invalid.

    Raised for malformed fault specs (negative rates, out-of-range node
    indices, crash fractions outside ``[0, 1]``) and for misuse of the
    fault-injection API.
    """


class RecoveryExhaustedError(FaultError):
    """Recovery cannot make progress and the run must abort.

    Raised when a transient chunk-read error persists past the retry
    policy's attempt budget, when a data node crashes and no replica of the
    dataset remains to fail over to, or when every compute node has
    crashed.
    """


class CampaignError(ReproError):
    """A campaign manifest, journal, or runner operation is invalid.

    Raised for malformed campaign manifests, for attempts to overwrite an
    existing journal without ``--resume``, and as the base class of the
    runner's control-flow exceptions (deadline overruns, interrupts).
    """
