"""Command-line interface.

Subcommands
-----------
- ``repro list-workloads`` — the available workloads and dataset sizes.
- ``repro run WORKLOAD -n N -c C [...]`` — execute a workload on the
  simulated grid and print the time breakdown; optionally save the profile.
- ``repro predict PROFILE.json -n N -c C [...]`` — predict a target
  configuration from a saved profile.
- ``repro classify WORKLOAD`` — auto-detect the workload's model classes
  from multiple profile runs (the paper's Section 3.3 procedure).
- ``repro figure FIGID [--fast]`` — reproduce one paper figure.
- ``repro suite [--journal PATH --resume]`` — run the whole evaluation,
  optionally crash-safely on the campaign engine.
- ``repro campaign MANIFEST.json [--resume]`` — run a user-defined
  campaign with a durable journal, watchdog deadlines, and graceful
  SIGINT/SIGTERM checkpointing (exit code 75 = interrupted, resumable).
- ``repro lint [PATHS]`` — the AST-based contract checker enforcing the
  repo's determinism/durability/error-model invariants (see DESIGN.md
  §13); exits non-zero on any non-baselined finding.
- ``repro serve`` — prediction-as-a-service: a seeded simulated smoke
  run by default, the service chaos campaign with ``--chaos``, or a
  real stdlib HTTP server with ``--port`` (see DESIGN.md §15).
- ``repro trace generate|load|run`` — trace-realistic workloads: expand
  a named preset into a fingerprinted trace artifact, import a Grid
  Workload Archive ``.gwf`` file, or broker a saved trace over the
  reference grid (see DESIGN.md §16).

All times are in the simulator's model units (see DESIGN.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import format_experiment, format_fault_events
from repro.core import (
    GlobalReductionModel,
    ModelClasses,
    NoCommunicationModel,
    PredictionTarget,
    Profile,
    ReductionCommunicationModel,
    classify_global_reduction,
    classify_object_size,
)
from repro.core.store import load_profile, save_profile
from repro.errors import ReproError
from repro.faults import load_scenario
from repro.middleware import FreerideGRuntime
from repro.workloads.clusters import (
    DEFAULT_BANDWIDTH,
    opteron_infiniband_cluster,
    pentium_myrinet_cluster,
)
from repro.workloads.configs import make_run_config
from repro.workloads.experiments import EXPERIMENTS, run_experiment
from repro.workloads.registry import WORKLOADS

__all__ = ["main"]

_CLUSTERS = {
    "pentium-myrinet": pentium_myrinet_cluster,
    "opteron-infiniband": opteron_infiniband_cluster,
}

_MODELS = {
    "no-communication": lambda classes: NoCommunicationModel(),
    "reduction-communication": ReductionCommunicationModel,
    "global-reduction": GlobalReductionModel,
}


def _print_breakdown(breakdown) -> None:
    print(f"  T_disk    = {breakdown.t_disk:10.4f} s")
    print(f"  T_network = {breakdown.t_network:10.4f} s")
    print(
        f"  T_compute = {breakdown.t_compute:10.4f} s "
        f"(T_ro={breakdown.t_ro:.5f}, T_g={breakdown.t_g:.5f})"
    )
    t_ckpt = getattr(breakdown, "t_ckpt", 0.0)
    if t_ckpt:
        print(f"  T_ckpt    = {t_ckpt:10.4f} s")
    print(f"  total     = {breakdown.total:10.4f} s")


def _cmd_list_workloads(_args) -> int:
    for name, spec in sorted(WORKLOADS.items()):
        sizes = ", ".join(sorted(spec.dataset_sizes_gb))
        origin = "paper eval" if spec.in_paper_evaluation else "extension"
        print(f"{name:10s} [{origin}]  sizes: {sizes}")
    return 0


def _cmd_run(args) -> int:
    spec = WORKLOADS.get(args.workload)
    if spec is None:
        print(f"unknown workload '{args.workload}'", file=sys.stderr)
        return 2
    dataset = spec.make_dataset(args.size)
    cluster = _CLUSTERS[args.cluster]()
    config = make_run_config(
        args.data_nodes,
        args.compute_nodes,
        storage_cluster=cluster,
        bandwidth=args.bandwidth,
    ).with_processes_per_node(args.processes_per_node)
    injector = load_scenario(args.faults) if args.faults else None
    run = FreerideGRuntime(config, faults=injector).execute(
        spec.make_app(), dataset
    )
    print(
        f"{args.workload} on {config.label} ({args.cluster}), "
        f"dataset {dataset.name} ({dataset.nbytes:.0f} model bytes), "
        f"{run.breakdown.num_passes} pass(es):"
    )
    _print_breakdown(run.breakdown)
    if injector is not None:
        print(format_fault_events(run.breakdown))
    if args.save_profile:
        profile = Profile.from_run(config, run.breakdown)
        path = save_profile(profile, args.save_profile)
        print(f"profile saved to {path}")
    return 0


def _cmd_predict(args) -> int:
    profile = load_profile(args.profile)
    spec = WORKLOADS.get(profile.app)
    if args.model == "no-communication":
        model = NoCommunicationModel()
    else:
        if spec is not None:
            classes = ModelClasses.parse(
                spec.natural_object_class, spec.natural_global_class
            )
        else:
            classes = ModelClasses.parse(
                args.object_class, args.global_class
            )
        model = _MODELS[args.model](classes)

    cluster = _CLUSTERS[args.cluster]()
    config = make_run_config(
        args.data_nodes,
        args.compute_nodes,
        storage_cluster=cluster,
        bandwidth=args.bandwidth,
    )
    dataset_bytes = (
        args.dataset_bytes if args.dataset_bytes else profile.dataset_bytes
    )
    target = PredictionTarget(config=config, dataset_bytes=dataset_bytes)
    predicted = model.predict(profile, target)
    print(
        f"predicting {profile.app} on {config.label} ({args.cluster}) from "
        f"the {profile.label} profile, with the {args.model} model:"
    )
    _print_breakdown(predicted)
    return 0


def _cmd_classify(args) -> int:
    spec = WORKLOADS.get(args.workload)
    if spec is None:
        print(f"unknown workload '{args.workload}'", file=sys.stderr)
        return 2
    sizes = sorted(spec.dataset_sizes_gb, key=spec.dataset_sizes_gb.get)
    runs = [(1, 1, sizes[0]), (1, 4, sizes[0]), (1, 1, sizes[-1])]
    profiles = []
    for n, c, size in runs:
        dataset = spec.make_dataset(size)
        config = make_run_config(n, c)
        result = FreerideGRuntime(config).execute(spec.make_app(), dataset)
        profiles.append(Profile.from_run(config, result.breakdown))
        print(f"  profiled {n}-{c} @ {size}")
    obj_class = classify_object_size(profiles)
    tg_class = classify_global_reduction(profiles)
    print(f"reduction object size class: {obj_class.value}")
    print(f"global reduction time class: {tg_class.value}")
    return 0


def _cmd_figure(args) -> int:
    result = run_experiment(args.figure, fast=args.fast)
    print(format_experiment(result))
    if args.chart:
        from repro.analysis import error_bar_chart

        print()
        for model in result.models:
            print(error_bar_chart(result, model))
            print()
    return 0


def _cmd_whatif(args) -> int:
    from repro.core.whatif import (
        marginal_speedups,
        recommend_nodes,
        sweep_configurations,
    )
    from repro.workloads.configs import PAPER_CONFIG_GRID

    profile = load_profile(args.profile)
    spec = WORKLOADS.get(profile.app)
    if spec is not None:
        classes = ModelClasses.parse(
            spec.natural_object_class, spec.natural_global_class
        )
    else:
        classes = ModelClasses.parse("constant", "linear-constant")
    model = GlobalReductionModel(classes)
    cluster = _CLUSTERS[args.cluster]()
    template = make_run_config(1, 1, storage_cluster=cluster,
                               bandwidth=args.bandwidth)

    forecasts = sweep_configurations(
        profile, model, template, PAPER_CONFIG_GRID
    )
    print(f"predicted execution time of {profile.app} per configuration:")
    for f in forecasts:
        print(f"  {f.label:>6} {f.predicted_total:10.4f}s "
              f"({f.node_cost} machines)")
    scale_up = [f for f in forecasts if f.data_nodes == 1]
    print("\nmarginal speedups along the 1-data-node column:")
    for frm, to, speedup in marginal_speedups(scale_up):
        print(f"  {frm} -> {to}: {speedup:.2f}x")
    pick = recommend_nodes(forecasts, tolerance=args.tolerance)
    print(f"\nrecommended (within {100 * args.tolerance:.0f}% of fastest, "
          f"fewest machines): {pick.label} "
          f"at {pick.predicted_total:.4f}s")
    return 0


def _cmd_suite(args) -> int:
    from repro.workloads.suite import run_paper_suite

    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    if args.journal:
        from repro.analysis import format_campaign
        from repro.campaign import CampaignRunner, paper_suite_manifest

        manifest = paper_suite_manifest(
            fast=args.fast,
            experiment_ids=args.only or None,
            deadline_s=args.deadline,
        )
        runner = CampaignRunner(
            manifest,
            args.journal,
            results_dir=args.results_dir,
            progress=print,
        )
        report = runner.run(resume=args.resume)
        print()
        print(format_campaign(report))
        if report.ok:
            print("\nall experiments match the paper's claims")
        return report.exit_code

    report = run_paper_suite(
        fast=args.fast,
        experiment_ids=args.only or None,
        progress=print,
    )
    print()
    for line in report.summary_lines():
        print(line)
    if report.ok:
        print("\nall experiments match the paper's claims")
        return 0
    print(f"\n{len(report.failures)} experiment(s) no longer match the paper")
    return 1


def _cmd_campaign(args) -> int:
    from repro.analysis import format_campaign
    from repro.campaign import CampaignRunner, load_manifest
    from repro.faults import RetryPolicy

    manifest = load_manifest(args.manifest)
    journal = args.journal or f"{args.manifest}.journal.json"
    policy = None
    if args.max_attempts is not None:
        policy = RetryPolicy(
            max_attempts=args.max_attempts,
            base_backoff_s=0.0,
            backoff_factor=1.0,
            max_backoff_s=0.0,
        )
    if args.workers is not None and args.workers > 1:
        from repro.campaign import ParallelCampaignRunner

        runner = ParallelCampaignRunner(
            manifest,
            journal,
            workers=args.workers,
            retry_policy=policy,
            results_dir=args.results_dir,
            progress=print,
        )
    else:
        runner = CampaignRunner(
            manifest,
            journal,
            retry_policy=policy,
            results_dir=args.results_dir,
            progress=print,
        )
    report = runner.run(resume=args.resume)
    print()
    print(format_campaign(report))
    return report.exit_code


def _cmd_broker(args) -> int:
    from repro.analysis import format_broker
    from repro.broker import POLICY_NAMES, GridBroker, load_workload_document
    from repro.faults import BrokerRetryPolicy, load_grid_scenario

    doc = load_workload_document(args.workload)
    broker = GridBroker.from_document(doc, alpha=args.alpha)
    jobs = broker.resolve_jobs(doc)
    policies = args.policy or list(POLICY_NAMES)
    faults = None
    recovery = args.recovery or "resubmit"
    retry = None
    if args.faults:
        scenario = load_grid_scenario(args.faults)
        faults = scenario.schedule
        retry = scenario.retry
        if args.recovery is None and scenario.recovery is not None:
            recovery = scenario.recovery
    if args.retry_attempts is not None:
        retry = BrokerRetryPolicy.with_attempts(args.retry_attempts)
    report = broker.compare(
        doc.name,
        jobs,
        policies,
        include_uncalibrated=not args.no_calibration_baseline,
        faults=faults,
        recovery=recovery,
        retry=retry,
        engine=args.engine,
    )
    print(format_broker(report, schedule=args.schedule))
    if args.report:
        path = report.save(args.report)
        print(f"\nreport written to {path}")
    return 0


def _cmd_serve(args) -> int:
    from repro.analysis import format_service_chaos, format_service_metrics
    from repro.service import (
        MonotonicClock,
        PredictionService,
        ResilienceConfig,
        ServiceBackend,
        ServiceCostModel,
        VirtualClock,
        demo_profiles,
        generate_requests,
        serve_sequence,
    )

    if args.chaos:
        from repro.faults.chaos import ServiceChaosSpec, run_service_campaign

        spec = ServiceChaosSpec(requests=args.requests, rate_hz=args.rate)
        report = run_service_campaign(
            seeds=range(args.seed, args.seed + args.cases), spec=spec
        )
        print(format_service_chaos(report))
        return 0 if report.ok else 1

    profiles = demo_profiles()
    config = ResilienceConfig(admission_rate=args.rate, admission_burst=64.0)
    if args.port is not None:
        from repro.service import make_server

        service = PredictionService(
            profiles,
            clock=MonotonicClock(),
            config=config,
            backend=ServiceBackend(ServiceCostModel()),
        )
        server = make_server(service, host=args.host, port=args.port)
        host, port = server.server_address[:2]
        print(f"serving on http://{host}:{port}/v1/  (Ctrl-C to stop)")
        try:
            server.serve_forever(poll_interval=0.5)
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            server.server_close()
        print()
        print(format_service_metrics(service.metrics()))
        return 0

    service = PredictionService(
        profiles,
        clock=VirtualClock(),
        config=config,
        backend=ServiceBackend(ServiceCostModel()),
        campaign_journals={"demo": "service-demo.journal"},
    )
    requests = generate_requests(
        args.seed, args.requests, args.rate, profiles
    )
    responses = serve_sequence(service, requests)
    print(
        f"smoke: served {len(responses)} seeded request(s) "
        f"(seed {args.seed}, {args.rate:g} req/s offered)"
    )
    print(format_service_metrics(service.metrics()))
    return 0


def _load_trace(path: str):
    """A trace from an artifact JSON or (by extension) a ``.gwf`` file."""
    from repro.workloads.traces import TraceWorkload, parse_gwf

    if path.endswith(".gwf"):
        return parse_gwf(path)
    return TraceWorkload.load(path)


def _cmd_trace(args) -> int:
    from repro.analysis import format_trace
    from repro.workloads.traces import (
        REFERENCE_ALLOCATIONS,
        TraceWorkload,
        make_preset,
        reference_grid,
    )

    if args.trace_command == "generate":
        from repro.broker import GridBroker

        spec = make_preset(args.preset, args.count, seed=args.seed)
        # Deadlines are slack multiples of the best predicted execution
        # time on the reference grid — the grid `repro trace run` uses.
        broker = GridBroker(reference_grid(), REFERENCE_ALLOCATIONS)
        trace = TraceWorkload.from_spec(
            spec, baselines=broker.baseline_estimate
        )
        print(format_trace(trace))
        out = args.output or f"{args.preset}-{args.count}.trace.json"
        path = trace.save(out)
        print(f"\ntrace artifact written to {path}")
        return 0

    if args.trace_command == "load":
        trace = _load_trace(args.source)
        print(format_trace(trace))
        if args.output:
            path = trace.save(args.output)
            print(f"\ntrace artifact written to {path}")
        return 0

    # "run" — broker the trace over the reference grid.
    from repro.analysis import format_broker
    from repro.broker import GridBroker

    trace = _load_trace(args.trace)
    broker = GridBroker(
        reference_grid(), REFERENCE_ALLOCATIONS, alpha=args.alpha
    )
    policies = args.policy or ["min-completion"]
    report = broker.compare(
        trace.name,
        list(trace.jobs),
        policies,
        include_uncalibrated=args.calibration_baseline,
        engine=args.engine,
    )
    print(format_trace(trace))
    print()
    print(format_broker(report, schedule=args.schedule))
    stats = broker.last_queue_stats
    if stats:
        print(
            f"\nqueue pressure ({stats.get('engine', '?')} engine): "
            f"{stats.get('events', 0)} events, peak event queue "
            f"{stats.get('peak_event_queue_depth', 0)}, peak wait queue "
            f"{stats.get('peak_pending_depth', 0)}"
        )
    if args.report:
        path = report.save(args.report)
        print(f"\nreport written to {path}")
    return 0


def _profile_workload(count: int):
    """The pinned profiling workload (deterministic, no wall-clock).

    Four legs, each exercising one declared-hot subsystem: the
    discrete-event simulator, the phased and pipelined middleware
    runtimes (fault-free and with a compute-node crash), and the grid
    broker under site/WAN/transient faults plus one impossible-deadline
    job so the rejection path runs.  ``count`` scales the simulator
    event count and the broker stream so CI can cap the work.
    """
    import random

    def run() -> None:
        from repro.simgrid.engine import Simulator

        sim = Simulator()
        sink: list = []
        rng = random.Random(7)
        events = [
            sim.schedule(rng.uniform(0.0, 100.0), sink.append, i)
            for i in range(count * 5)
        ]
        for i, event in enumerate(events):
            if i % 7 == 0:
                event.cancel()
        sim.run()

        from repro.faults import (
            ComputeNodeCrash,
            FaultInjector,
            FaultSchedule,
        )
        from repro.middleware.pipelined import PipelinedRuntime
        from repro.workloads import make_app, make_dataset

        config = make_run_config(2, 4)
        dataset = make_dataset("kmeans")
        FreerideGRuntime(config).execute(make_app("kmeans"), dataset)
        PipelinedRuntime(config).execute(make_app("kmeans"), dataset)
        injector = FaultInjector(FaultSchedule([ComputeNodeCrash(0, 1)]))
        FreerideGRuntime(config, faults=injector).execute(
            make_app("kmeans"), dataset
        )

        from repro.broker import GridBroker
        from repro.broker.jobs import BrokerJob
        from repro.faults import (
            GridFaultSchedule,
            SiteOutage,
            TransientJobFailure,
            WanDegradation,
        )
        from repro.workloads.streams import StreamSpec, generate_stream
        from repro.workloads.traces import (
            REFERENCE_ALLOCATIONS,
            reference_grid,
        )

        grid = reference_grid()
        compute = [site.name for site in grid.compute_sites()]
        broker = GridBroker(grid, REFERENCE_ALLOCATIONS)
        spec = StreamSpec(
            count=count,
            seed=11,
            mean_interarrival=0.08,
            mix=(
                ("kmeans", None, 2.0),
                ("knn", None, 1.0),
                ("vortex", None, 1.0),
                ("em", None, 1.0),
            ),
            deadline_fraction=0.4,
            deadline_slack=(1.2, 3.0),
            priorities=(0, 1),
        )
        jobs = generate_stream(spec, baselines=broker.baseline_estimate)
        jobs.append(
            BrokerJob(
                job_id="doomed",
                workload="kmeans",
                arrival=0.0,
                deadline=1e-6,
            )
        )
        schedule = GridFaultSchedule(
            [
                SiteOutage(site=compute[0], at=0.5, repair_after=1.0),
                WanDegradation(
                    site_a=compute[0],
                    site_b=compute[1],
                    factor=2.0,
                    at=0.0,
                    duration=5.0,
                ),
                TransientJobFailure(job_id=jobs[0].job_id, failures=1),
            ]
        )
        broker.compare(
            "profile",
            jobs,
            ["min-completion", "deadline-aware"],
            faults=schedule,
            recovery="migrate",
        )

    return run


def _cmd_profile(args) -> int:
    import pathlib

    from repro.lint.perf import (
        DEFAULT_PERF_CACHE_NAME,
        DEFAULT_PROFILE_NAME,
        analyze_perf,
        build_profile_document,
        cross_validate,
    )
    from repro.lint.perf.profile import collect_call_counts, write_profile

    count = args.count
    if count < 1:
        print("error: --count must be >= 1", file=sys.stderr)
        return 2
    root = pathlib.Path(args.root) if args.root else pathlib.Path.cwd()
    for path in args.paths:
        if not pathlib.Path(path).exists():
            print(f"error: no such path '{path}'", file=sys.stderr)
            return 2

    counts = collect_call_counts(_profile_workload(count))
    document = build_profile_document(
        counts,
        workload=f"pinned-v1:count={count}",
        threshold=args.threshold,
    )
    output = args.output or str(root / DEFAULT_PROFILE_NAME)
    if not args.check:
        write_profile(output, document)
        print(
            f"call profile written to {output} "
            f"({document['total_calls']} calls, "
            f"{len(document['functions'])} function(s))"
        )
    else:
        print(
            f"call profile collected ({document['total_calls']} calls, "
            f"{len(document['functions'])} function(s)); --check: "
            "not written"
        )

    result = analyze_perf(
        list(args.paths),
        root=root,
        cache_path=str(root / DEFAULT_PERF_CACHE_NAME),
        certificate_path=None,
        profile_path=None,
    )
    agreement = cross_validate(
        document,
        hot_region=result.analysis.hot_region,
        declared=result.analysis.hot_entries,
        known=frozenset(result.analysis.locations),
    )
    print(
        f"declared hot entries: {len(result.analysis.hot_entries)}, "
        f"static hot region: {len(result.analysis.hot_region)}, "
        f"threshold: {agreement.threshold:.2%}"
    )
    for qualname, share in agreement.undeclared_hot:
        print(
            f"  MEASURED-NOT-DECLARED {qualname} "
            f"({share:.2%} of profiled calls)"
        )
    for qualname in agreement.unreached_declared:
        print(f"  DECLARED-NOT-REACHED  {qualname} (0 profiled calls)")
    if agreement.agrees:
        print("declared and measured hot sets agree in both directions")
        return 0
    print(
        f"hot-set disagreement: {len(agreement.undeclared_hot)} "
        f"measured-not-declared, {len(agreement.unreached_declared)} "
        "declared-not-reached"
    )
    return 1


def _cmd_lint(args) -> int:
    from repro.lint.cli import run_lint_command

    # The lint exit-code contract is 0 clean / 1 findings / 2 usage or
    # internal error, matching the standalone ``python -m repro.lint``;
    # letting a LintError bubble to the top-level handler would fold
    # "the tool could not run" into "the tool found problems" (1).
    try:
        return run_lint_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_shares(args) -> int:
    from repro.analysis import format_shares, sweep_shares

    spec = WORKLOADS.get(args.workload)
    if spec is None:
        print(f"unknown workload '{args.workload}'", file=sys.stderr)
        return 2
    dataset = spec.make_dataset(args.size)
    configs = [
        make_run_config(n, c, bandwidth=args.bandwidth)
        for n, c in [(1, 1), (1, 4), (2, 4), (4, 8), (8, 16)]
    ]
    shares = sweep_shares(spec.make_app, dataset, configs)
    print(f"component shares for {args.workload} "
          f"({args.size or spec.default_size}):")
    print(format_shares(shares))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Performance Prediction Framework for "
            "Grid-Based Data Mining Applications'"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list-workloads", help="list available workloads"
    ).set_defaults(func=_cmd_list_workloads)

    run_p = sub.add_parser("run", help="execute a workload on the simulator")
    run_p.add_argument("workload")
    run_p.add_argument("-n", "--data-nodes", type=int, default=1)
    run_p.add_argument("-c", "--compute-nodes", type=int, default=1)
    run_p.add_argument("--size", default=None, help="dataset size label")
    run_p.add_argument("--bandwidth", type=float, default=DEFAULT_BANDWIDTH)
    run_p.add_argument("--processes-per-node", type=int, default=1)
    run_p.add_argument(
        "--cluster", choices=sorted(_CLUSTERS), default="pentium-myrinet"
    )
    run_p.add_argument("--save-profile", default=None, metavar="PATH")
    run_p.add_argument(
        "--faults", default=None, metavar="SCENARIO.json",
        help="inject faults from a JSON scenario file (see README)",
    )
    run_p.set_defaults(func=_cmd_run)

    pred_p = sub.add_parser("predict", help="predict from a saved profile")
    pred_p.add_argument("profile", help="path to a saved profile JSON")
    pred_p.add_argument("-n", "--data-nodes", type=int, required=True)
    pred_p.add_argument("-c", "--compute-nodes", type=int, required=True)
    pred_p.add_argument("--bandwidth", type=float, default=DEFAULT_BANDWIDTH)
    pred_p.add_argument(
        "--dataset-bytes", type=float, default=None,
        help="target dataset size in model bytes (defaults to the profile's)",
    )
    pred_p.add_argument(
        "--cluster", choices=sorted(_CLUSTERS), default="pentium-myrinet"
    )
    pred_p.add_argument(
        "--model", choices=sorted(_MODELS), default="global-reduction"
    )
    pred_p.add_argument("--object-class", default="constant")
    pred_p.add_argument("--global-class", default="linear-constant")
    pred_p.set_defaults(func=_cmd_predict)

    cls_p = sub.add_parser(
        "classify", help="auto-detect a workload's model classes"
    )
    cls_p.add_argument("workload")
    cls_p.set_defaults(func=_cmd_classify)

    fig_p = sub.add_parser("figure", help="reproduce one paper figure")
    fig_p.add_argument("figure", choices=sorted(EXPERIMENTS))
    fig_p.add_argument("--fast", action="store_true")
    fig_p.add_argument(
        "--chart", action="store_true", help="also render ASCII bar charts"
    )
    fig_p.set_defaults(func=_cmd_figure)

    suite_p = sub.add_parser(
        "suite", help="run every experiment and check the paper's claims"
    )
    suite_p.add_argument("--fast", action="store_true")
    suite_p.add_argument(
        "--only", nargs="*", metavar="FIGID",
        help="restrict to specific experiments",
    )
    suite_p.add_argument(
        "--journal", default=None, metavar="PATH",
        help="run crash-safely on the campaign engine, journaling every "
        "finished experiment to PATH",
    )
    suite_p.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted journaled run, re-running only "
        "incomplete experiments (requires --journal)",
    )
    suite_p.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="also save each experiment result JSON under DIR",
    )
    suite_p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="watchdog wall-clock deadline per experiment "
        "(journaled runs only)",
    )
    suite_p.set_defaults(func=_cmd_suite)

    camp_p = sub.add_parser(
        "campaign",
        help="run a campaign manifest with a durable, resumable journal",
    )
    camp_p.add_argument("manifest", help="path to a campaign manifest JSON")
    camp_p.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal path (default: MANIFEST.journal.json)",
    )
    camp_p.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted run from its journal",
    )
    camp_p.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="also save each entry's result JSON under DIR",
    )
    camp_p.add_argument(
        "--max-attempts", type=int, default=None,
        help="watchdog attempts per entry before classifying it "
        "timed-out (default: 2, immediate retry)",
    )
    camp_p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run entries on N worker processes; refuses to start "
        "unless every entry point is certified process-pool-safe by "
        "the effect analysis (journals and artifacts stay "
        "byte-identical to a serial run)",
    )
    camp_p.set_defaults(func=_cmd_campaign)

    broker_p = sub.add_parser(
        "broker",
        help="broker a job stream over a grid with prediction-guided "
        "placement and online calibration",
    )
    broker_p.add_argument(
        "workload", help="path to a broker workload JSON (see README)"
    )
    broker_p.add_argument(
        "--policy", action="append", default=None, metavar="NAME",
        help="policy to run (repeatable; default: all of "
        "min-completion, min-cost, deadline-aware, round-robin)",
    )
    broker_p.add_argument(
        "--no-calibration-baseline", action="store_true",
        help="skip the calibration-off control run",
    )
    broker_p.add_argument(
        "--schedule", action="store_true",
        help="also print the full per-job placement schedule",
    )
    broker_p.add_argument(
        "--report", default=None, metavar="PATH",
        help="save the full report as canonical JSON",
    )
    broker_p.add_argument(
        "--alpha", type=float, default=0.3,
        help="calibration learning rate in (0, 1] (default 0.3)",
    )
    broker_p.add_argument(
        "--faults", default=None, metavar="SCENARIO",
        help="grid fault scenario JSON (site outages, pool shrinks, WAN "
        "degradations, transient job failures) applied to every run",
    )
    broker_p.add_argument(
        "--recovery", default=None, metavar="NAME",
        choices=["resubmit", "migrate"],
        help="recovery policy for preempted jobs: resubmit (fresh "
        "attempt elsewhere) or migrate (checkpoint-aware, charges "
        "T_recover); default: the scenario's, else resubmit",
    )
    broker_p.add_argument(
        "--retry-attempts", type=int, default=None, metavar="N",
        help="override the broker retry budget (attempts per job before "
        "a terminal failure)",
    )
    broker_p.add_argument(
        "--engine", choices=["indexed", "linear"], default="indexed",
        help="event-loop engine: 'indexed' (heap queue + incremental "
        "ledger, the default) or 'linear' (the pre-scale-up reference "
        "path; byte-identical reports, slower)",
    )
    broker_p.set_defaults(func=_cmd_broker)

    trace_p = sub.add_parser(
        "trace",
        help="trace-realistic workloads: generate presets, import GWF "
        "files, broker saved traces (see DESIGN.md §16)",
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    from repro.workloads.traces.presets import TRACE_PRESETS

    gen_p = trace_sub.add_parser(
        "generate", help="expand a named preset into a trace artifact"
    )
    gen_p.add_argument("preset", choices=sorted(TRACE_PRESETS))
    gen_p.add_argument(
        "--count", type=int, default=10000,
        help="total jobs across all VOs (default 10000)",
    )
    gen_p.add_argument("--seed", type=int, default=0)
    gen_p.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="artifact path (default: PRESET-COUNT.trace.json)",
    )
    gen_p.set_defaults(func=_cmd_trace)

    load_p = trace_sub.add_parser(
        "load",
        help="summarize a trace artifact or import a GWA .gwf file",
    )
    load_p.add_argument(
        "source", help="a .trace.json artifact or a .gwf trace file"
    )
    load_p.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="also save the (re-fingerprinted) artifact JSON",
    )
    load_p.set_defaults(func=_cmd_trace)

    trun_p = trace_sub.add_parser(
        "run", help="broker a saved trace over the reference grid"
    )
    trun_p.add_argument(
        "trace", help="a .trace.json artifact or a .gwf trace file"
    )
    trun_p.add_argument(
        "--policy", action="append", default=None, metavar="NAME",
        help="placement policy (repeatable; default: min-completion)",
    )
    trun_p.add_argument(
        "--engine", choices=["indexed", "linear"], default="indexed",
        help="event-loop engine (default: indexed)",
    )
    trun_p.add_argument("--alpha", type=float, default=0.3)
    trun_p.add_argument(
        "--calibration-baseline", action="store_true",
        help="also run the calibration-off control",
    )
    trun_p.add_argument("--schedule", action="store_true")
    trun_p.add_argument(
        "--report", default=None, metavar="PATH",
        help="save the full report as canonical JSON",
    )
    trun_p.set_defaults(func=_cmd_trace)

    from repro.lint.perf.ruledefs import DEFAULT_SHARE_THRESHOLD

    profile_p = sub.add_parser(
        "profile",
        help="run the pinned deterministic workload under the call "
        "profiler, write the profile artifact, and cross-validate the "
        "declared hot set against it (see DESIGN.md §18)",
    )
    profile_p.add_argument(
        "paths", nargs="*", default=["src/repro"], metavar="PATH",
        help="files or directories the static hot-set analysis covers "
        "(default: src/repro)",
    )
    profile_p.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="profile artifact path (default: ROOT/.repro-profile.json)",
    )
    profile_p.add_argument(
        "--count", type=int, default=40,
        help="workload scale: broker jobs and simulator events/5 "
        "(default 40; CI smoke passes a smaller value)",
    )
    profile_p.add_argument(
        "--threshold", type=float, default=DEFAULT_SHARE_THRESHOLD,
        help="call-share at or above which a function counts as "
        f"measured-hot (default {DEFAULT_SHARE_THRESHOLD})",
    )
    profile_p.add_argument(
        "--root", default=None, metavar="DIR",
        help="directory artifacts live under (default: cwd)",
    )
    profile_p.add_argument(
        "--check", action="store_true",
        help="cross-validate only; do not write the profile artifact",
    )
    profile_p.set_defaults(func=_cmd_profile)

    from repro.lint.cli import add_lint_arguments

    lint_p = sub.add_parser(
        "lint",
        help="check the determinism/durability/error-model contracts "
        "(AST-based; see DESIGN.md §13)",
    )
    add_lint_arguments(lint_p)
    lint_p.set_defaults(func=_cmd_lint)

    shares_p = sub.add_parser(
        "shares", help="component shares of a workload across configurations"
    )
    shares_p.add_argument("workload")
    shares_p.add_argument("--size", default=None)
    shares_p.add_argument("--bandwidth", type=float, default=DEFAULT_BANDWIDTH)
    shares_p.set_defaults(func=_cmd_shares)

    whatif_p = sub.add_parser(
        "whatif",
        help="configuration sweep + node recommendation from a profile",
    )
    whatif_p.add_argument("profile", help="path to a saved profile JSON")
    whatif_p.add_argument(
        "--cluster", choices=sorted(_CLUSTERS), default="pentium-myrinet"
    )
    whatif_p.add_argument("--bandwidth", type=float, default=DEFAULT_BANDWIDTH)
    whatif_p.add_argument("--tolerance", type=float, default=0.05)
    whatif_p.set_defaults(func=_cmd_whatif)

    serve_p = sub.add_parser(
        "serve",
        help="prediction-as-a-service: seeded smoke run (default), "
        "chaos campaign (--chaos), or a real HTTP server (--port)",
    )
    serve_p.add_argument(
        "--requests", type=int, default=200,
        help="requests per run (smoke/chaos; default 200)",
    )
    serve_p.add_argument(
        "--rate", type=float, default=600.0,
        help="offered load in requests/s (default 600)",
    )
    serve_p.add_argument(
        "--seed", type=int, default=1,
        help="workload seed (and first chaos seed; default 1)",
    )
    serve_p.add_argument(
        "--chaos", action="store_true",
        help="run the seeded service chaos campaign and verify the "
        "settle-exactly-once / latency / replay invariants",
    )
    serve_p.add_argument(
        "--cases", type=int, default=3,
        help="chaos seeds to run, starting at --seed (default 3)",
    )
    serve_p.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="serve real HTTP on PORT (0 = pick a free port) instead "
        "of a simulated run",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
