"""Certificate-gated process-pool campaign executor.

``repro campaign --workers N`` runs campaign entries in a
:class:`concurrent.futures.ProcessPoolExecutor` instead of the serial
loop — with the *same* durability, deadline, and interruption contract
as :class:`~repro.campaign.runner.CampaignRunner`, and one additional
precondition: **no entry point may run in a worker process unless the
effect analysis proves it process-pool-safe.**

Why a proof, not a convention
-----------------------------
Parallel results are only trustworthy if running an experiment in a
worker process is observationally identical to running it in-process:
no writes to module state another entry could read, no ambient
nondeterminism (clock/RNG/pid), no argument mutation, no
order-sensitive iteration feeding the serialized output.  Those are
exactly the effect tiers the lint layer's interprocedural analysis
(:mod:`repro.lint.effects`) computes, so :func:`verify_pool_safety`
re-runs that analysis at startup and refuses to start the pool if any
submitted entry point fails to certify ``process-pool-safe`` or better
— the campaign falls back to an error, never to silently-wrong
parallel output.

Determinism contract
--------------------
The parent submits every live entry up front, then *settles them in
manifest order*: journal commits, result-artifact writes, outcome
ordering, and progress lines are all byte-for-byte in the order the
serial runner would produce (only the wall-clock ``elapsed_s`` fields
differ, as they do between any two serial runs).  Workers return plain
:class:`~repro.campaign.journal.JournalRecord` values; all journal and
artifact I/O happens in the parent, so two processes never race on a
file.

Entries are submitted through a sliding window of ``2 * workers`` (the
pool pre-queues up to ``workers + 1`` items into its uncancellable IPC
call queue, so unbounded submission would make interruption drain the
whole manifest; the window also bounds memory for huge manifests while
keeping every worker fed).

Interruption: SIGINT/SIGTERM set the stop flag; submitted-but-pending
futures are cancelled and never-submitted entries are reported
``skipped`` (they re-run on ``--resume``), while entries already
executing in a worker are drained and journaled — work that happened
is never thrown away.  The CLI then exits with
:data:`~repro.campaign.report.EXIT_INTERRUPTED` as usual.
"""

from __future__ import annotations

import concurrent.futures
import pathlib
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Mapping, Optional

from repro.analysis.expectations import EXPECTATIONS, check_expectation
from repro.analysis.results_io import result_from_dict, result_to_dict
from repro.errors import CampaignError
from repro.faults.retry import RetryPolicy
from repro.workloads.experiments import (
    ExperimentResult,
    run_experiment,
    run_fault_scenario,
)

from repro.campaign.journal import CampaignJournal, JournalRecord
from repro.campaign.manifest import CampaignEntry, CampaignManifest
from repro.campaign.report import CampaignOutcome, CampaignReport
from repro.campaign.runner import CampaignRunner
from repro.campaign.watchdog import DeadlineExceededError, run_with_deadline

__all__ = [
    "ParallelCampaignRunner",
    "PoolSafetyError",
    "verify_pool_safety",
]


class PoolSafetyError(CampaignError):
    """An entry point failed (or lost) its process-pool-safety proof."""


def verify_pool_safety(
    registry: Optional[Mapping[str, Callable[[], ExperimentResult]]] = None,
    *,
    cache_path: Optional[pathlib.Path] = None,
) -> Dict[str, str]:
    """Prove every campaign entry point process-pool-safe, or refuse.

    Re-runs the effect analysis (:func:`repro.lint.effects.analyze_effects`)
    over the installed ``repro`` source tree and requires every certified
    campaign root — and every registry override defined inside the tree —
    to analyze at tier ``process-pool-safe`` or better.  This checks the
    *source as it exists now*, so an edit that quietly introduces shared
    state or ambient nondeterminism revokes parallelism immediately, even
    if a stale committed certificate still claims otherwise.

    Returns the proven tier per entry-point qualname.  Raises
    :class:`PoolSafetyError` listing every failure (with its inferred
    effects) when any entry point cannot be certified.
    """
    # Imported lazily: the campaign layer must not pay the lint layer's
    # import cost (or require its presence) for serial runs.
    from repro.lint.effects import (
        CERTIFIED_ROOTS,
        TIER_POOL_SAFE,
        TIER_RANK,
        analyze_effects,
    )

    import repro

    package_dir = pathlib.Path(repro.__file__).resolve().parent
    result = analyze_effects(
        [package_dir], root=package_dir.parent, cache_path=cache_path
    )
    analysis = result.analysis

    required: List[str] = list(CERTIFIED_ROOTS)
    for entry_id, fn in sorted((registry or {}).items()):
        module = getattr(fn, "__module__", "") or ""
        qualname = getattr(fn, "__qualname__", "") or repr(fn)
        if module == "repro" or module.startswith("repro."):
            required.append(f"{module}.{qualname}")
        else:
            raise PoolSafetyError(
                f"registry override for entry '{entry_id}' "
                f"({module}.{qualname}) is defined outside the analyzed "
                "'repro' tree, so it cannot be certified process-pool-"
                "safe; run it serially, or construct "
                "ParallelCampaignRunner(certify=False) if you accept "
                "uncertified parallelism in a test harness"
            )

    proven: Dict[str, str] = {}
    failures: List[str] = []
    floor = TIER_RANK[TIER_POOL_SAFE]
    for qualname in required:
        tier = analysis.tiers.get(qualname)
        if tier is None:
            failures.append(f"{qualname}: not found by the effect analysis")
            continue
        proven[qualname] = tier
        if TIER_RANK[tier] < floor:
            failures.append(
                f"{qualname}: analyzes as '{tier}' "
                f"(effects: {analysis.effect_words(qualname)})"
            )
    if failures:
        raise PoolSafetyError(
            "refusing to start the process pool; entry point(s) lost "
            "their process-pool-safety certificate:\n  "
            + "\n  ".join(failures)
            + "\nfix the effect regression (repro lint src/repro "
            "--effects) or run the campaign serially"
        )
    return proven


def _entry_callable(
    entry: CampaignEntry,
    override: Optional[Callable[[], ExperimentResult]],
) -> Callable[[], ExperimentResult]:
    """The worker-side twin of :meth:`CampaignRunner._callable`."""
    if override is not None:
        return override
    if entry.kind == "experiment":
        experiment_id = entry.resolved_experiment_id
        fast = entry.fast
        return lambda: run_experiment(experiment_id, fast=fast)
    return lambda: run_fault_scenario(
        workload=entry.workload,
        experiment_id=entry.entry_id,
        title=f"Fault scenario '{entry.entry_id}' on {entry.workload}",
        scenario=entry.scenario,
        size_label=entry.size_label,
        fast=entry.fast,
    )


def _execute_entry(
    entry: CampaignEntry,
    default_deadline_s: Optional[float],
    retry_policy: RetryPolicy,
    check_claims: bool,
    override: Optional[Callable[[], ExperimentResult]],
) -> JournalRecord:
    """Run one campaign entry to a settled record, inside a worker.

    Module-level (picklable) on purpose.  Mirrors
    :meth:`CampaignRunner._run_entry` exactly — same watchdog deadline,
    same retry/backoff semantics, same statuses — but returns the
    :class:`JournalRecord` instead of committing it: all journal and
    artifact writes happen in the parent, in manifest order, so worker
    completion order can never reorder durable state.
    """
    fn = _entry_callable(entry, override)
    deadline_s = entry.effective_deadline_s(default_deadline_s)
    last_timeout: Optional[DeadlineExceededError] = None
    for attempt in range(1, retry_policy.max_attempts + 1):
        start = time.perf_counter()
        try:
            result = run_with_deadline(
                fn,
                deadline_s,
                stop=threading.Event(),  # workers are never interrupted
                label=entry.entry_id,
            )
        except DeadlineExceededError as exc:
            last_timeout = exc
            if attempt < retry_policy.max_attempts:
                delay = retry_policy.backoff_s(attempt)
                if delay > 0:
                    time.sleep(delay)
                continue
            return JournalRecord(
                entry_id=entry.entry_id,
                status="timed-out",
                attempts=attempt,
                elapsed_s=time.perf_counter() - start,
                payload=None,
                violations=[str(last_timeout)],
            )
        elapsed = time.perf_counter() - start
        violations: List[str] = []
        if (
            check_claims
            and entry.kind == "experiment"
            and entry.resolved_experiment_id in EXPECTATIONS
        ):
            violations = check_expectation(result)
        return JournalRecord(
            entry_id=entry.entry_id,
            status="completed" if attempt == 1 else "retried",
            attempts=attempt,
            elapsed_s=elapsed,
            payload=result_to_dict(result),
            violations=violations,
        )
    raise CampaignError(
        f"entry '{entry.entry_id}': retry loop must settle or return"
    )


class ParallelCampaignRunner(CampaignRunner):
    """Process-pool campaign runner; see the module docstring.

    Accepts everything :class:`~repro.campaign.runner.CampaignRunner`
    does, plus:

    workers:
        Worker process count (``>= 1``).
    certify:
        Run :func:`verify_pool_safety` before starting the pool
        (default).  ``certify=False`` is a test-harness seam only —
        registry callables from test modules live outside the analyzed
        tree and cannot be certified.

    Registry overrides must be module-level functions (they cross the
    process boundary by pickle reference).
    """

    def __init__(
        self,
        manifest: CampaignManifest,
        journal_path: str | pathlib.Path,
        *,
        workers: int,
        certify: bool = True,
        **kwargs,
    ) -> None:
        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        super().__init__(manifest, journal_path, **kwargs)
        self.workers = workers
        self.certify = certify

    def _skipped(self, entry: CampaignEntry) -> CampaignOutcome:
        return CampaignOutcome(
            entry=entry,
            status="skipped",
            attempts=0,
            elapsed_s=0.0,
            result=None,
            violations=[],
        )

    def run(self, resume: bool = False) -> CampaignReport:
        """Execute the campaign on a certified process pool."""
        if self.certify:
            verify_pool_safety(self.registry)

        journal = CampaignJournal(self.journal_path)
        fingerprint = self.manifest.fingerprint()
        if journal.exists:
            if not resume:
                raise CampaignError(
                    f"campaign journal '{self.journal_path}' already "
                    "exists; pass resume=True (--resume) to continue it, "
                    "or delete the journal to start fresh"
                )
            records = journal.load(expected_fingerprint=fingerprint)
        else:
            journal.initialize(self.manifest.name, fingerprint)
            records = {}

        self._stop.clear()
        self._signal_name = None
        report = CampaignReport(
            campaign=self.manifest.name,
            journal_path=self.journal_path,
        )
        window = 2 * self.workers
        pending = [
            entry
            for entry in self.manifest.entries
            if entry.entry_id not in records
        ]
        futures: Dict[str, "concurrent.futures.Future[JournalRecord]"] = {}
        cancelled: set = set()
        stop_handled = False

        def handle_stop() -> None:
            """First stop observation: cancel what never started."""
            nonlocal stop_handled
            if stop_handled:
                return
            stop_handled = True
            pending.clear()  # never-submitted entries become skips
            for entry_id, future in futures.items():
                if future.cancel():
                    cancelled.add(entry_id)

        previous_handlers = self._install_signal_handlers()
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            ) as pool:

                def top_up() -> None:
                    # A stop observed here (e.g. set while the last
                    # future was settling) must win before any new
                    # submission widens the drain set.
                    if self._stop.is_set():
                        handle_stop()
                        return
                    while pending and len(futures) < window:
                        entry = pending.pop(0)
                        futures[entry.entry_id] = pool.submit(
                            _execute_entry,
                            entry,
                            self.manifest.default_deadline_s,
                            self.retry_policy,
                            self.check_claims,
                            self.registry.get(entry.entry_id),
                        )

                top_up()
                # Settle strictly in manifest order: commits, artifact
                # writes, and outcome/progress ordering all match the
                # serial runner byte for byte.
                for entry in self.manifest.entries:
                    if entry.entry_id in records:
                        outcome = self._resumed_outcome(
                            entry, records[entry.entry_id]
                        )
                        report.outcomes.append(outcome)
                        self._report_progress(outcome)
                        continue
                    if self._stop.is_set():
                        handle_stop()
                    future = futures.get(entry.entry_id)
                    record: Optional[JournalRecord] = None
                    while future is not None and record is None:
                        if self._stop.is_set():
                            handle_stop()
                        if entry.entry_id in cancelled:
                            break
                        try:
                            record = future.result(
                                timeout=self._poll_interval_s
                            )
                        except concurrent.futures.TimeoutError:
                            continue
                    futures.pop(entry.entry_id, None)
                    if record is None:
                        # Cancelled before it started, or never
                        # submitted at all: re-runs on --resume.
                        report.interrupted = True
                        report.outcomes.append(self._skipped(entry))
                        continue
                    journal.commit(record)
                    result = (
                        result_from_dict(record.payload)
                        if record.payload is not None
                        else None
                    )
                    if result is not None:
                        self._save_result(entry.entry_id, result)
                    outcome = CampaignOutcome(
                        entry=entry,
                        status=record.status,
                        attempts=record.attempts,
                        elapsed_s=record.elapsed_s,
                        result=result,
                        violations=list(record.violations),
                    )
                    report.outcomes.append(outcome)
                    self._report_progress(outcome)
                    top_up()
        except BrokenProcessPool as exc:
            raise CampaignError(
                "parallel campaign worker pool broke (a worker died "
                "mid-entry); the journal holds every entry settled so "
                "far — re-run with --resume, or serially without "
                "--workers"
            ) from exc
        finally:
            self._restore_signal_handlers(previous_handlers)
        report.signal_name = self._signal_name
        return report
