"""Campaign manifests: the ordered set of experiments a run executes.

A manifest is the durable identity of a campaign — the journal records
its fingerprint, and a ``--resume`` is only accepted when the manifest
still matches, so a resumed run can never silently execute a different
set of experiments against an old journal.

Entry kinds
-----------
- ``experiment``      — one registered figure reproduction
  (:data:`repro.workloads.experiments.EXPERIMENTS`).
- ``fault-scenario``  — one fault-scenario sweep
  (:func:`repro.workloads.experiments.run_fault_scenario`): a workload
  plus an inline fault-scenario mapping.

JSON format (``repro campaign MANIFEST.json``)::

    {
      "name": "nightly",
      "default_deadline_s": 120.0,
      "entries": [
        {"id": "fig02", "fast": true},
        {"id": "fig09"},
        {"id": "em-under-faults", "kind": "fault-scenario",
         "workload": "em", "fast": true, "deadline_s": 60.0,
         "scenario": {"seed": 7, "faults": [
             {"type": "chunk-read-error", "rate": 0.05}]}}
      ]
    }

Unknown keys raise :class:`~repro.errors.CampaignError` rather than
being ignored — a typo must not silently drop a deadline.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.durable import content_digest, read_json_document
from repro.errors import CampaignError
from repro.workloads.experiments import EXPERIMENTS

__all__ = [
    "CampaignEntry",
    "CampaignManifest",
    "manifest_from_dict",
    "manifest_to_dict",
    "load_manifest",
    "paper_suite_manifest",
]

_ENTRY_KINDS = ("experiment", "fault-scenario")


@dataclass(frozen=True)
class CampaignEntry:
    """One unit of work in a campaign.

    Attributes
    ----------
    entry_id:
        Unique id within the campaign; for ``experiment`` entries it is
        also the experiment id unless ``experiment_id`` overrides it.
    kind:
        ``"experiment"`` or ``"fault-scenario"``.
    experiment_id:
        The registered experiment to run (``experiment`` kind only).
    workload, scenario, size_label:
        The fault-scenario sweep's inputs (``fault-scenario`` kind only).
    fast:
        Run on the reduced configuration grid.
    deadline_s:
        Per-entry wall-clock deadline; ``None`` falls back to the
        manifest default (which may itself be ``None`` = no deadline).
    """

    entry_id: str
    kind: str = "experiment"
    experiment_id: Optional[str] = None
    workload: Optional[str] = None
    scenario: Optional[Dict[str, Any]] = None
    size_label: Optional[str] = None
    fast: bool = False
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.entry_id:
            raise CampaignError("campaign entry id must be non-empty")
        if self.kind not in _ENTRY_KINDS:
            raise CampaignError(
                f"unknown campaign entry kind {self.kind!r}; "
                f"expected one of {_ENTRY_KINDS}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise CampaignError(
                f"entry '{self.entry_id}': deadline_s must be positive"
            )
        if self.kind == "experiment":
            experiment_id = self.experiment_id or self.entry_id
            if experiment_id not in EXPERIMENTS:
                raise CampaignError(
                    f"entry '{self.entry_id}': unknown experiment "
                    f"'{experiment_id}'; known: {sorted(EXPERIMENTS)}"
                )
        else:
            if not self.workload:
                raise CampaignError(
                    f"entry '{self.entry_id}': fault-scenario entries "
                    "require a 'workload'"
                )
            if not isinstance(self.scenario, dict):
                raise CampaignError(
                    f"entry '{self.entry_id}': fault-scenario entries "
                    "require an inline 'scenario' mapping"
                )

    @property
    def resolved_experiment_id(self) -> str:
        """The experiment id an ``experiment`` entry runs."""
        return self.experiment_id or self.entry_id

    def effective_deadline_s(
        self, default: Optional[float]
    ) -> Optional[float]:
        """This entry's deadline after applying the manifest default."""
        return self.deadline_s if self.deadline_s is not None else default


@dataclass(frozen=True)
class CampaignManifest:
    """An ordered, uniquely-keyed set of campaign entries."""

    name: str
    entries: Tuple[CampaignEntry, ...]
    default_deadline_s: Optional[float] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign name must be non-empty")
        if not self.entries:
            raise CampaignError(
                f"campaign '{self.name}' has no entries"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise CampaignError("default_deadline_s must be positive")
        seen = set()
        for entry in self.entries:
            if entry.entry_id in seen:
                raise CampaignError(
                    f"duplicate campaign entry id '{entry.entry_id}'"
                )
            seen.add(entry.entry_id)

    def fingerprint(self) -> str:
        """Stable digest binding a journal to this exact manifest."""
        return content_digest(manifest_to_dict(self))

    def entry(self, entry_id: str) -> CampaignEntry:
        for candidate in self.entries:
            if candidate.entry_id == entry_id:
                return candidate
        raise CampaignError(
            f"campaign '{self.name}' has no entry '{entry_id}'"
        )


def _take(data: Mapping[str, Any], known: Dict[str, Any], what: str) -> Dict[str, Any]:
    """Extract ``known`` keys (name -> default, ``...`` = required)."""
    unknown = set(data) - set(known)
    if unknown:
        raise CampaignError(f"unknown key(s) {sorted(unknown)} in {what}")
    out: Dict[str, Any] = {}
    for key, default in known.items():
        if key in data:
            out[key] = data[key]
        elif default is ...:
            raise CampaignError(f"{what} requires key '{key}'")
        else:
            out[key] = default
    return out


def _entry_from_dict(data: Mapping[str, Any]) -> CampaignEntry:
    if not isinstance(data, Mapping):
        raise CampaignError("each manifest entry must be a JSON object")
    args = _take(
        data,
        {
            "id": ...,
            "kind": "experiment",
            "experiment_id": None,
            "workload": None,
            "scenario": None,
            "size_label": None,
            "fast": False,
            "deadline_s": None,
        },
        f"manifest entry {data.get('id', '?')!r}",
    )
    return CampaignEntry(
        entry_id=str(args["id"]),
        kind=str(args["kind"]),
        experiment_id=args["experiment_id"],
        workload=args["workload"],
        scenario=args["scenario"],
        size_label=args["size_label"],
        fast=bool(args["fast"]),
        deadline_s=None if args["deadline_s"] is None else float(args["deadline_s"]),
    )


def manifest_from_dict(data: Mapping[str, Any]) -> CampaignManifest:
    """Build a manifest from a decoded JSON mapping."""
    args = _take(
        data,
        {
            "name": ...,
            "entries": ...,
            "default_deadline_s": None,
            "metadata": None,
        },
        "campaign manifest",
    )
    entries_raw = args["entries"]
    if not isinstance(entries_raw, list):
        raise CampaignError("'entries' must be a list of entry objects")
    return CampaignManifest(
        name=str(args["name"]),
        entries=tuple(_entry_from_dict(e) for e in entries_raw),
        default_deadline_s=(
            None
            if args["default_deadline_s"] is None
            else float(args["default_deadline_s"])
        ),
        metadata=dict(args["metadata"] or {}),
    )


def manifest_to_dict(manifest: CampaignManifest) -> Dict[str, Any]:
    """The JSON-serializable form :func:`manifest_from_dict` accepts."""
    entries: List[Dict[str, Any]] = []
    for entry in manifest.entries:
        record: Dict[str, Any] = {"id": entry.entry_id, "kind": entry.kind}
        if entry.experiment_id is not None:
            record["experiment_id"] = entry.experiment_id
        if entry.workload is not None:
            record["workload"] = entry.workload
        if entry.scenario is not None:
            record["scenario"] = entry.scenario
        if entry.size_label is not None:
            record["size_label"] = entry.size_label
        if entry.fast:
            record["fast"] = True
        if entry.deadline_s is not None:
            record["deadline_s"] = entry.deadline_s
        entries.append(record)
    data: Dict[str, Any] = {"name": manifest.name, "entries": entries}
    if manifest.default_deadline_s is not None:
        data["default_deadline_s"] = manifest.default_deadline_s
    if manifest.metadata:
        data["metadata"] = manifest.metadata
    return data


def load_manifest(path: str | pathlib.Path) -> CampaignManifest:
    """Load a campaign manifest from a JSON file."""
    data = read_json_document(
        path,
        "campaign manifest",
        remedy="fix the manifest file (see the format in "
        "repro/campaign/manifest.py)",
    )
    return manifest_from_dict(data)


def paper_suite_manifest(
    fast: bool = False,
    experiment_ids: Optional[Sequence[str]] = None,
    deadline_s: Optional[float] = None,
) -> CampaignManifest:
    """The paper's full evaluation as a campaign (what ``repro suite`` runs)."""
    ids = list(experiment_ids) if experiment_ids else sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise CampaignError(f"unknown experiments: {unknown}")
    return CampaignManifest(
        name="paper-suite-fast" if fast else "paper-suite",
        entries=tuple(
            CampaignEntry(entry_id=i, fast=fast) for i in ids
        ),
        default_deadline_s=deadline_s,
    )
