"""The durable campaign journal: what a killed run resumes from.

One JSON document per campaign, rewritten **atomically** (temp file +
fsync + rename, via :mod:`repro.core.durable`) after every settled
entry.  A process killed at any instruction therefore leaves either the
journal as of entry ``k`` or entry ``k+1`` — never a torn state — and a
``--resume`` re-runs exactly the entries that were never committed.

Integrity is checked on load, not trusted:

- the document must parse and carry a supported ``format_version``;
- the journal must have been written for the *same manifest* (fingerprint
  match), so a resume cannot run against a stale journal;
- every record carries a SHA-256 over its payload, so a tampered or
  bit-rotted record raises
  :class:`~repro.core.durable.CorruptStoreError` instead of silently
  resuming from bad data.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.durable import (
    CorruptStoreError,
    atomic_write_json,
    content_digest,
    read_json_document,
)
from repro.errors import CampaignError

__all__ = ["JournalRecord", "CampaignJournal", "JOURNAL_FORMAT_VERSION"]

JOURNAL_FORMAT_VERSION = 1

#: Entry statuses a journal may record (settled outcomes only — entries
#: that never settled are simply absent and will be re-run on resume).
SETTLED_STATUSES = ("completed", "retried", "timed-out")


@dataclass(frozen=True)
class JournalRecord:
    """One settled campaign entry.

    ``payload`` is the entry's serialized
    :class:`~repro.workloads.experiments.ExperimentResult`
    (:func:`~repro.analysis.results_io.result_to_dict` form), or ``None``
    for a timed-out entry that never produced one.
    """

    entry_id: str
    status: str
    attempts: int
    elapsed_s: float
    payload: Optional[Dict[str, Any]]
    violations: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.status not in SETTLED_STATUSES:
            raise CampaignError(
                f"journal record '{self.entry_id}': status {self.status!r} "
                f"is not a settled status {SETTLED_STATUSES}"
            )
        if self.attempts < 1:
            raise CampaignError(
                f"journal record '{self.entry_id}': attempts must be >= 1"
            )


def _record_to_dict(record: JournalRecord) -> Dict[str, Any]:
    body = {
        "entry_id": record.entry_id,
        "status": record.status,
        "attempts": record.attempts,
        "elapsed_s": record.elapsed_s,
        "violations": list(record.violations),
        "payload": record.payload,
    }
    body["sha256"] = content_digest(body["payload"])
    return body


def _record_from_dict(data: Dict[str, Any], path: pathlib.Path) -> JournalRecord:
    try:
        entry_id = str(data["entry_id"])
        stored_digest = data["sha256"]
        payload = data["payload"]
        record = JournalRecord(
            entry_id=entry_id,
            status=str(data["status"]),
            attempts=int(data["attempts"]),
            elapsed_s=float(data["elapsed_s"]),
            payload=payload,
            violations=[str(v) for v in data["violations"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptStoreError(
            f"campaign journal '{path}' is corrupt (malformed record: "
            f"{exc}); delete it and re-run the campaign from scratch"
        ) from exc
    if content_digest(payload) != stored_digest:
        raise CorruptStoreError(
            f"campaign journal '{path}' is corrupt (checksum mismatch on "
            f"entry '{entry_id}'); delete it and re-run the campaign "
            "from scratch"
        )
    return record


class CampaignJournal:
    """Durable, atomically-committed record of settled campaign entries."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._campaign: Optional[str] = None
        self._fingerprint: Optional[str] = None
        self._records: Dict[str, JournalRecord] = {}

    @property
    def exists(self) -> bool:
        return self.path.exists()

    @property
    def records(self) -> Dict[str, JournalRecord]:
        """The in-memory view of settled entries (id -> record)."""
        return dict(self._records)

    def initialize(self, campaign: str, fingerprint: str) -> None:
        """Start a fresh journal bound to one manifest fingerprint.

        Refuses to clobber an existing journal — the runner must decide
        explicitly (resume, or delete the file) before losing state.
        """
        if self.exists:
            raise CampaignError(
                f"campaign journal '{self.path}' already exists; resume "
                "the campaign (--resume) or delete the journal to start "
                "fresh"
            )
        self._campaign = campaign
        self._fingerprint = fingerprint
        self._records = {}
        self._flush()

    def load(self, expected_fingerprint: Optional[str] = None) -> Dict[str, JournalRecord]:
        """Read and verify the journal; returns settled records by id."""
        data = read_json_document(
            self.path,
            "campaign journal",
            expected_version=JOURNAL_FORMAT_VERSION,
            remedy="delete the journal and re-run the campaign from "
            "scratch",
        )
        try:
            campaign = str(data["campaign"])
            fingerprint = str(data["manifest_sha256"])
            entries = data["entries"]
        except KeyError as exc:
            raise CorruptStoreError(
                f"campaign journal '{self.path}' is corrupt (missing key "
                f"{exc}); delete it and re-run the campaign from scratch"
            ) from exc
        if not isinstance(entries, list):
            raise CorruptStoreError(
                f"campaign journal '{self.path}' is corrupt ('entries' is "
                "not a list); delete it and re-run the campaign from "
                "scratch"
            )
        if (
            expected_fingerprint is not None
            and fingerprint != expected_fingerprint
        ):
            raise CampaignError(
                f"campaign journal '{self.path}' was written for a "
                f"different manifest (campaign '{campaign}'); resuming "
                "would run the wrong experiments — use a new journal "
                "path, or delete the stale journal"
            )
        self._campaign = campaign
        self._fingerprint = fingerprint
        self._records = {}
        for raw in entries:
            record = _record_from_dict(raw, self.path)
            if record.entry_id in self._records:
                raise CorruptStoreError(
                    f"campaign journal '{self.path}' is corrupt "
                    f"(duplicate entry '{record.entry_id}'); delete it "
                    "and re-run the campaign from scratch"
                )
            self._records[record.entry_id] = record
        return self.records

    def commit(self, record: JournalRecord) -> None:
        """Durably append one settled entry (atomic whole-file rewrite)."""
        if self._fingerprint is None:
            raise CampaignError(
                "journal must be initialized or loaded before committing"
            )
        if record.entry_id in self._records:
            raise CampaignError(
                f"entry '{record.entry_id}' is already journaled"
            )
        self._records[record.entry_id] = record
        self._flush()

    def _flush(self) -> None:
        atomic_write_json(
            self.path,
            {
                "format_version": JOURNAL_FORMAT_VERSION,
                "campaign": self._campaign,
                "manifest_sha256": self._fingerprint,
                "entries": [
                    _record_to_dict(r) for r in self._records.values()
                ],
            },
        )
