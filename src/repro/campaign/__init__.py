"""The crash-safe campaign engine.

Long campaigns — the paper suite, figure sweeps, fault-scenario sweeps,
or user-defined manifests — survive being killed and resume where they
stopped:

- :mod:`repro.campaign.manifest` — what to run
  (:class:`CampaignManifest`, JSON manifests, the paper-suite builder).
- :mod:`repro.campaign.journal`  — the durable journal: atomic
  write-then-rename commits with fsync, checksum corruption detection,
  manifest-fingerprint binding.
- :mod:`repro.campaign.watchdog` — per-entry wall-clock deadlines and
  graceful-interrupt supervision.
- :mod:`repro.campaign.runner`   — :class:`CampaignRunner`: resume,
  retry-after-timeout (:class:`~repro.faults.retry.RetryPolicy`
  semantics), SIGINT/SIGTERM checkpointing.
- :mod:`repro.campaign.parallel` — :class:`ParallelCampaignRunner`:
  the certificate-gated process-pool executor behind
  ``repro campaign --workers N`` (byte-identical journals and
  artifacts, deterministic manifest-order settlement).
- :mod:`repro.campaign.report`   — :class:`CampaignReport`:
  completed/resumed/retried/timed-out/skipped classification and the
  process exit codes.

The CLI exposes it as ``repro campaign`` and ``repro suite
--journal/--resume``.
"""

from repro.campaign.journal import (
    JOURNAL_FORMAT_VERSION,
    CampaignJournal,
    JournalRecord,
)
from repro.campaign.manifest import (
    CampaignEntry,
    CampaignManifest,
    load_manifest,
    manifest_from_dict,
    manifest_to_dict,
    paper_suite_manifest,
)
from repro.campaign.report import (
    ENTRY_STATUSES,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_PROBLEMS,
    CampaignOutcome,
    CampaignReport,
)
from repro.campaign.parallel import (
    ParallelCampaignRunner,
    PoolSafetyError,
    verify_pool_safety,
)
from repro.campaign.runner import CampaignRunner
from repro.campaign.watchdog import (
    CampaignInterruptedError,
    DeadlineExceededError,
    run_with_deadline,
)

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "CampaignJournal",
    "JournalRecord",
    "CampaignEntry",
    "CampaignManifest",
    "load_manifest",
    "manifest_from_dict",
    "manifest_to_dict",
    "paper_suite_manifest",
    "ENTRY_STATUSES",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "EXIT_PROBLEMS",
    "CampaignOutcome",
    "CampaignReport",
    "CampaignRunner",
    "ParallelCampaignRunner",
    "PoolSafetyError",
    "verify_pool_safety",
    "CampaignInterruptedError",
    "DeadlineExceededError",
    "run_with_deadline",
]
