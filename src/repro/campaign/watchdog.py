"""Wall-clock deadline enforcement for campaign entries.

A hung or runaway experiment must not block the whole campaign.  The
watchdog runs the experiment callable on a supervised daemon worker
thread and polls it; when the deadline passes, it raises
:class:`DeadlineExceededError` in the *campaign* thread so the runner
can retry or classify the entry as timed-out and move on.  When the
operator interrupts the campaign (SIGINT/SIGTERM set the stop event),
the poll loop raises :class:`CampaignInterruptedError` instead, so the
runner can checkpoint and exit gracefully.

An abandoned worker cannot be killed from Python; it is left to finish
on its daemon thread and its result is discarded.  That is sound here
because experiment drivers are pure functions of their inputs — they
mutate no shared state and their only effect is the returned result.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from repro.errors import CampaignError

__all__ = [
    "DeadlineExceededError",
    "CampaignInterruptedError",
    "run_with_deadline",
]


class DeadlineExceededError(CampaignError):
    """An entry exceeded its wall-clock deadline and was abandoned."""

    def __init__(self, label: str, deadline_s: float) -> None:
        super().__init__(
            f"'{label}' exceeded its {deadline_s:g}s wall-clock deadline"
        )
        self.label = label
        self.deadline_s = deadline_s


class CampaignInterruptedError(CampaignError):
    """The operator asked the campaign to stop (SIGINT/SIGTERM)."""

    def __init__(self, reason: str = "interrupted") -> None:
        super().__init__(f"campaign {reason}; journal checkpoint is durable")
        self.reason = reason


def run_with_deadline(
    fn: Callable[[], Any],
    deadline_s: Optional[float],
    *,
    stop: Optional[threading.Event] = None,
    label: str = "entry",
    poll_interval_s: float = 0.02,
) -> Any:
    """Run ``fn()`` under a wall-clock deadline and a stop event.

    Returns ``fn()``'s value; re-raises its exception unchanged.  Raises
    :class:`DeadlineExceededError` when ``deadline_s`` elapses first and
    :class:`CampaignInterruptedError` when ``stop`` is set first.  With
    neither a deadline nor a stop event there is nothing to supervise
    and ``fn`` runs inline on the calling thread.
    """
    if deadline_s is not None and deadline_s <= 0:
        raise CampaignError("deadline_s must be positive")
    if deadline_s is None and stop is None:
        return fn()

    box: dict = {}
    done = threading.Event()

    def _worker() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # re-raised on the campaign thread
            box["error"] = exc
        finally:
            done.set()

    worker = threading.Thread(
        target=_worker, name=f"campaign-{label}", daemon=True
    )
    start = time.monotonic()
    worker.start()
    while not done.is_set():
        if stop is not None and stop.is_set():
            raise CampaignInterruptedError
        wait = poll_interval_s
        if deadline_s is not None:
            remaining = deadline_s - (time.monotonic() - start)
            if remaining <= 0:
                raise DeadlineExceededError(label, deadline_s)
            wait = min(wait, remaining)
        done.wait(wait)
    if "error" in box:
        raise box["error"]
    return box["value"]
