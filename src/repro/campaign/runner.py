"""The crash-safe campaign runner.

Executes a :class:`~repro.campaign.manifest.CampaignManifest` entry by
entry with three operational guards the plain suite loop lacks:

1. **Durability.**  Every settled entry is committed to the
   :class:`~repro.campaign.journal.CampaignJournal` via atomic
   write-then-rename with fsync *before* the next entry starts.  A
   killed process loses at most the entry that was in flight; a
   ``resume=True`` run restores journaled entries without re-running
   them and produces results byte-identical to an uninterrupted run
   (experiment drivers are deterministic and the serialization is
   canonical).
2. **Deadlines.**  Each entry runs under the watchdog; an entry that
   exceeds its wall-clock deadline is abandoned, retried per the
   :class:`~repro.faults.retry.RetryPolicy` (real sleeps, same backoff
   semantics the simulated chunk retries use), and finally classified
   ``timed-out`` — without aborting the rest of the campaign.
3. **Graceful interruption.**  SIGINT/SIGTERM set a stop flag; the
   runner finishes the in-progress journal commit, marks unreached
   entries ``skipped``, restores the previous signal handlers, and
   reports ``interrupted`` so the CLI can exit with the distinct
   resumable status code
   (:data:`~repro.campaign.report.EXIT_INTERRUPTED`).
"""

from __future__ import annotations

import pathlib
import signal
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional

from repro.analysis.expectations import EXPECTATIONS, check_expectation
from repro.analysis.results_io import (
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.errors import CampaignError, InternalError
from repro.faults.retry import WATCHDOG_RETRY_POLICY, RetryPolicy
from repro.workloads.experiments import (
    ExperimentResult,
    run_experiment,
    run_fault_scenario,
)

from repro.campaign.journal import CampaignJournal, JournalRecord
from repro.campaign.manifest import CampaignEntry, CampaignManifest
from repro.campaign.report import CampaignOutcome, CampaignReport
from repro.campaign.watchdog import (
    CampaignInterruptedError,
    DeadlineExceededError,
    run_with_deadline,
)

__all__ = ["CampaignRunner"]

_HANDLED_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class CampaignRunner:
    """Run a campaign durably; see the module docstring for guarantees.

    Parameters
    ----------
    manifest:
        What to run, in order.
    journal_path:
        Where settled entries are committed.  The journal binds to the
        manifest's fingerprint; resuming against a journal written for a
        different manifest is refused.
    retry_policy:
        Watchdog retry-after-timeout budget and backoff
        (:data:`~repro.faults.retry.WATCHDOG_RETRY_POLICY` by default).
    results_dir:
        When set, every productive entry's result is also saved as
        ``<results_dir>/<entry_id>.json`` (atomically) — including
        resumed entries, so a resumed campaign leaves byte-identical
        artifacts.
    registry:
        Test seam: per-entry-id callables that override the default
        experiment drivers.
    check_claims:
        Check results against the paper's recorded expectations.
    handle_signals:
        Install SIGINT/SIGTERM handlers for graceful checkpointing
        (skipped automatically off the main thread).
    progress:
        Callback receiving one human-readable line per settled entry.
    sleep:
        Test seam for the real backoff sleeps between timeout retries.
    """

    def __init__(
        self,
        manifest: CampaignManifest,
        journal_path: str | pathlib.Path,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        results_dir: Optional[str | pathlib.Path] = None,
        registry: Optional[Mapping[str, Callable[[], ExperimentResult]]] = None,
        check_claims: bool = True,
        handle_signals: bool = True,
        progress: Optional[Callable[[str], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        poll_interval_s: float = 0.02,
    ) -> None:
        self.manifest = manifest
        self.journal_path = pathlib.Path(journal_path)
        self.retry_policy = retry_policy or WATCHDOG_RETRY_POLICY
        self.results_dir = (
            pathlib.Path(results_dir) if results_dir is not None else None
        )
        self.registry = dict(registry or {})
        self.check_claims = check_claims
        self.handle_signals = handle_signals
        self.progress = progress
        self._sleep = sleep
        self._poll_interval_s = poll_interval_s
        self._stop = threading.Event()
        self._signal_name: Optional[str] = None

    # ------------------------------------------------------------------
    # Entry execution
    # ------------------------------------------------------------------

    def _callable(self, entry: CampaignEntry) -> Callable[[], ExperimentResult]:
        if entry.entry_id in self.registry:
            return self.registry[entry.entry_id]
        if entry.kind == "experiment":
            experiment_id = entry.resolved_experiment_id
            fast = entry.fast
            return lambda: run_experiment(experiment_id, fast=fast)
        return lambda: run_fault_scenario(
            workload=entry.workload,
            experiment_id=entry.entry_id,
            title=f"Fault scenario '{entry.entry_id}' on {entry.workload}",
            scenario=entry.scenario,
            size_label=entry.size_label,
            fast=entry.fast,
        )

    def _violations(
        self, entry: CampaignEntry, result: ExperimentResult
    ) -> List[str]:
        if not self.check_claims or entry.kind != "experiment":
            return []
        if entry.resolved_experiment_id not in EXPECTATIONS:
            return []
        return check_expectation(result)

    def _save_result(self, entry_id: str, result: ExperimentResult) -> None:
        if self.results_dir is not None:
            save_result(result, self.results_dir / f"{entry_id}.json")

    def _report_progress(self, outcome: CampaignOutcome) -> None:
        if self.progress is not None:
            self.progress(
                f"{outcome.entry_id} {outcome.status} "
                f"({outcome.elapsed_s:.1f}s)"
            )

    def _run_entry(
        self, entry: CampaignEntry, journal: CampaignJournal
    ) -> Optional[CampaignOutcome]:
        """Run one live entry to a settled, journaled outcome.

        Returns ``None`` when the operator interrupted the attempt —
        nothing is journaled and the entry re-runs on resume.
        """
        fn = self._callable(entry)
        deadline_s = entry.effective_deadline_s(
            self.manifest.default_deadline_s
        )
        last_timeout: Optional[DeadlineExceededError] = None
        for attempt in range(1, self.retry_policy.max_attempts + 1):
            start = time.perf_counter()
            try:
                result = run_with_deadline(
                    fn,
                    deadline_s,
                    stop=self._stop,
                    label=entry.entry_id,
                    poll_interval_s=self._poll_interval_s,
                )
            except CampaignInterruptedError:
                return None
            except DeadlineExceededError as exc:
                last_timeout = exc
                if attempt < self.retry_policy.max_attempts:
                    delay = self.retry_policy.backoff_s(attempt)
                    if delay > 0:
                        self._sleep(delay)
                    continue
                elapsed = time.perf_counter() - start
                record = JournalRecord(
                    entry_id=entry.entry_id,
                    status="timed-out",
                    attempts=attempt,
                    elapsed_s=elapsed,
                    payload=None,
                    violations=[str(last_timeout)],
                )
                journal.commit(record)
                return CampaignOutcome(
                    entry=entry,
                    status="timed-out",
                    attempts=attempt,
                    elapsed_s=elapsed,
                    result=None,
                    violations=[str(last_timeout)],
                )
            elapsed = time.perf_counter() - start
            violations = self._violations(entry, result)
            status = "completed" if attempt == 1 else "retried"
            record = JournalRecord(
                entry_id=entry.entry_id,
                status=status,
                attempts=attempt,
                elapsed_s=elapsed,
                payload=result_to_dict(result),
                violations=violations,
            )
            journal.commit(record)
            self._save_result(entry.entry_id, result)
            return CampaignOutcome(
                entry=entry,
                status=status,
                attempts=attempt,
                elapsed_s=elapsed,
                result=result,
                violations=violations,
            )
        raise InternalError("retry loop must settle or return")

    def _resumed_outcome(
        self, entry: CampaignEntry, record: JournalRecord
    ) -> CampaignOutcome:
        result = (
            result_from_dict(record.payload)
            if record.payload is not None
            else None
        )
        if result is not None:
            self._save_result(entry.entry_id, result)
        status = "resumed" if record.status != "timed-out" else "timed-out"
        return CampaignOutcome(
            entry=entry,
            status=status,
            attempts=record.attempts,
            elapsed_s=record.elapsed_s,
            result=result,
            violations=list(record.violations),
        )

    # ------------------------------------------------------------------
    # Signal handling
    # ------------------------------------------------------------------

    def _install_signal_handlers(self):
        if not self.handle_signals:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None
        previous = {}

        def _handler(signum, _frame):
            self._signal_name = signal.Signals(signum).name
            self._stop.set()

        for signum in _HANDLED_SIGNALS:
            previous[signum] = signal.signal(signum, _handler)
        return previous

    @staticmethod
    def _restore_signal_handlers(previous) -> None:
        if previous is None:
            return
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    # ------------------------------------------------------------------
    # The campaign loop
    # ------------------------------------------------------------------

    def run(self, resume: bool = False) -> CampaignReport:
        """Execute the campaign; see the class docstring.

        ``resume=True`` continues an existing journal (a missing journal
        simply starts fresh, so resume is safe to pass unconditionally);
        ``resume=False`` refuses to touch an existing journal rather
        than silently discarding its state.
        """
        journal = CampaignJournal(self.journal_path)
        fingerprint = self.manifest.fingerprint()
        if journal.exists:
            if not resume:
                raise CampaignError(
                    f"campaign journal '{self.journal_path}' already "
                    "exists; pass resume=True (--resume) to continue it, "
                    "or delete the journal to start fresh"
                )
            records = journal.load(expected_fingerprint=fingerprint)
        else:
            journal.initialize(self.manifest.name, fingerprint)
            records = {}

        self._stop.clear()
        self._signal_name = None
        report = CampaignReport(
            campaign=self.manifest.name,
            journal_path=self.journal_path,
        )
        previous_handlers = self._install_signal_handlers()
        try:
            for entry in self.manifest.entries:
                if self._stop.is_set():
                    report.interrupted = True
                if report.interrupted:
                    report.outcomes.append(
                        CampaignOutcome(
                            entry=entry,
                            status="skipped",
                            attempts=0,
                            elapsed_s=0.0,
                            result=None,
                            violations=[],
                        )
                    )
                    continue
                if entry.entry_id in records:
                    outcome = self._resumed_outcome(
                        entry, records[entry.entry_id]
                    )
                else:
                    maybe = self._run_entry(entry, journal)
                    if maybe is None:
                        report.interrupted = True
                        report.outcomes.append(
                            CampaignOutcome(
                                entry=entry,
                                status="skipped",
                                attempts=0,
                                elapsed_s=0.0,
                                result=None,
                                violations=[],
                            )
                        )
                        continue
                    outcome = maybe
                report.outcomes.append(outcome)
                self._report_progress(outcome)
        finally:
            self._restore_signal_handlers(previous_handlers)
        report.signal_name = self._signal_name
        return report
