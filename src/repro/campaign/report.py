"""Campaign outcomes: per-entry classification and process exit codes.

Every entry of a finished (or interrupted) campaign is classified:

- ``completed`` — ran to completion on the first attempt this run;
- ``retried``   — completed, but only after at least one watchdog
  timeout and retry;
- ``resumed``   — settled in a *previous* run and restored from the
  journal without re-running;
- ``timed-out`` — exceeded its deadline on every attempt the retry
  policy allowed; the campaign moved on;
- ``skipped``   — never reached because the operator interrupted the
  campaign (it will run on ``--resume``).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CampaignError
from repro.workloads.experiments import ExperimentResult

from repro.campaign.manifest import CampaignEntry

__all__ = [
    "CampaignOutcome",
    "CampaignReport",
    "ENTRY_STATUSES",
    "EXIT_OK",
    "EXIT_PROBLEMS",
    "EXIT_INTERRUPTED",
]

#: Exit code when every entry completed and every claim held.
EXIT_OK = 0
#: Exit code when the campaign finished but has timed-out entries or
#: violated claims.
EXIT_PROBLEMS = 1
#: Exit code when the operator interrupted the campaign (SIGINT/SIGTERM)
#: after a durable checkpoint: the run is partial but resumable with
#: ``--resume``.  75 is BSD's EX_TEMPFAIL ("temporary failure, retry").
EXIT_INTERRUPTED = 75

ENTRY_STATUSES = ("completed", "retried", "resumed", "timed-out", "skipped")

#: Statuses that carry a usable experiment result.
_PRODUCTIVE = ("completed", "retried", "resumed")


@dataclass(frozen=True)
class CampaignOutcome:
    """Final classification of one campaign entry."""

    entry: CampaignEntry
    status: str
    attempts: int
    elapsed_s: float
    result: Optional[ExperimentResult]
    violations: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.status not in ENTRY_STATUSES:
            raise CampaignError(
                f"unknown outcome status {self.status!r}; expected one "
                f"of {ENTRY_STATUSES}"
            )

    @property
    def entry_id(self) -> str:
        return self.entry.entry_id

    @property
    def ok(self) -> bool:
        """Produced a result and every recorded claim held."""
        return self.status in _PRODUCTIVE and not self.violations


@dataclass
class CampaignReport:
    """Everything one campaign run did, entry by entry."""

    campaign: str
    outcomes: List[CampaignOutcome] = field(default_factory=list)
    interrupted: bool = False
    journal_path: Optional[pathlib.Path] = None
    signal_name: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.interrupted and all(o.ok for o in self.outcomes)

    @property
    def counts(self) -> Dict[str, int]:
        """Entries per status, every status present (possibly 0)."""
        counts = {status: 0 for status in ENTRY_STATUSES}
        for outcome in self.outcomes:
            counts[outcome.status] += 1
        return counts

    @property
    def exit_code(self) -> int:
        if self.interrupted:
            return EXIT_INTERRUPTED
        return EXIT_OK if self.ok else EXIT_PROBLEMS

    def outcome(self, entry_id: str) -> CampaignOutcome:
        for candidate in self.outcomes:
            if candidate.entry_id == entry_id:
                return candidate
        raise CampaignError(
            f"campaign '{self.campaign}' has no outcome for '{entry_id}'"
        )

    def results(self) -> Dict[str, ExperimentResult]:
        """Experiment results of every productive entry, by entry id."""
        return {
            o.entry_id: o.result
            for o in self.outcomes
            if o.result is not None
        }

    def summary_lines(self) -> List[str]:
        """One status line per entry plus a totals line (for the CLI)."""
        lines = []
        for o in self.outcomes:
            detail = f"({o.elapsed_s:5.1f}s"
            if o.attempts > 1:
                detail += f", {o.attempts} attempts"
            detail += ")"
            lines.append(f"{o.entry_id:16s} {o.status:10s} {detail}")
            for violation in o.violations:
                lines.append(f"{'':16s} !! {violation}")
        counts = self.counts
        totals = ", ".join(
            f"{counts[s]} {s}" for s in ENTRY_STATUSES if counts[s]
        )
        lines.append(f"campaign '{self.campaign}': {totals or 'no entries'}")
        if self.interrupted:
            via = f" by {self.signal_name}" if self.signal_name else ""
            lines.append(
                f"interrupted{via} — journal checkpoint written; "
                "re-run with --resume to finish the remaining entries"
            )
        return lines
