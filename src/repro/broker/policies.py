"""Placement policies of the grid broker.

Every policy sees the same information at a decision point: the job, the
current simulated time, and the list of :class:`PlacementOption` — the
(replica, compute site, allocation) pairs that are *feasible right now*
given free node capacity, each carrying a calibrated predicted
breakdown.  Since the job has already waited in the queue until ``now``,
the predicted completion of an option is ``now + prediction.total`` —
queue wait plus :math:`\\hat T_{exec}`, the quantity the paper's model
makes cheap to evaluate.

- :class:`MinCompletionPolicy` — earliest predicted completion.
- :class:`MinCostPolicy` — fewest predicted node-hours (machines x time).
- :class:`DeadlineAwarePolicy` — cheapest option that still meets the
  job's deadline; *admission control* rejects jobs that cannot meet it
  (at arrival when even an idle grid is too slow, at placement when the
  realized queue wait has eaten the slack).
- :class:`RoundRobinPolicy` — the prediction-free baseline: rotate over
  compute sites and take the first configured allocation there.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.broker.jobs import BrokerJob
from repro.core.models import PredictedBreakdown
from repro.core.selection import SelectionCandidate
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "PlacementOption",
    "Rejection",
    "PlacementPolicy",
    "MinCompletionPolicy",
    "MinCostPolicy",
    "DeadlineAwarePolicy",
    "RoundRobinPolicy",
    "POLICY_NAMES",
    "make_policy",
]


@dataclass(frozen=True, slots=True)
class PlacementOption:
    """One feasible placement with raw and calibrated predictions.

    Under a grid fault schedule the option additionally carries the
    resume state of the job (``remaining_fraction`` of the work left
    after checkpoint-aware migration, plus the ``resume_charge``
    :math:`T_{recover}` seconds the candidate would pay to restore) and
    the ``wan_factor`` currently stretching the candidate's
    replica-to-compute network path.  All three default to the
    fault-free identity, so fault-free predictions are unchanged.
    """

    candidate: SelectionCandidate
    raw: PredictedBreakdown
    calibrated: PredictedBreakdown
    remaining_fraction: float = 1.0
    resume_charge: float = 0.0
    wan_factor: float = 1.0

    @property
    def replica_site(self) -> str:
        return self.candidate.replica_site

    @property
    def compute_site(self) -> str:
        return self.candidate.compute_site

    @property
    def data_nodes(self) -> int:
        return self.candidate.data_nodes

    @property
    def compute_nodes(self) -> int:
        return self.candidate.compute_nodes

    #: Calibrated predicted execution time of this attempt.
    #:
    #: For a resumed job only the remaining fraction of the work is
    #: predicted, plus the recovery charge; an active WAN degradation
    #: stretches the network component.  Fault-free this is exactly
    #: ``calibrated.total``.  Computed once at construction (the class
    #: is slotted, so ``functools.cached_property`` has no instance
    #: dict to cache into): options are immutable and the policies read
    #: this several times per decision.
    predicted_total: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # remaining_fraction <= 1, resume_charge >= 0 and wan_factor >= 1
        # by construction, so these inequalities test for the exact
        # fault-free identity values without a float-equality compare.
        if (
            self.remaining_fraction >= 1.0
            and self.resume_charge <= 0.0
            and self.wan_factor <= 1.0
        ):
            total = self.calibrated.total
        else:
            stretched = self.calibrated.total + self.calibrated.t_network * (
                self.wan_factor - 1.0
            )
            total = self.remaining_fraction * stretched + self.resume_charge
        object.__setattr__(self, "predicted_total", total)

    @property
    def node_hours(self) -> float:
        """Predicted cost: machines reserved x predicted time."""
        return (self.data_nodes + self.compute_nodes) * self.predicted_total

    @property
    def sort_label(self) -> tuple:
        """Deterministic final tie-break (cached on the candidate)."""
        return self.candidate.sort_key


@dataclass(frozen=True)
class Rejection:
    """A policy's refusal to place a job, with a machine-usable code."""

    code: str
    reason: str


class PlacementPolicy(abc.ABC):
    """Common interface; instances may be stateful — one per broker run."""

    #: CLI/report name.
    name: str = "policy"

    #: Whether :meth:`choose_index` implements this policy's decision.
    #: When true, the indexed engine's fault-free dispatch skips building
    #: :class:`PlacementOption` objects per candidate and scores the
    #: selection candidates with one calibrated scalar each (the fast
    #: path); only the winner is materialized.  Policies that leave this
    #: false fall back to :meth:`choose` over full option lists.
    scalar_choice: bool = False

    #: Whether the fast path must supply calibrated totals.  A policy
    #: that never reads predictions (round-robin) sets this to ``False``
    #: and the engine skips the correction calls entirely.
    needs_totals: bool = True

    def wants_admission_options(self, job: BrokerJob) -> bool:
        """Whether :meth:`admit` will actually read ``options`` for ``job``.

        Building the full-capacity option list costs one prediction per
        candidate, so at six-figure job counts the broker skips it for
        policies that admit unconditionally.  The default matches the
        default :meth:`admit` (which ignores its options); a policy that
        overrides :meth:`admit` to inspect options must override this
        too, or it will be handed an empty list.
        """
        return False

    def admit(
        self,
        job: BrokerJob,
        options: Sequence[PlacementOption],
        now: float,
    ) -> Optional[Rejection]:
        """Arrival-time admission check against an *idle* grid.

        ``options`` are the full-capacity placements (ignoring current
        load).  Returning a :class:`Rejection` drops the job before it
        ever queues; the default admits everything.
        """
        return None

    @abc.abstractmethod
    def choose(
        self,
        job: BrokerJob,
        options: Sequence[PlacementOption],
        now: float,
    ) -> PlacementOption | Rejection:
        """Pick among currently feasible options (never empty)."""

    def choose_index(
        self,
        job: BrokerJob,
        candidates: Sequence[SelectionCandidate],
        totals: Sequence[float],
        now: float,
    ) -> int | Rejection:
        """Scalar twin of :meth:`choose` for the indexed engine.

        ``candidates`` are the currently feasible selection candidates
        (never empty, in enumeration order) and ``totals[i]`` is the
        calibrated predicted total of ``candidates[i]`` — bit-identical
        to ``PlacementOption.predicted_total`` of the corresponding
        fault-free option (empty when :attr:`needs_totals` is false).
        Returns the winning index, or the same :class:`Rejection` that
        :meth:`choose` would return.  Only consulted when
        :attr:`scalar_choice` is true.
        """
        raise ConfigurationError(
            f"policy '{self.name}' does not implement the scalar fast path"
        )


class MinCompletionPolicy(PlacementPolicy):
    """Earliest predicted completion (= min calibrated T̂_exec now)."""

    name = "min-completion"
    scalar_choice = True

    def choose(self, job, options, now):
        return min(options, key=lambda o: (o.predicted_total, o.sort_label))

    def choose_index(self, job, candidates, totals, now):
        return min(
            range(len(candidates)),
            key=lambda i: (totals[i], candidates[i].sort_key),
        )


class MinCostPolicy(PlacementPolicy):
    """Fewest predicted node-hours; completion time breaks ties."""

    name = "min-cost"
    scalar_choice = True

    def choose(self, job, options, now):
        return min(
            options,
            key=lambda o: (o.node_hours, o.predicted_total, o.sort_label),
        )

    def choose_index(self, job, candidates, totals, now):
        def key(i: int) -> tuple:
            cand = candidates[i]
            # Same arithmetic as PlacementOption.node_hours.
            return (
                (cand.data_nodes + cand.compute_nodes) * totals[i],
                totals[i],
                cand.sort_key,
            )

        return min(range(len(candidates)), key=key)


class DeadlineAwarePolicy(PlacementPolicy):
    """Cheapest option that meets the deadline; rejects hopeless jobs.

    Jobs without a deadline fall back to min-completion behaviour.
    """

    name = "deadline-aware"
    scalar_choice = True

    def wants_admission_options(self, job):
        return job.deadline is not None

    def admit(self, job, options, now):
        if job.deadline is None:
            return None
        best = min(now + o.predicted_total for o in options)
        if best > job.deadline:
            return Rejection(
                code="deadline-unmeetable",
                reason=(
                    f"predicted completion {best:.4f}s exceeds deadline "
                    f"{job.deadline:.4f}s even on an idle grid"
                ),
            )
        return None

    def choose(self, job, options, now):
        if job.deadline is None:
            return min(
                options, key=lambda o: (o.predicted_total, o.sort_label)
            )
        meeting = [
            o for o in options if now + o.predicted_total <= job.deadline
        ]
        if not meeting:
            best = min(now + o.predicted_total for o in options)
            return Rejection(
                code="deadline-miss-predicted",
                reason=(
                    f"after waiting until t={now:.4f}s the best predicted "
                    f"completion {best:.4f}s exceeds deadline "
                    f"{job.deadline:.4f}s"
                ),
            )
        return min(
            meeting,
            key=lambda o: (o.node_hours, o.predicted_total, o.sort_label),
        )

    def choose_index(self, job, candidates, totals, now):
        def cost_key(i: int) -> tuple:
            cand = candidates[i]
            return (
                (cand.data_nodes + cand.compute_nodes) * totals[i],
                totals[i],
                cand.sort_key,
            )

        if job.deadline is None:
            return min(
                range(len(candidates)),
                key=lambda i: (totals[i], candidates[i].sort_key),
            )
        meeting = [
            i
            for i in range(len(candidates))
            if now + totals[i] <= job.deadline
        ]
        if not meeting:
            best = min(now + t for t in totals)
            return Rejection(
                code="deadline-miss-predicted",
                reason=(
                    f"after waiting until t={now:.4f}s the best predicted "
                    f"completion {best:.4f}s exceeds deadline "
                    f"{job.deadline:.4f}s"
                ),
            )
        return min(meeting, key=cost_key)


class RoundRobinPolicy(PlacementPolicy):
    """Prediction-free baseline: rotate compute sites, fixed allocation.

    The rotation pointer advances over the site list in registration
    order; at each decision the policy takes the first rotation site
    with a feasible option and, there, the first option in the broker's
    enumeration order (smallest allocation at the alphabetically first
    replica) — no predicted time is consulted.
    """

    name = "round-robin"
    scalar_choice = True
    needs_totals = False

    def __init__(self, compute_sites: Sequence[str]) -> None:
        if not compute_sites:
            raise ConfigurationError("round-robin needs compute sites")
        self._sites = list(compute_sites)
        self._next = 0

    def choose(self, job, options, now):
        for offset in range(len(self._sites)):
            site = self._sites[(self._next + offset) % len(self._sites)]
            here: List[PlacementOption] = [
                o for o in options if o.compute_site == site
            ]
            if here:
                self._next = (self._next + offset + 1) % len(self._sites)
                return min(
                    here,
                    key=lambda o: (
                        o.data_nodes + o.compute_nodes,
                        o.sort_label,
                    ),
                )
        # Options always name known compute sites, so this is unreachable
        # unless the policy was built for a different topology.
        raise ConfigurationError(
            "round-robin saw options for sites outside its rotation"
        )

    def choose_index(self, job, candidates, totals, now):
        for offset in range(len(self._sites)):
            site = self._sites[(self._next + offset) % len(self._sites)]
            here = [
                i
                for i, cand in enumerate(candidates)
                if cand.compute_site == site
            ]
            if here:
                self._next = (self._next + offset + 1) % len(self._sites)
                return min(
                    here,
                    key=lambda i: (
                        candidates[i].data_nodes
                        + candidates[i].compute_nodes,
                        candidates[i].sort_key,
                    ),
                )
        raise ConfigurationError(
            "round-robin saw options for sites outside its rotation"
        )


#: Names accepted by the CLI, in canonical order.
POLICY_NAMES = (
    "min-completion",
    "min-cost",
    "deadline-aware",
    "round-robin",
)


def make_policy(name: str, compute_sites: Sequence[str]) -> PlacementPolicy:
    """A fresh policy instance (policies may carry per-run state)."""
    if name == "min-completion":
        return MinCompletionPolicy()
    if name == "min-cost":
        return MinCostPolicy()
    if name == "deadline-aware":
        return DeadlineAwarePolicy()
    if name == "round-robin":
        return RoundRobinPolicy(compute_sites)
    raise ConfigurationError(
        f"unknown broker policy '{name}'; known: {', '.join(POLICY_NAMES)}"
    )
