"""Retained linear-path reference implementations of the broker core.

The scale-up PR replaced the broker's hot data structures with
incremental ones (see :mod:`repro.broker.events`).  This module keeps
the pre-scale-up behavior alive in two classes:

- :class:`LinearEventQueue` — a sorted-list event queue: every push is a
  ``bisect.insort`` on the composite index ``(time, kind, insertion
  seq)`` and every pop is a ``pop(0)``.  Its drain order is *by
  construction* the total order the indexed heap must reproduce, which
  is what the equivalence property suite asserts.
- :class:`LinearSitePool` — the pre-scale-up free-node bookkeeping: a
  sorted list of free indices, rebuilt on every release/restore and
  filtered on every shrink.

Both are wired up by ``engine="linear"`` on
:meth:`~repro.broker.engine.GridBroker.run`, which also routes
calibration through the uncached
:meth:`~repro.broker.calibration.OnlineCalibrator.reference_correct`
and rebuilds placement options from scratch on every decision.  That
configuration is the baseline ``benchmarks/bench_throughput.py``
measures the indexed engine against, and the oracle the equivalence
suite replays — same seeded workload, identical ``BrokerReport``
bytes, with and without grid faults.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Callable, List, Optional, Tuple

from repro.broker.events import Event, NodeWindow, OutageRecord, SitePool
from repro.simgrid.errors import ConfigurationError

__all__ = ["LinearEventQueue", "LinearSitePool"]


class LinearEventQueue:
    """Sorted-list event queue; the indexed heap's order oracle.

    API-compatible with :class:`~repro.broker.events.EventQueue`
    (push/pop/peek/len/bool and the ``peak_depth``/``total_pushed``
    stats), but every push pays an ``O(n)`` insertion-sort step and
    every pop an ``O(n)`` front removal — the costs the indexed heap
    removes.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self.peak_depth = 0
        self.total_pushed = 0

    def push(self, event: Event) -> None:
        if event.time < 0:
            raise ConfigurationError("event times must be >= 0")
        bisect.insort(
            self._entries,
            (event.time, int(event.kind), next(self._seq), event),
        )
        self.total_pushed += 1
        if len(self._entries) > self.peak_depth:
            self.peak_depth = len(self._entries)

    def pop(self) -> Event:
        if not self._entries:
            raise ConfigurationError("event queue is empty")
        return self._entries.pop(0)[3]

    def peek(self) -> Event:
        """The event :meth:`pop` would return, without removing it."""
        if not self._entries:
            raise ConfigurationError("event queue is empty")
        return self._entries[0][3]

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


class LinearSitePool(SitePool):
    """Pre-scale-up free-node bookkeeping: one sorted list per site.

    Overrides only the free-structure management of
    :class:`~repro.broker.events.SitePool`; the reservation history,
    outage records, and fault quiescing are shared.  Acquisition slices
    the ``count`` lowest entries off the sorted list; release and
    restore rebuild it with ``sorted()``; shrink filters it — exactly
    the pre-scale-up code, with the ledger version tick added so both
    pool flavors honor the same change-clock contract.
    """

    def __init__(
        self,
        name: str,
        num_nodes: int,
        on_change: Optional[Callable[[], None]] = None,
    ) -> None:
        super().__init__(name, num_nodes, on_change=on_change)
        self._free = list(range(num_nodes))  # kept sorted
        # Neutralize the inherited heap bookkeeping: the linear pool's
        # source of truth is the sorted list alone.
        self._free_heap = []
        self._free_set = set()

    @property
    def free_count(self) -> int:
        return 0 if self.down else len(self._free)

    def acquire(
        self, count: int, job_id: str, start: float, end: float
    ) -> Tuple[int, ...]:
        """Reserve ``count`` nodes over ``[start, end)``; returns their ids."""
        if count <= 0:
            raise ConfigurationError("must acquire at least one node")
        if end <= start:
            raise ConfigurationError("reservation must have positive length")
        if self.down:
            raise ConfigurationError(
                f"site '{self.name}' is down; cannot acquire nodes"
            )
        if count > len(self._free):
            raise ConfigurationError(
                f"site '{self.name}' has {len(self._free)} free node(s); "
                f"cannot acquire {count}"
            )
        taken = tuple(self._free[:count])
        del self._free[:count]
        for node in taken:
            self.windows.append(
                NodeWindow(
                    site=self.name,
                    node=node,
                    start=start,
                    end=end,
                    job_id=job_id,
                )
            )
        self._changed()
        return taken

    def release(self, nodes: Tuple[int, ...]) -> None:
        """Return previously acquired nodes to the free pool."""
        for node in nodes:
            if node in self._free or not 0 <= node < self.num_nodes:
                raise ConfigurationError(
                    f"site '{self.name}': node {node} is not reserved"
                )
        returned = [n for n in nodes if n not in self._removed]
        self._free = sorted(self._free + returned)
        self._changed()

    def shrink(self, count: int, at: float) -> Tuple[int, ...]:
        """Remove the ``count`` highest not-yet-removed nodes at ``at``."""
        if count <= 0:
            raise ConfigurationError("must shrink by at least one node")
        victims = tuple(
            node
            for node in range(self.num_nodes - 1, -1, -1)
            if node not in self._removed
        )[:count]
        if not victims:
            return ()
        self._removed.update(victims)
        self._free = [n for n in self._free if n not in self._removed]
        self.outages.append(
            OutageRecord(
                site=self.name, start=at, nodes=tuple(sorted(victims))
            )
        )
        self._changed()
        return victims

    def restore(self, nodes: Tuple[int, ...], at: float) -> None:
        """Return previously shrunk nodes to service at ``at``."""
        restored = set(nodes)
        missing = restored - self._removed
        if missing:
            raise ConfigurationError(
                f"site '{self.name}': nodes {sorted(missing)} were not "
                "shrunk; cannot restore them"
            )
        self._removed -= restored
        self._free = sorted(self._free + list(restored))
        for index, record in enumerate(self.outages):
            if record.end is None and record.nodes is not None and set(
                record.nodes
            ) == restored:
                self.outages[index] = OutageRecord(
                    site=record.site,
                    start=record.start,
                    end=at,
                    nodes=record.nodes,
                )
                break
        self._changed()
