"""The broker's result artefact: placements, rejections, metrics.

A :class:`BrokerReport` is the durable output of one ``repro broker``
run: per policy, where every job ran (with the exact node windows), why
any job was rejected, the headline metrics (makespan, mean queue wait,
deadline-miss rate) and the rolling prediction-error series in
completion order — the curve that shows online calibration converging.

Serialization goes through :func:`repro.core.durable.canonical_json`,
so replaying the same seeded workload produces a byte-identical report
file (asserted by ``benchmarks/bench_broker.py``).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.durable import atomic_write_json, read_json_document
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "BrokerPlacement",
    "BrokerRejection",
    "PolicyRun",
    "BrokerReport",
    "load_report",
]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BrokerPlacement:
    """One completed job: where, when, and how well it was predicted."""

    job_id: str
    workload: str
    replica_site: str
    compute_site: str
    data_nodes: int
    compute_nodes: int
    data_node_ids: Tuple[int, ...]
    compute_node_ids: Tuple[int, ...]
    arrival: float
    start: float
    end: float
    predicted_total: float
    raw_predicted_total: float
    deadline: Optional[float] = None
    priority: int = 0

    @property
    def wait(self) -> float:
        """Queue wait: placement start minus arrival."""
        return self.start - self.arrival

    @property
    def actual_total(self) -> float:
        return self.end - self.start

    @property
    def relative_error(self) -> float:
        """|actual - predicted| / actual of the calibrated prediction."""
        return abs(self.actual_total - self.predicted_total) / self.actual_total

    @property
    def missed_deadline(self) -> bool:
        return self.deadline is not None and self.end > self.deadline

    @property
    def label(self) -> str:
        return (
            f"{self.job_id}: {self.replica_site}[{self.data_nodes}] -> "
            f"{self.compute_site}[{self.compute_nodes}]"
        )


@dataclass(frozen=True)
class BrokerRejection:
    """One job the broker refused, with a machine-usable code."""

    job_id: str
    workload: str
    time: float
    code: str
    reason: str
    deadline: Optional[float] = None


@dataclass(frozen=True)
class PolicyRun:
    """Everything one policy did to one job stream."""

    policy: str
    calibrated: bool
    placements: Tuple[BrokerPlacement, ...]
    rejections: Tuple[BrokerRejection, ...]
    #: (job_id, relative error) in *completion* order — the rolling
    #: prediction-error series.
    error_series: Tuple[Tuple[str, float], ...]
    #: Final calibration factors, ``component -> 'app @ resource' -> f``.
    calibration_factors: Dict[str, Dict[str, float]] = field(
        default_factory=dict
    )

    @property
    def label(self) -> str:
        suffix = "" if self.calibrated else " (uncalibrated)"
        return f"{self.policy}{suffix}"

    @property
    def jobs(self) -> int:
        return len(self.placements) + len(self.rejections)

    @property
    def makespan(self) -> float:
        """Completion time of the last placed job (0 when none ran)."""
        return max((p.end for p in self.placements), default=0.0)

    @property
    def mean_wait(self) -> float:
        if not self.placements:
            return 0.0
        return sum(p.wait for p in self.placements) / len(self.placements)

    @property
    def deadline_miss_rate(self) -> float:
        """Share of deadline jobs not served by their deadline.

        A *rejected* job with a deadline counts as missed — otherwise a
        policy could zero its miss rate by refusing every hard job.
        """
        with_deadline = [p for p in self.placements if p.deadline is not None]
        rejected = [r for r in self.rejections if r.deadline is not None]
        total = len(with_deadline) + len(rejected)
        if total == 0:
            return 0.0
        missed = sum(1 for p in with_deadline if p.missed_deadline)
        return (missed + len(rejected)) / total

    def mean_error(self, last: Optional[int] = None) -> float:
        """Mean relative prediction error, optionally of the last N jobs."""
        series = [err for _, err in self.error_series]
        if last is not None:
            series = series[-last:]
        if not series:
            return 0.0
        return sum(series) / len(series)


@dataclass(frozen=True)
class BrokerReport:
    """Per-policy outcomes of one broker workload."""

    name: str
    runs: Tuple[PolicyRun, ...]

    def run(self, label: str) -> PolicyRun:
        for run in self.runs:
            if run.label == label or run.policy == label:
                return run
        raise ConfigurationError(f"no policy run labelled '{label}'")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": _FORMAT_VERSION,
            "kind": "broker-report",
            "name": self.name,
            "runs": [_run_to_dict(run) for run in self.runs],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "BrokerReport":
        version = doc.get("format_version")
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported broker report format_version {version!r}"
            )
        return cls(
            name=str(doc["name"]),
            runs=tuple(_run_from_dict(entry) for entry in doc["runs"]),
        )

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Durably write the report as canonical JSON."""
        return atomic_write_json(path, self.to_dict())


def load_report(path: str | pathlib.Path) -> BrokerReport:
    """Load a saved broker report."""
    doc = read_json_document(
        path,
        "broker report",
        expected_version=_FORMAT_VERSION,
        remedy="re-run `repro broker WORKLOAD.json --report PATH`",
    )
    return BrokerReport.from_dict(doc)


# ----------------------------------------------------------------------


def _run_to_dict(run: PolicyRun) -> Dict[str, Any]:
    return {
        "policy": run.policy,
        "calibrated": run.calibrated,
        "placements": [
            {
                "job_id": p.job_id,
                "workload": p.workload,
                "replica_site": p.replica_site,
                "compute_site": p.compute_site,
                "data_nodes": p.data_nodes,
                "compute_nodes": p.compute_nodes,
                "data_node_ids": list(p.data_node_ids),
                "compute_node_ids": list(p.compute_node_ids),
                "arrival": p.arrival,
                "start": p.start,
                "end": p.end,
                "predicted_total": p.predicted_total,
                "raw_predicted_total": p.raw_predicted_total,
                "deadline": p.deadline,
                "priority": p.priority,
            }
            for p in run.placements
        ],
        "rejections": [
            {
                "job_id": r.job_id,
                "workload": r.workload,
                "time": r.time,
                "code": r.code,
                "reason": r.reason,
                "deadline": r.deadline,
            }
            for r in run.rejections
        ],
        "error_series": [[job_id, err] for job_id, err in run.error_series],
        "calibration_factors": run.calibration_factors,
        "metrics": {
            "jobs": run.jobs,
            "completed": len(run.placements),
            "rejected": len(run.rejections),
            "makespan": run.makespan,
            "mean_wait": run.mean_wait,
            "deadline_miss_rate": run.deadline_miss_rate,
            "mean_error": run.mean_error(),
        },
    }


def _run_from_dict(doc: Dict[str, Any]) -> PolicyRun:
    placements: List[BrokerPlacement] = [
        BrokerPlacement(
            job_id=str(p["job_id"]),
            workload=str(p["workload"]),
            replica_site=str(p["replica_site"]),
            compute_site=str(p["compute_site"]),
            data_nodes=int(p["data_nodes"]),
            compute_nodes=int(p["compute_nodes"]),
            data_node_ids=tuple(int(n) for n in p["data_node_ids"]),
            compute_node_ids=tuple(int(n) for n in p["compute_node_ids"]),
            arrival=float(p["arrival"]),
            start=float(p["start"]),
            end=float(p["end"]),
            predicted_total=float(p["predicted_total"]),
            raw_predicted_total=float(p["raw_predicted_total"]),
            deadline=(
                float(p["deadline"]) if p.get("deadline") is not None else None
            ),
            priority=int(p.get("priority", 0)),
        )
        for p in doc["placements"]
    ]
    rejections = tuple(
        BrokerRejection(
            job_id=str(r["job_id"]),
            workload=str(r["workload"]),
            time=float(r["time"]),
            code=str(r["code"]),
            reason=str(r["reason"]),
            deadline=(
                float(r["deadline"]) if r.get("deadline") is not None else None
            ),
        )
        for r in doc["rejections"]
    )
    return PolicyRun(
        policy=str(doc["policy"]),
        calibrated=bool(doc["calibrated"]),
        placements=tuple(placements),
        rejections=rejections,
        error_series=tuple(
            (str(job_id), float(err)) for job_id, err in doc["error_series"]
        ),
        calibration_factors={
            str(comp): {str(k): float(v) for k, v in factors.items()}
            for comp, factors in doc.get("calibration_factors", {}).items()
        },
    )
