"""The broker's result artefact: placements, rejections, metrics.

A :class:`BrokerReport` is the durable output of one ``repro broker``
run: per policy, where every job ran (with the exact node windows), why
any job was rejected, the headline metrics (makespan, mean queue wait,
deadline-miss rate) and the rolling prediction-error series in
completion order — the curve that shows online calibration converging.

Runs under a grid fault schedule additionally carry the fault timeline
(:class:`GridFaultEvent`), every torn-down attempt
(:class:`BrokerPreemption`), jobs whose retry budget ran out
(:class:`TerminalFailure`), and resilience metrics — goodput, recovery
overhead, per-fault-kind breakdowns.  Fault-free runs serialize exactly
as they did before the fault model existed: the resilience keys are
omitted, so pre-fault reports stay byte-identical.

Serialization goes through :func:`repro.core.durable.canonical_json`,
so replaying the same seeded workload produces a byte-identical report
file (asserted by ``benchmarks/bench_broker.py``).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.durable import atomic_write_json, read_json_document
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "BrokerPlacement",
    "BrokerRejection",
    "BrokerPreemption",
    "GridFaultEvent",
    "TerminalFailure",
    "PolicyRun",
    "BrokerReport",
    "load_report",
]

_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class BrokerPlacement:
    """One completed job: where, when, and how well it was predicted.

    ``attempt`` counts placement attempts (1 = never preempted);
    ``recovery_charge`` is the :math:`T_{recover}` seconds folded into
    this attempt's execution by checkpoint-aware migration.
    """

    job_id: str
    workload: str
    replica_site: str
    compute_site: str
    data_nodes: int
    compute_nodes: int
    data_node_ids: Tuple[int, ...]
    compute_node_ids: Tuple[int, ...]
    arrival: float
    start: float
    end: float
    predicted_total: float
    raw_predicted_total: float
    deadline: Optional[float] = None
    priority: int = 0
    attempt: int = 1
    recovery_charge: float = 0.0

    @property
    def wait(self) -> float:
        """Queue wait: placement start minus arrival."""
        return self.start - self.arrival

    @property
    def actual_total(self) -> float:
        return self.end - self.start

    @property
    def relative_error(self) -> float:
        """|actual - predicted| / actual of the calibrated prediction."""
        return abs(self.actual_total - self.predicted_total) / self.actual_total

    @property
    def missed_deadline(self) -> bool:
        return self.deadline is not None and self.end > self.deadline

    @property
    def label(self) -> str:
        return (
            f"{self.job_id}: {self.replica_site}[{self.data_nodes}] -> "
            f"{self.compute_site}[{self.compute_nodes}]"
        )


@dataclass(frozen=True, slots=True)
class BrokerRejection:
    """One job the broker refused, with a machine-usable code.

    ``vo``/``arrival_index`` carry the refused job's trace identity when
    the workload provides one (``None`` for hand-written workloads, and
    omitted from serialization so pre-trace reports stay byte-identical).
    """

    job_id: str
    workload: str
    time: float
    code: str
    reason: str
    deadline: Optional[float] = None
    vo: Optional[str] = None
    arrival_index: Optional[int] = None


@dataclass(frozen=True, slots=True)
class GridFaultEvent:
    """One grid fault becoming active or healing, on the broker clock."""

    time: float
    kind: str
    target: str
    detail: str = ""


@dataclass(frozen=True, slots=True)
class BrokerPreemption:
    """One execution attempt torn down by a grid fault.

    ``wasted`` is the simulated time the attempt spent that the next
    attempt cannot reuse; ``kept_fraction`` is the share of the job's
    passes whose checkpoints survived (0 under resubmit recovery).
    """

    job_id: str
    workload: str
    attempt: int
    time: float
    start: float
    cause: str
    site: str
    wasted: float
    kept_fraction: float = 0.0


@dataclass(frozen=True, slots=True)
class TerminalFailure:
    """One admitted job the broker could not finish."""

    job_id: str
    workload: str
    time: float
    code: str
    reason: str
    attempts: int
    deadline: Optional[float] = None


@dataclass(frozen=True, slots=True)
class PolicyRun:
    """Everything one policy did to one job stream."""

    policy: str
    calibrated: bool
    placements: Tuple[BrokerPlacement, ...]
    rejections: Tuple[BrokerRejection, ...]
    #: (job_id, relative error) in *completion* order — the rolling
    #: prediction-error series.
    error_series: Tuple[Tuple[str, float], ...]
    #: Final calibration factors, ``component -> 'app @ resource' -> f``.
    calibration_factors: Dict[str, Dict[str, float]] = field(
        default_factory=dict
    )
    #: Recovery policy name when a grid fault schedule was installed.
    recovery: Optional[str] = None
    fault_events: Tuple[GridFaultEvent, ...] = ()
    preemptions: Tuple[BrokerPreemption, ...] = ()
    failures: Tuple[TerminalFailure, ...] = ()

    @property
    def label(self) -> str:
        suffix = "" if self.calibrated else " (uncalibrated)"
        return f"{self.policy}{suffix}"

    @property
    def faulted(self) -> bool:
        """Whether this run executed under a grid fault schedule."""
        return self.recovery is not None

    @property
    def jobs(self) -> int:
        return len(self.placements) + len(self.rejections) + len(self.failures)

    @property
    def makespan(self) -> float:
        """Completion time of the last placed job (0 when none ran)."""
        return max((p.end for p in self.placements), default=0.0)

    @property
    def mean_wait(self) -> float:
        if not self.placements:
            return 0.0
        return sum(p.wait for p in self.placements) / len(self.placements)

    @property
    def deadline_miss_rate(self) -> float:
        """Share of deadline jobs not served by their deadline.

        A *rejected* or *terminally failed* job with a deadline counts
        as missed — otherwise a policy could zero its miss rate by
        refusing or abandoning every hard job.
        """
        with_deadline = [p for p in self.placements if p.deadline is not None]
        unserved = [r for r in self.rejections if r.deadline is not None]
        unserved += [f for f in self.failures if f.deadline is not None]
        total = len(with_deadline) + len(unserved)
        if total == 0:
            return 0.0
        missed = sum(1 for p in with_deadline if p.missed_deadline)
        return (missed + len(unserved)) / total

    def mean_error(self, last: Optional[int] = None) -> float:
        """Mean relative prediction error, optionally of the last N jobs."""
        series = [err for _, err in self.error_series]
        if last is not None:
            series = series[-last:]
        if not series:
            return 0.0
        return sum(series) / len(series)

    # ------------------------------------------------------------------
    # Resilience metrics
    # ------------------------------------------------------------------

    @property
    def wasted_time(self) -> float:
        """Simulated node time lost to torn-down attempts."""
        return sum(p.wasted for p in self.preemptions)

    @property
    def recovery_charge_time(self) -> float:
        """Total :math:`T_{recover}` charged by migrations."""
        return sum(p.recovery_charge for p in self.placements)

    @property
    def recovery_overhead_time(self) -> float:
        """Wasted attempt time plus migration recovery charges."""
        return self.wasted_time + self.recovery_charge_time

    @property
    def goodput(self) -> float:
        """Useful execution time over total execution time spent.

        Useful time is the final attempts' execution minus recovery
        charges; the denominator adds the time wasted in torn-down
        attempts.  1.0 on a fault-free run; lower means the grid burned
        capacity on work it had to redo.
        """
        useful = sum(
            p.actual_total - p.recovery_charge for p in self.placements
        )
        spent = useful + self.recovery_overhead_time
        if spent <= 0.0:
            return 1.0
        return useful / spent

    @property
    def rejections_by_vo(self) -> Dict[str, int]:
        """Rejection counts per VO tag, sorted by key.

        Only VO-tagged rejections are counted — on six-figure trace runs
        this is the aggregate reports read instead of the per-job list.
        """
        counts: Dict[str, int] = {}
        for r in self.rejections:
            if r.vo is not None:
                counts[r.vo] = counts.get(r.vo, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def preemptions_by_cause(self) -> Dict[str, int]:
        """Preemption counts keyed by fault kind, sorted by key."""
        counts: Dict[str, int] = {}
        for p in self.preemptions:
            counts[p.cause] = counts.get(p.cause, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def fault_counts(self) -> Dict[str, int]:
        """Fault-event counts keyed by event kind, sorted by key."""
        counts: Dict[str, int] = {}
        for e in self.fault_events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return dict(sorted(counts.items()))


@dataclass(frozen=True, slots=True)
class BrokerReport:
    """Per-policy outcomes of one broker workload."""

    name: str
    runs: Tuple[PolicyRun, ...]

    def run(self, label: str) -> PolicyRun:
        for run in self.runs:
            if run.label == label or run.policy == label:
                return run
        raise ConfigurationError(f"no policy run labelled '{label}'")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": _FORMAT_VERSION,
            "kind": "broker-report",
            "name": self.name,
            "runs": [_run_to_dict(run) for run in self.runs],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "BrokerReport":
        version = doc.get("format_version")
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported broker report format_version {version!r}"
            )
        return cls(
            name=str(doc["name"]),
            runs=tuple(_run_from_dict(entry) for entry in doc["runs"]),
        )

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Durably write the report as canonical JSON."""
        return atomic_write_json(path, self.to_dict())


def load_report(path: str | pathlib.Path) -> BrokerReport:
    """Load a saved broker report."""
    doc = read_json_document(
        path,
        "broker report",
        expected_version=_FORMAT_VERSION,
        remedy="re-run `repro broker WORKLOAD.json --report PATH`",
    )
    return BrokerReport.from_dict(doc)


# ----------------------------------------------------------------------


def _rejection_to_dict(r: BrokerRejection) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "job_id": r.job_id,
        "workload": r.workload,
        "time": r.time,
        "code": r.code,
        "reason": r.reason,
        "deadline": r.deadline,
    }
    # Pre-trace reports stay byte-identical: emit the trace identity
    # only when the workload actually carries one.
    if r.vo is not None:
        entry["vo"] = r.vo
    if r.arrival_index is not None:
        entry["arrival_index"] = r.arrival_index
    return entry


def _placement_to_dict(p: BrokerPlacement) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "job_id": p.job_id,
        "workload": p.workload,
        "replica_site": p.replica_site,
        "compute_site": p.compute_site,
        "data_nodes": p.data_nodes,
        "compute_nodes": p.compute_nodes,
        "data_node_ids": list(p.data_node_ids),
        "compute_node_ids": list(p.compute_node_ids),
        "arrival": p.arrival,
        "start": p.start,
        "end": p.end,
        "predicted_total": p.predicted_total,
        "raw_predicted_total": p.raw_predicted_total,
        "deadline": p.deadline,
        "priority": p.priority,
    }
    # Fault-free reports stay byte-identical: emit the resilience
    # fields only when they deviate from the fault-free defaults.
    if p.attempt != 1:
        entry["attempt"] = p.attempt
    if p.recovery_charge:
        entry["recovery_charge"] = p.recovery_charge
    return entry


def _run_to_dict(run: PolicyRun) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "policy": run.policy,
        "calibrated": run.calibrated,
        "placements": [_placement_to_dict(p) for p in run.placements],
        "rejections": [_rejection_to_dict(r) for r in run.rejections],
        "error_series": [[job_id, err] for job_id, err in run.error_series],
        "calibration_factors": run.calibration_factors,
        "metrics": {
            "jobs": run.jobs,
            "completed": len(run.placements),
            "rejected": len(run.rejections),
            "makespan": run.makespan,
            "mean_wait": run.mean_wait,
            "deadline_miss_rate": run.deadline_miss_rate,
            "mean_error": run.mean_error(),
        },
    }
    by_vo = run.rejections_by_vo
    if by_vo:
        doc["metrics"]["rejections_by_vo"] = by_vo
    if run.faulted:
        doc["recovery"] = run.recovery
        doc["fault_events"] = [
            {
                "time": e.time,
                "kind": e.kind,
                "target": e.target,
                "detail": e.detail,
            }
            for e in run.fault_events
        ]
        doc["preemptions"] = [
            {
                "job_id": p.job_id,
                "workload": p.workload,
                "attempt": p.attempt,
                "time": p.time,
                "start": p.start,
                "cause": p.cause,
                "site": p.site,
                "wasted": p.wasted,
                "kept_fraction": p.kept_fraction,
            }
            for p in run.preemptions
        ]
        doc["failures"] = [
            {
                "job_id": f.job_id,
                "workload": f.workload,
                "time": f.time,
                "code": f.code,
                "reason": f.reason,
                "attempts": f.attempts,
                "deadline": f.deadline,
            }
            for f in run.failures
        ]
        doc["metrics"]["failed"] = len(run.failures)
        doc["metrics"]["resilience"] = {
            "goodput": run.goodput,
            "wasted_time": run.wasted_time,
            "recovery_charge_time": run.recovery_charge_time,
            "recovery_overhead_time": run.recovery_overhead_time,
            "preemptions": len(run.preemptions),
            "preemptions_by_cause": run.preemptions_by_cause,
            "fault_counts": run.fault_counts,
        }
    return doc


def _run_from_dict(doc: Dict[str, Any]) -> PolicyRun:
    placements: List[BrokerPlacement] = [
        BrokerPlacement(
            job_id=str(p["job_id"]),
            workload=str(p["workload"]),
            replica_site=str(p["replica_site"]),
            compute_site=str(p["compute_site"]),
            data_nodes=int(p["data_nodes"]),
            compute_nodes=int(p["compute_nodes"]),
            data_node_ids=tuple(int(n) for n in p["data_node_ids"]),
            compute_node_ids=tuple(int(n) for n in p["compute_node_ids"]),
            arrival=float(p["arrival"]),
            start=float(p["start"]),
            end=float(p["end"]),
            predicted_total=float(p["predicted_total"]),
            raw_predicted_total=float(p["raw_predicted_total"]),
            deadline=(
                float(p["deadline"]) if p.get("deadline") is not None else None
            ),
            priority=int(p.get("priority", 0)),
            attempt=int(p.get("attempt", 1)),
            recovery_charge=float(p.get("recovery_charge", 0.0)),
        )
        for p in doc["placements"]
    ]
    rejections = tuple(
        BrokerRejection(
            job_id=str(r["job_id"]),
            workload=str(r["workload"]),
            time=float(r["time"]),
            code=str(r["code"]),
            reason=str(r["reason"]),
            deadline=(
                float(r["deadline"]) if r.get("deadline") is not None else None
            ),
            vo=(str(r["vo"]) if r.get("vo") is not None else None),
            arrival_index=(
                int(r["arrival_index"])
                if r.get("arrival_index") is not None
                else None
            ),
        )
        for r in doc["rejections"]
    )
    fault_events = tuple(
        GridFaultEvent(
            time=float(e["time"]),
            kind=str(e["kind"]),
            target=str(e["target"]),
            detail=str(e.get("detail", "")),
        )
        for e in doc.get("fault_events", [])
    )
    preemptions = tuple(
        BrokerPreemption(
            job_id=str(p["job_id"]),
            workload=str(p["workload"]),
            attempt=int(p["attempt"]),
            time=float(p["time"]),
            start=float(p["start"]),
            cause=str(p["cause"]),
            site=str(p["site"]),
            wasted=float(p["wasted"]),
            kept_fraction=float(p.get("kept_fraction", 0.0)),
        )
        for p in doc.get("preemptions", [])
    )
    failures = tuple(
        TerminalFailure(
            job_id=str(f["job_id"]),
            workload=str(f["workload"]),
            time=float(f["time"]),
            code=str(f["code"]),
            reason=str(f["reason"]),
            attempts=int(f["attempts"]),
            deadline=(
                float(f["deadline"]) if f.get("deadline") is not None else None
            ),
        )
        for f in doc.get("failures", [])
    )
    recovery = doc.get("recovery")
    return PolicyRun(
        policy=str(doc["policy"]),
        calibrated=bool(doc["calibrated"]),
        placements=tuple(placements),
        rejections=rejections,
        error_series=tuple(
            (str(job_id), float(err)) for job_id, err in doc["error_series"]
        ),
        calibration_factors={
            str(comp): {str(k): float(v) for k, v in factors.items()}
            for comp, factors in doc.get("calibration_factors", {}).items()
        },
        recovery=None if recovery is None else str(recovery),
        fault_events=fault_events,
        preemptions=preemptions,
        failures=failures,
    )
