"""Broker jobs and the JSON workload documents ``repro broker`` consumes.

A *broker workload* describes one experiment: the grid (sites, links),
the candidate node allocations, where each dataset is replicated, and
the job stream — either an explicit list of jobs or a seeded
:class:`~repro.workloads.streams.StreamSpec` the broker expands
deterministically.  Example document::

    {
      "name": "demo",
      "allocations": [[1, 2], [2, 4]],
      "sites": [
        {"name": "repo-a", "kind": "repository",
         "cluster": "pentium-myrinet", "nodes": 16},
        {"name": "hpc-1", "kind": "compute",
         "cluster": "opteron-infiniband", "nodes": 16}
      ],
      "links": [{"a": "repo-a", "b": "hpc-1", "bw": 2.0e6}],
      "replicas": {"knn@350 MB": ["repo-a"]},
      "jobs": [
        {"id": "j0", "workload": "knn", "size": "350 MB",
         "arrival": 0.0, "deadline": 3.0, "priority": 1}
      ]
    }

``replicas`` is optional (default: every repository site holds every
dataset), as is ``priority`` (default 0; higher runs first) and
``deadline`` (default none).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.simgrid.errors import ConfigurationError
from repro.simgrid.topology import GridTopology, SiteKind

__all__ = [
    "BrokerJob",
    "BrokerWorkloadDoc",
    "parse_workload_document",
    "load_workload_document",
    "sorted_jobs",
]


@dataclass(frozen=True)
class BrokerJob:
    """One job of the stream submitted to the broker.

    ``size`` is a dataset-size label of the workload (``None`` = the
    workload's default size).  ``deadline`` is an absolute simulated
    time; ``priority`` orders the wait queue (higher first, FIFO within
    a priority level).

    ``vo`` tags the submitting virtual organisation (trace workloads
    carry real per-VO mixes; ``None`` = untagged) and ``arrival_index``
    is the job's zero-based position in arrival order within its trace
    (``None`` for hand-written workloads).  Both ride along so
    six-figure-run reports can aggregate — e.g. rejections per VO —
    without a join back to the trace artifact.
    """

    job_id: str
    workload: str
    size: Optional[str] = None
    arrival: float = 0.0
    deadline: Optional[float] = None
    priority: int = 0
    vo: Optional[str] = None
    arrival_index: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("jobs need a non-empty id")
        if self.arrival < 0:
            raise ConfigurationError(
                f"job '{self.job_id}': arrival time must be >= 0"
            )
        if self.deadline is not None and self.deadline <= self.arrival:
            raise ConfigurationError(
                f"job '{self.job_id}': deadline must be after arrival"
            )

    @property
    def dataset_key(self) -> str:
        """The ``workload@size`` key used by replica placements."""
        return f"{self.workload}@{self.size}" if self.size else self.workload


def _cluster_factories():
    # Imported lazily: workloads.streams imports this module, so a
    # module-level import would create a package cycle.
    from repro.workloads.clusters import (
        opteron_infiniband_cluster,
        pentium_myrinet_cluster,
    )

    return {
        "pentium-myrinet": pentium_myrinet_cluster,
        "opteron-infiniband": opteron_infiniband_cluster,
    }


@dataclass
class BrokerWorkloadDoc:
    """A parsed broker workload document."""

    name: str
    allocations: List[Tuple[int, int]]
    sites: List[Dict[str, Any]]
    links: List[Dict[str, Any]]
    replicas: Dict[str, List[str]] = field(default_factory=dict)
    jobs: Tuple[BrokerJob, ...] = ()
    stream: Optional[Dict[str, Any]] = None

    def build_topology(self) -> GridTopology:
        """Materialize the document's grid as a :class:`GridTopology`."""
        factories = _cluster_factories()
        topology = GridTopology()
        for site in self.sites:
            factory = factories.get(site["cluster"])
            if factory is None:
                raise ConfigurationError(
                    f"unknown cluster '{site['cluster']}' for site "
                    f"'{site['name']}'; known: {sorted(factories)}"
                )
            kind = SiteKind(site["kind"])
            topology.add_site(
                site["name"], kind, factory(num_nodes=int(site["nodes"]))
            )
        for link in self.links:
            topology.connect(
                link["a"],
                link["b"],
                bw=float(link["bw"]),
                latency_s=float(link.get("latency_s", 0.0)),
            )
        return topology


def parse_workload_document(doc: Mapping[str, Any]) -> BrokerWorkloadDoc:
    """Validate and parse a broker workload dictionary."""
    if not isinstance(doc, Mapping):
        raise ConfigurationError("broker workload must be a JSON object")
    name = str(doc.get("name", "broker-workload"))

    raw_sites = doc.get("sites")
    if not raw_sites:
        raise ConfigurationError("broker workload needs a 'sites' list")
    sites: List[Dict[str, Any]] = []
    for entry in raw_sites:
        for key in ("name", "kind", "cluster"):
            if key not in entry:
                raise ConfigurationError(f"every site needs a '{key}'")
        try:
            SiteKind(entry["kind"])
        except ValueError as exc:
            raise ConfigurationError(
                f"site '{entry['name']}': unknown kind '{entry['kind']}'"
            ) from exc
        sites.append(
            {
                "name": str(entry["name"]),
                "kind": str(entry["kind"]),
                "cluster": str(entry["cluster"]),
                "nodes": int(entry.get("nodes", 8)),
            }
        )

    allocations = [
        (int(n), int(c)) for n, c in doc.get("allocations", [[1, 2], [2, 4]])
    ]
    links = [dict(link) for link in doc.get("links", [])]
    replicas = {
        str(key): [str(s) for s in sites_list]
        for key, sites_list in dict(doc.get("replicas", {})).items()
    }

    jobs = tuple(
        BrokerJob(
            job_id=str(entry["id"]),
            workload=str(entry["workload"]),
            size=entry.get("size"),
            arrival=float(entry.get("arrival", 0.0)),
            deadline=(
                float(entry["deadline"])
                if entry.get("deadline") is not None
                else None
            ),
            priority=int(entry.get("priority", 0)),
            vo=(
                str(entry["vo"]) if entry.get("vo") is not None else None
            ),
            arrival_index=(
                int(entry["arrival_index"])
                if entry.get("arrival_index") is not None
                else None
            ),
        )
        for entry in doc.get("jobs", [])
    )
    seen: set[str] = set()
    for job in jobs:
        if job.job_id in seen:
            raise ConfigurationError(f"duplicate job id '{job.job_id}'")
        seen.add(job.job_id)

    stream = doc.get("stream")
    if stream is not None:
        stream = dict(stream)
    if not jobs and stream is None:
        raise ConfigurationError(
            "broker workload needs either 'jobs' or a 'stream' spec"
        )
    if jobs and stream is not None:
        raise ConfigurationError(
            "give either explicit 'jobs' or a 'stream' spec, not both"
        )

    return BrokerWorkloadDoc(
        name=name,
        allocations=allocations,
        sites=sites,
        links=links,
        replicas=replicas,
        jobs=jobs,
        stream=stream,
    )


def load_workload_document(path: str | pathlib.Path) -> BrokerWorkloadDoc:
    """Load and parse a broker workload JSON file."""
    from repro.core.durable import read_json_document

    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(f"no broker workload file at '{path}'")
    doc = read_json_document(
        path,
        "broker workload",
        remedy="check the path or regenerate the workload JSON "
        "(see README, 'Prediction-guided brokering')",
    )
    return parse_workload_document(doc)


def sorted_jobs(jobs: Sequence[BrokerJob]) -> List[BrokerJob]:
    """Arrival order with deterministic tie-breaking (id)."""
    return sorted(jobs, key=lambda j: (j.arrival, j.job_id))
