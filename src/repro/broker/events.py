"""Discrete-event primitives of the grid broker.

The broker simulates a stream of jobs contending for cluster nodes, so
its completion estimate is *queue wait + predicted execution time*, not
the bare :math:`\\hat T_{exec}` of a one-shot selection.  Two pieces make
that accounting exact and auditable:

- :class:`EventQueue` — a deterministic time-ordered queue of job
  arrivals, completions, and (when a grid fault schedule is installed)
  fault/repair/requeue occurrences.  At equal timestamps completions
  drain before anything else — nodes freed at instant ``t`` are
  available to whatever happens at ``t`` — faults land before repairs,
  repairs before requeues, and plain arrivals come last so an arriving
  job sees post-fault capacity; remaining ties break on insertion order.
- :class:`SitePool` / :class:`GridLedger` — per-site free-node tracking
  with an append-only history of :class:`NodeWindow` reservations.  A
  placement acquires *specific node indices* (always the lowest free
  ones, for determinism) over a closed time window; the recorded
  windows are what the property tests check for per-node overlap.  A
  pool can be quiesced by grid faults: a site outage marks the whole
  pool down, a node-pool shrink removes the highest-indexed nodes, and
  every such capacity loss is recorded as an :class:`OutageRecord` so
  the chaos invariants can check that no reservation window overlaps a
  declared outage.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.simgrid.errors import ConfigurationError
from repro.simgrid.topology import GridTopology

__all__ = [
    "EventKind",
    "Event",
    "EventQueue",
    "NodeWindow",
    "OutageRecord",
    "SitePool",
    "GridLedger",
]


class EventKind(enum.IntEnum):
    """Event ordering classes; lower values drain first at equal times."""

    COMPLETION = 0
    ABORT = 1
    FAULT = 2
    REPAIR = 3
    REQUEUE = 4
    ARRIVAL = 5


@dataclass(frozen=True)
class Event:
    """One simulated occurrence; ``payload`` is owned by the broker."""

    time: float
    kind: EventKind
    payload: Any = None


class EventQueue:
    """Time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = itertools.count()

    def push(self, event: Event) -> None:
        if event.time < 0:
            raise ConfigurationError("event times must be >= 0")
        heapq.heappush(
            self._heap,
            (event.time, int(event.kind), next(self._seq), event),
        )

    def pop(self) -> Event:
        if not self._heap:
            raise ConfigurationError("event queue is empty")
        return heapq.heappop(self._heap)[3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass(frozen=True)
class NodeWindow:
    """One node of one site reserved for one job over ``[start, end)``."""

    site: str
    node: int
    start: float
    end: float
    job_id: str

    def overlaps(self, other: "NodeWindow") -> bool:
        """True when both windows claim the same node at the same time."""
        if self.site != other.site or self.node != other.node:
            return False
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class OutageRecord:
    """Declared lost capacity: a site (or some of its nodes) down from
    ``start`` until ``end`` (``None`` = never repaired in the run).

    ``nodes`` of ``None`` means the whole site; otherwise the specific
    node indices removed by a pool shrink.
    """

    site: str
    start: float
    end: Optional[float] = None
    nodes: Optional[Tuple[int, ...]] = None

    def covers(self, window: NodeWindow) -> bool:
        """Whether a reservation window overlaps this outage interval."""
        if window.site != self.site:
            return False
        if self.nodes is not None and window.node not in self.nodes:
            return False
        end = self.end if self.end is not None else float("inf")
        return window.start < end and self.start < window.end


class SitePool:
    """Free-node bookkeeping for one site, with a reservation history.

    Nodes are identified by index ``0 .. num_nodes-1``.  Acquisition is
    deterministic (lowest free indices first) and records one
    :class:`NodeWindow` per node immediately — the end time is known at
    placement because the simulated execution time is.  Release happens
    later, when the broker pops the matching completion event — or
    early, when a grid fault preempts the job (the broker then truncates
    the job's windows to the preemption instant).

    Grid faults quiesce a pool in two ways: :meth:`fail` marks the whole
    site down (``free_count`` reports zero until :meth:`repair`), and
    :meth:`shrink` removes specific high-indexed nodes until
    :meth:`restore`.  Both record :class:`OutageRecord` entries.
    """

    def __init__(self, name: str, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ConfigurationError(f"site '{name}' needs at least one node")
        self.name = name
        self.num_nodes = num_nodes
        self._free = list(range(num_nodes))  # kept sorted
        self._removed: set = set()  # shrunk out of service
        self.down = False
        self.windows: List[NodeWindow] = []
        self.outages: List[OutageRecord] = []

    @property
    def free_count(self) -> int:
        return 0 if self.down else len(self._free)

    def acquire(
        self, count: int, job_id: str, start: float, end: float
    ) -> Tuple[int, ...]:
        """Reserve ``count`` nodes over ``[start, end)``; returns their ids."""
        if count <= 0:
            raise ConfigurationError("must acquire at least one node")
        if end <= start:
            raise ConfigurationError("reservation must have positive length")
        if self.down:
            raise ConfigurationError(
                f"site '{self.name}' is down; cannot acquire nodes"
            )
        if count > len(self._free):
            raise ConfigurationError(
                f"site '{self.name}' has {len(self._free)} free node(s); "
                f"cannot acquire {count}"
            )
        taken = tuple(self._free[:count])
        del self._free[:count]
        for node in taken:
            self.windows.append(
                NodeWindow(
                    site=self.name,
                    node=node,
                    start=start,
                    end=end,
                    job_id=job_id,
                )
            )
        return taken

    def release(self, nodes: Tuple[int, ...]) -> None:
        """Return previously acquired nodes to the free pool.

        A released node that was shrunk away while the job held it goes
        out of service instead of back to the free list.
        """
        for node in nodes:
            if node in self._free or not 0 <= node < self.num_nodes:
                raise ConfigurationError(
                    f"site '{self.name}': node {node} is not reserved"
                )
        returned = [n for n in nodes if n not in self._removed]
        self._free = sorted(self._free + returned)

    # ------------------------------------------------------------------
    # Grid-fault quiescing
    # ------------------------------------------------------------------

    def truncate_windows(self, job_id: str, at: float) -> None:
        """Cut a preempted job's open reservation windows short at ``at``.

        Windows that had not started by ``at`` are dropped entirely, so
        the recorded history never claims a node during a declared
        outage.
        """
        rewritten: List[NodeWindow] = []
        for window in self.windows:
            if window.job_id != job_id or window.end <= at:
                rewritten.append(window)
            elif window.start < at:
                rewritten.append(
                    NodeWindow(
                        site=window.site,
                        node=window.node,
                        start=window.start,
                        end=at,
                        job_id=window.job_id,
                    )
                )
            # else: the window never materialized; drop it
        self.windows = rewritten

    def fail(self, at: float) -> None:
        """Mark the whole site down from ``at`` (idempotent)."""
        if self.down:
            return
        self.down = True
        self.outages.append(OutageRecord(site=self.name, start=at))

    def repair(self, at: float) -> None:
        """Bring a failed site back at ``at``."""
        if not self.down:
            raise ConfigurationError(
                f"site '{self.name}' is not down; nothing to repair"
            )
        self.down = False
        # Close the open whole-site record specifically: a shrink during
        # the outage appends its own (nodes=...) record after ours.
        for index in range(len(self.outages) - 1, -1, -1):
            record = self.outages[index]
            if record.end is None and record.nodes is None:
                self.outages[index] = OutageRecord(
                    site=self.name, start=record.start, end=at
                )
                break

    def shrink(self, count: int, at: float) -> Tuple[int, ...]:
        """Remove the ``count`` highest not-yet-removed nodes at ``at``.

        Returns the removed node indices; the broker preempts any
        running job holding one of them.  Shrinking more nodes than the
        site still has removes what is left.
        """
        if count <= 0:
            raise ConfigurationError("must shrink by at least one node")
        victims = tuple(
            node
            for node in range(self.num_nodes - 1, -1, -1)
            if node not in self._removed
        )[:count]
        if not victims:
            return ()
        self._removed.update(victims)
        self._free = [n for n in self._free if n not in self._removed]
        self.outages.append(
            OutageRecord(
                site=self.name, start=at, nodes=tuple(sorted(victims))
            )
        )
        return victims

    def restore(self, nodes: Tuple[int, ...], at: float) -> None:
        """Return previously shrunk nodes to service at ``at``."""
        restored = set(nodes)
        missing = restored - self._removed
        if missing:
            raise ConfigurationError(
                f"site '{self.name}': nodes {sorted(missing)} were not "
                "shrunk; cannot restore them"
            )
        self._removed -= restored
        self._free = sorted(self._free + list(restored))
        for index, record in enumerate(self.outages):
            if record.end is None and record.nodes is not None and set(
                record.nodes
            ) == restored:
                self.outages[index] = OutageRecord(
                    site=record.site,
                    start=record.start,
                    end=at,
                    nodes=record.nodes,
                )
                break


class GridLedger:
    """All :class:`SitePool` instances of one broker run."""

    def __init__(self, capacities: Dict[str, int]) -> None:
        self._pools = {
            name: SitePool(name, nodes)
            for name, nodes in sorted(capacities.items())
        }

    @classmethod
    def from_topology(cls, topology: GridTopology) -> "GridLedger":
        return cls(
            {site.name: site.cluster.num_nodes for site in topology.sites()}
        )

    def pool(self, site: str) -> SitePool:
        pool = self._pools.get(site)
        if pool is None:
            raise ConfigurationError(f"no node pool for site '{site}'")
        return pool

    def free(self, site: str) -> int:
        return self.pool(site).free_count

    def fits_now(
        self, replica_site: str, compute_site: str, data_nodes: int,
        compute_nodes: int,
    ) -> bool:
        """Can this placement start immediately?

        When replica and compute site coincide, the job needs the *sum*
        of both node sets from the one pool.
        """
        if replica_site == compute_site:
            return self.free(replica_site) >= data_nodes + compute_nodes
        return (
            self.free(replica_site) >= data_nodes
            and self.free(compute_site) >= compute_nodes
        )

    def all_windows(self) -> List[NodeWindow]:
        """Every reservation made so far, in acquisition order per site."""
        windows: List[NodeWindow] = []
        for name in sorted(self._pools):
            windows.extend(self._pools[name].windows)
        return windows

    def all_outages(self) -> List[OutageRecord]:
        """Every declared capacity loss, in declaration order per site."""
        outages: List[OutageRecord] = []
        for name in sorted(self._pools):
            outages.extend(self._pools[name].outages)
        return outages
