"""Discrete-event primitives of the grid broker.

The broker simulates a stream of jobs contending for cluster nodes, so
its completion estimate is *queue wait + predicted execution time*, not
the bare :math:`\\hat T_{exec}` of a one-shot selection.  Two pieces make
that accounting exact and auditable:

- :class:`EventQueue` — a deterministic time-ordered queue of job
  arrivals and completions.  At equal timestamps completions drain
  before arrivals, so nodes freed at instant ``t`` are available to a
  job arriving at ``t``; remaining ties break on insertion order.
- :class:`SitePool` / :class:`GridLedger` — per-site free-node tracking
  with an append-only history of :class:`NodeWindow` reservations.  A
  placement acquires *specific node indices* (always the lowest free
  ones, for determinism) over a closed time window; the recorded
  windows are what the property tests check for per-node overlap.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.simgrid.errors import ConfigurationError
from repro.simgrid.topology import GridTopology

__all__ = [
    "EventKind",
    "Event",
    "EventQueue",
    "NodeWindow",
    "SitePool",
    "GridLedger",
]


class EventKind(enum.IntEnum):
    """Event ordering classes; lower values drain first at equal times."""

    COMPLETION = 0
    ARRIVAL = 1


@dataclass(frozen=True)
class Event:
    """One simulated occurrence; ``payload`` is owned by the broker."""

    time: float
    kind: EventKind
    payload: Any = None


class EventQueue:
    """Time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = itertools.count()

    def push(self, event: Event) -> None:
        if event.time < 0:
            raise ConfigurationError("event times must be >= 0")
        heapq.heappush(
            self._heap,
            (event.time, int(event.kind), next(self._seq), event),
        )

    def pop(self) -> Event:
        if not self._heap:
            raise ConfigurationError("event queue is empty")
        return heapq.heappop(self._heap)[3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass(frozen=True)
class NodeWindow:
    """One node of one site reserved for one job over ``[start, end)``."""

    site: str
    node: int
    start: float
    end: float
    job_id: str

    def overlaps(self, other: "NodeWindow") -> bool:
        """True when both windows claim the same node at the same time."""
        if self.site != other.site or self.node != other.node:
            return False
        return self.start < other.end and other.start < self.end


class SitePool:
    """Free-node bookkeeping for one site, with a reservation history.

    Nodes are identified by index ``0 .. num_nodes-1``.  Acquisition is
    deterministic (lowest free indices first) and records one
    :class:`NodeWindow` per node immediately — the end time is known at
    placement because the simulated execution time is.  Release happens
    later, when the broker pops the matching completion event.
    """

    def __init__(self, name: str, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ConfigurationError(f"site '{name}' needs at least one node")
        self.name = name
        self.num_nodes = num_nodes
        self._free = list(range(num_nodes))  # kept sorted
        self.windows: List[NodeWindow] = []

    @property
    def free_count(self) -> int:
        return len(self._free)

    def acquire(
        self, count: int, job_id: str, start: float, end: float
    ) -> Tuple[int, ...]:
        """Reserve ``count`` nodes over ``[start, end)``; returns their ids."""
        if count <= 0:
            raise ConfigurationError("must acquire at least one node")
        if end <= start:
            raise ConfigurationError("reservation must have positive length")
        if count > len(self._free):
            raise ConfigurationError(
                f"site '{self.name}' has {len(self._free)} free node(s); "
                f"cannot acquire {count}"
            )
        taken = tuple(self._free[:count])
        del self._free[:count]
        for node in taken:
            self.windows.append(
                NodeWindow(
                    site=self.name,
                    node=node,
                    start=start,
                    end=end,
                    job_id=job_id,
                )
            )
        return taken

    def release(self, nodes: Tuple[int, ...]) -> None:
        """Return previously acquired nodes to the free pool."""
        for node in nodes:
            if node in self._free or not 0 <= node < self.num_nodes:
                raise ConfigurationError(
                    f"site '{self.name}': node {node} is not reserved"
                )
        self._free = sorted(self._free + list(nodes))


class GridLedger:
    """All :class:`SitePool` instances of one broker run."""

    def __init__(self, capacities: Dict[str, int]) -> None:
        self._pools = {
            name: SitePool(name, nodes)
            for name, nodes in sorted(capacities.items())
        }

    @classmethod
    def from_topology(cls, topology: GridTopology) -> "GridLedger":
        return cls(
            {site.name: site.cluster.num_nodes for site in topology.sites()}
        )

    def pool(self, site: str) -> SitePool:
        pool = self._pools.get(site)
        if pool is None:
            raise ConfigurationError(f"no node pool for site '{site}'")
        return pool

    def free(self, site: str) -> int:
        return self.pool(site).free_count

    def fits_now(
        self, replica_site: str, compute_site: str, data_nodes: int,
        compute_nodes: int,
    ) -> bool:
        """Can this placement start immediately?

        When replica and compute site coincide, the job needs the *sum*
        of both node sets from the one pool.
        """
        if replica_site == compute_site:
            return self.free(replica_site) >= data_nodes + compute_nodes
        return (
            self.free(replica_site) >= data_nodes
            and self.free(compute_site) >= compute_nodes
        )

    def all_windows(self) -> List[NodeWindow]:
        """Every reservation made so far, in acquisition order per site."""
        windows: List[NodeWindow] = []
        for name in sorted(self._pools):
            windows.extend(self._pools[name].windows)
        return windows
