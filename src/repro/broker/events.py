"""Discrete-event primitives of the grid broker.

The broker simulates a stream of jobs contending for cluster nodes, so
its completion estimate is *queue wait + predicted execution time*, not
the bare :math:`\\hat T_{exec}` of a one-shot selection.  Two pieces make
that accounting exact and auditable:

- :class:`EventQueue` — a deterministic time-ordered queue of job
  arrivals, completions, and (when a grid fault schedule is installed)
  fault/repair/requeue occurrences.  At equal timestamps completions
  drain before anything else — nodes freed at instant ``t`` are
  available to whatever happens at ``t`` — faults land before repairs,
  repairs before requeues, and plain arrivals come last so an arriving
  job sees post-fault capacity; remaining ties break on insertion order.
- :class:`SitePool` / :class:`GridLedger` — per-site free-node tracking
  with an append-only history of :class:`NodeWindow` reservations.  A
  placement acquires *specific node indices* (always the lowest free
  ones, for determinism) over a closed time window; the recorded
  windows are what the property tests check for per-node overlap.  A
  pool can be quiesced by grid faults: a site outage marks the whole
  pool down, a node-pool shrink removes the highest-indexed nodes, and
  every such capacity loss is recorded as an :class:`OutageRecord` so
  the chaos invariants can check that no reservation window overlaps a
  declared outage.

Both structures are sized for six-figure job streams:

- The event queue is an *indexed heap*: entries are keyed by the
  composite index ``(time, kind, insertion seq)``, so push and pop are
  ``O(log n)`` while reproducing exactly the total order a linear
  insertion sort would produce (the retained
  :class:`~repro.broker.linear.LinearEventQueue` is that reference
  implementation, and the equivalence suite holds them to the same
  drain order).  The queue also tracks its peak depth — the
  ``peak_event_queue_depth`` column of ``BENCH_throughput.json``.
- Node acquisition and release are incremental: each pool keeps a
  *free-index heap* plus a membership set, so acquiring the ``k``
  lowest free indices is ``O(k log n)`` and releasing is ``O(log n)``
  per node — no sorted-list rebuild per completion.  Every capacity
  change (acquire, release, outage, shrink, repair, restore) bumps the
  owning ledger's :attr:`GridLedger.version`, which is what lets the
  broker's placement fast path skip re-evaluating a blocked queue head
  until capacity has actually moved.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.hotpath import hot
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.topology import GridTopology

__all__ = [
    "EventKind",
    "Event",
    "EventQueue",
    "NodeWindow",
    "OutageRecord",
    "SitePool",
    "GridLedger",
]


class EventKind(enum.IntEnum):
    """Event ordering classes; lower values drain first at equal times."""

    COMPLETION = 0
    ABORT = 1
    FAULT = 2
    REPAIR = 3
    REQUEUE = 4
    ARRIVAL = 5


@dataclass(frozen=True, slots=True)
class Event:
    """One simulated occurrence; ``payload`` is owned by the broker.

    Slotted (REP301): one instance per arrival/completion/fault at
    trace scale, so the per-instance dict would be pure overhead.
    """

    time: float
    kind: EventKind
    payload: Any = None


class EventQueue:
    """Time-ordered event queue with deterministic tie-breaking.

    An indexed binary heap: each entry carries the composite index
    ``(time, kind, insertion seq)``, so the drain order is total and
    identical to sorted insertion while push/pop stay ``O(log n)``.
    ``peak_depth``/``total_pushed`` expose the queue-pressure stats the
    throughput benchmark records.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self.peak_depth = 0
        self.total_pushed = 0

    @hot
    def push(self, event: Event) -> None:
        if event.time < 0:
            raise ConfigurationError("event times must be >= 0")
        heapq.heappush(
            self._heap,
            (event.time, int(event.kind), next(self._seq), event),
        )
        self.total_pushed += 1
        if len(self._heap) > self.peak_depth:
            self.peak_depth = len(self._heap)

    @hot
    def pop(self) -> Event:
        if not self._heap:
            raise ConfigurationError("event queue is empty")
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Event:
        """The event :meth:`pop` would return, without removing it."""
        if not self._heap:
            raise ConfigurationError("event queue is empty")
        return self._heap[0][3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass(frozen=True, slots=True)
class NodeWindow:
    """One node of one site reserved for one job over ``[start, end)``."""

    site: str
    node: int
    start: float
    end: float
    job_id: str

    def overlaps(self, other: "NodeWindow") -> bool:
        """True when both windows claim the same node at the same time."""
        if self.site != other.site or self.node != other.node:
            return False
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True, slots=True)
class OutageRecord:
    """Declared lost capacity: a site (or some of its nodes) down from
    ``start`` until ``end`` (``None`` = never repaired in the run).

    ``nodes`` of ``None`` means the whole site; otherwise the specific
    node indices removed by a pool shrink.
    """

    site: str
    start: float
    end: Optional[float] = None
    nodes: Optional[Tuple[int, ...]] = None

    def covers(self, window: NodeWindow) -> bool:
        """Whether a reservation window overlaps this outage interval."""
        if window.site != self.site:
            return False
        if self.nodes is not None and window.node not in self.nodes:
            return False
        end = self.end if self.end is not None else float("inf")
        return window.start < end and self.start < window.end


class SitePool:
    """Free-node bookkeeping for one site, with a reservation history.

    Nodes are identified by index ``0 .. num_nodes-1``.  Acquisition is
    deterministic (lowest free indices first) and records one
    :class:`NodeWindow` per node immediately — the end time is known at
    placement because the simulated execution time is.  Release happens
    later, when the broker pops the matching completion event — or
    early, when a grid fault preempts the job (the broker then truncates
    the job's windows to the preemption instant).

    Grid faults quiesce a pool in two ways: :meth:`fail` marks the whole
    site down (``free_count`` reports zero until :meth:`repair`), and
    :meth:`shrink` removes specific high-indexed nodes until
    :meth:`restore`.  Both record :class:`OutageRecord` entries.

    Free nodes live in a min-heap of indices plus a membership set, so
    acquire/release are incremental (``O(log n)`` per node) instead of
    rebuilding a sorted list per completion.  The heap may carry stale
    entries (a node shrunk or re-pushed while an old entry survives);
    :meth:`acquire` discards entries whose node is no longer in the
    membership set, which keeps the pop order exactly "lowest free
    index first".  Every capacity change reports to ``on_change`` — the
    ledger's version clock.
    """

    def __init__(
        self,
        name: str,
        num_nodes: int,
        on_change: Optional[Callable[[], None]] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ConfigurationError(f"site '{name}' needs at least one node")
        self.name = name
        self.num_nodes = num_nodes
        self._free_heap = list(range(num_nodes))  # already a valid heap
        self._free_set: Set[int] = set(self._free_heap)
        self._removed: Set[int] = set()  # shrunk out of service
        self.down = False
        self.windows: List[NodeWindow] = []
        self.outages: List[OutageRecord] = []
        self._on_change = on_change

    def _changed(self) -> None:
        if self._on_change is not None:
            self._on_change()

    @property
    def free_count(self) -> int:
        return 0 if self.down else len(self._free_set)

    @hot
    def acquire(
        self, count: int, job_id: str, start: float, end: float
    ) -> Tuple[int, ...]:
        """Reserve ``count`` nodes over ``[start, end)``; returns their ids."""
        if count <= 0:
            raise ConfigurationError("must acquire at least one node")
        if end <= start:
            raise ConfigurationError("reservation must have positive length")
        if self.down:
            raise ConfigurationError(
                f"site '{self.name}' is down; cannot acquire nodes"
            )
        if count > len(self._free_set):
            raise ConfigurationError(
                f"site '{self.name}' has {len(self._free_set)} free node(s); "
                f"cannot acquire {count}"
            )
        heap = self._free_heap
        free = self._free_set
        taken: List[int] = []
        while len(taken) < count:
            node = heapq.heappop(heap)
            if node in free:  # skip stale entries lazily
                free.discard(node)
                taken.append(node)
        for node in taken:
            self.windows.append(
                NodeWindow(
                    site=self.name,
                    node=node,
                    start=start,
                    end=end,
                    job_id=job_id,
                )
            )
        self._changed()
        return tuple(taken)

    @hot
    def release(self, nodes: Tuple[int, ...]) -> None:
        """Return previously acquired nodes to the free pool.

        A released node that was shrunk away while the job held it goes
        out of service instead of back to the free list.
        """
        for node in nodes:
            if node in self._free_set or not 0 <= node < self.num_nodes:
                raise ConfigurationError(
                    f"site '{self.name}': node {node} is not reserved"
                )
        for node in nodes:
            if node not in self._removed:
                self._free_set.add(node)
                heapq.heappush(self._free_heap, node)
        self._changed()

    # ------------------------------------------------------------------
    # Grid-fault quiescing
    # ------------------------------------------------------------------

    def truncate_windows(self, job_id: str, at: float) -> None:
        """Cut a preempted job's open reservation windows short at ``at``.

        Windows that had not started by ``at`` are dropped entirely, so
        the recorded history never claims a node during a declared
        outage.
        """
        rewritten: List[NodeWindow] = []
        for window in self.windows:
            if window.job_id != job_id or window.end <= at:
                rewritten.append(window)
            elif window.start < at:
                rewritten.append(
                    NodeWindow(
                        site=window.site,
                        node=window.node,
                        start=window.start,
                        end=at,
                        job_id=window.job_id,
                    )
                )
            # else: the window never materialized; drop it
        self.windows = rewritten

    def fail(self, at: float) -> None:
        """Mark the whole site down from ``at`` (idempotent)."""
        if self.down:
            return
        self.down = True
        self.outages.append(OutageRecord(site=self.name, start=at))
        self._changed()

    def repair(self, at: float) -> None:
        """Bring a failed site back at ``at``."""
        if not self.down:
            raise ConfigurationError(
                f"site '{self.name}' is not down; nothing to repair"
            )
        self.down = False
        # Close the open whole-site record specifically: a shrink during
        # the outage appends its own (nodes=...) record after ours.
        for index in range(len(self.outages) - 1, -1, -1):
            record = self.outages[index]
            if record.end is None and record.nodes is None:
                self.outages[index] = OutageRecord(
                    site=self.name, start=record.start, end=at
                )
                break
        self._changed()

    def shrink(self, count: int, at: float) -> Tuple[int, ...]:
        """Remove the ``count`` highest not-yet-removed nodes at ``at``.

        Returns the removed node indices; the broker preempts any
        running job holding one of them.  Shrinking more nodes than the
        site still has removes what is left.
        """
        if count <= 0:
            raise ConfigurationError("must shrink by at least one node")
        victims = tuple(
            node
            for node in range(self.num_nodes - 1, -1, -1)
            if node not in self._removed
        )[:count]
        if not victims:
            return ()
        self._removed.update(victims)
        # Stale heap entries for shrunk free nodes are discarded lazily
        # by acquire(); only the membership set must be exact.
        self._free_set.difference_update(victims)
        self.outages.append(
            OutageRecord(
                site=self.name, start=at, nodes=tuple(sorted(victims))
            )
        )
        self._changed()
        return victims

    def restore(self, nodes: Tuple[int, ...], at: float) -> None:
        """Return previously shrunk nodes to service at ``at``."""
        restored = set(nodes)
        missing = restored - self._removed
        if missing:
            raise ConfigurationError(
                f"site '{self.name}': nodes {sorted(missing)} were not "
                "shrunk; cannot restore them"
            )
        self._removed -= restored
        for node in sorted(restored):
            self._free_set.add(node)
            heapq.heappush(self._free_heap, node)
        for index, record in enumerate(self.outages):
            if record.end is None and record.nodes is not None and set(
                record.nodes
            ) == restored:
                self.outages[index] = OutageRecord(
                    site=record.site,
                    start=record.start,
                    end=at,
                    nodes=record.nodes,
                )
                break
        self._changed()


class GridLedger:
    """All :class:`SitePool` instances of one broker run.

    :attr:`version` is a monotonically increasing change clock: it ticks
    on every capacity movement in any pool (acquire, release, outage,
    repair, shrink, restore).  A placement decision that found no
    feasible candidate at version ``v`` is guaranteed to find none until
    the version moves, which is what makes the broker's blocked-head
    check O(1) amortized.

    ``pool_cls`` selects the pool implementation — the default
    incremental :class:`SitePool`, or
    :class:`~repro.broker.linear.LinearSitePool` when the retained
    pre-scale-up path is wanted as a baseline or equivalence oracle.
    """

    def __init__(
        self, capacities: Dict[str, int], *, pool_cls: type = SitePool
    ) -> None:
        self.version = 0
        self._free_map: Dict[str, int] = {}
        self._pools: Dict[str, SitePool] = {}
        for name, nodes in sorted(capacities.items()):
            pool = pool_cls(name, nodes)
            pool._on_change = self._make_tick(pool)
            self._pools[name] = pool
            self._free_map[name] = pool.free_count

    def _make_tick(self, pool: SitePool) -> Callable[[], None]:
        def tick() -> None:
            self.version += 1
            self._free_map[pool.name] = pool.free_count

        return tick

    @classmethod
    def from_topology(
        cls, topology: GridTopology, *, pool_cls: type = SitePool
    ) -> "GridLedger":
        return cls(
            {site.name: site.cluster.num_nodes for site in topology.sites()},
            pool_cls=pool_cls,
        )

    def pool(self, site: str) -> SitePool:
        pool = self._pools.get(site)
        if pool is None:
            raise ConfigurationError(f"no node pool for site '{site}'")
        return pool

    def free(self, site: str) -> int:
        return self.pool(site).free_count

    def fits_now(
        self, replica_site: str, compute_site: str, data_nodes: int,
        compute_nodes: int,
    ) -> bool:
        """Can this placement start immediately?

        When replica and compute site coincide, the job needs the *sum*
        of both node sets from the one pool.
        """
        if replica_site == compute_site:
            return self.free(replica_site) >= data_nodes + compute_nodes
        return (
            self.free(replica_site) >= data_nodes
            and self.free(compute_site) >= compute_nodes
        )

    def free_counts(self) -> Dict[str, int]:
        """Every pool's current free count, keyed by site name.

        A *live view* maintained incrementally by the pools' change
        hooks — callers must treat it as read-only.  The broker's
        placement fast path reads it once per decision and compares
        plain integers, instead of paying two method hops per candidate
        through :meth:`fits_now`.
        """
        return self._free_map

    def all_windows(self) -> List[NodeWindow]:
        """Every reservation made so far, in acquisition order per site."""
        windows: List[NodeWindow] = []
        for name in sorted(self._pools):
            windows.extend(self._pools[name].windows)
        return windows

    def all_outages(self) -> List[OutageRecord]:
        """Every declared capacity loss, in declaration order per site."""
        outages: List[OutageRecord] = []
        for name in sorted(self._pools):
            outages.extend(self._pools[name].outages)
        return outages
