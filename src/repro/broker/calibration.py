"""Online calibration of component predictions from observed runs.

Vazhkudai & Schopf predict wide-area data-transfer times by regressing
on the *history* of observed transfers rather than trusting a static
model.  The broker applies the same idea to all three components of the
paper's additive model: after every completed job it compares the actual
``T_disk`` / ``T_network`` / ``T_compute`` against the model's raw
prediction and maintains a multiplicative correction factor per
(application, resource) key via an exponentially-weighted update — the
scalar steady-state form of that regression:

    f  <-  f + alpha * (actual / predicted - f)

Components are keyed by the resource that determines them:

- ``disk``    by (app, replica site)  — retrieval runs on the repository;
- ``network`` by (app, replica site -> compute site) — the path;
- ``compute`` by (app, compute site)  — processing hardware.

A fresh key starts at factor 1.0 (the uncalibrated model).  Because the
factors multiply the *prediction*, systematic model bias — most visibly
the cross-cluster case where a profile from one machine type predicts
another without measured scaling factors — is learned away over the job
stream, which is exactly what the broker benchmark asserts.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.core.durable import (
    atomic_write_json,
    check_format_version,
    read_json_document,
)
from repro.core.models import PredictedBreakdown
from repro.simgrid.errors import ConfigurationError

__all__ = ["CorrectionFactor", "OnlineCalibrator"]

_FORMAT_VERSION = 1

#: Components the calibrator corrects, in reporting order.
COMPONENTS = ("disk", "network", "compute")

#: Predicted component times below this are treated as "no signal":
#: a ratio against a near-zero prediction is numerically meaningless.
_MIN_PREDICTED = 1e-12


@dataclass
class CorrectionFactor:
    """State of one (component, app, resource) correction."""

    value: float = 1.0
    observations: int = 0

    def update(self, ratio: float, alpha: float) -> None:
        self.value += alpha * (ratio - self.value)
        self.observations += 1


@dataclass(frozen=True)
class _Key:
    component: str
    app: str
    resource: str


@dataclass
class OnlineCalibrator:
    """Per-(app, site) multiplicative correction of predicted breakdowns.

    Parameters
    ----------
    alpha:
        Exponential weight of the newest observation (0 < alpha <= 1).
        Higher alpha adapts faster but is noisier.
    clamp:
        Bounds applied to each observed actual/predicted ratio before the
        update, so one pathological run cannot poison a factor.
    """

    alpha: float = 0.3
    clamp: Tuple[float, float] = (0.1, 10.0)
    _factors: Dict[_Key, CorrectionFactor] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        lo, hi = self.clamp
        if not 0.0 < lo < hi:
            raise ConfigurationError("clamp bounds must satisfy 0 < lo < hi")

    # ------------------------------------------------------------------

    @staticmethod
    def _resources(
        replica_site: str, compute_site: str
    ) -> Dict[str, str]:
        return {
            "disk": replica_site,
            "network": f"{replica_site}->{compute_site}",
            "compute": compute_site,
        }

    def factor(
        self, component: str, app: str, replica_site: str, compute_site: str
    ) -> float:
        """Current correction factor (1.0 when never observed)."""
        if component not in COMPONENTS:
            raise ConfigurationError(f"unknown component '{component}'")
        resource = self._resources(replica_site, compute_site)[component]
        state = self._factors.get(_Key(component, app, resource))
        return state.value if state is not None else 1.0

    def correct(
        self,
        app: str,
        replica_site: str,
        compute_site: str,
        raw: PredictedBreakdown,
    ) -> PredictedBreakdown:
        """Apply the current factors to a raw model prediction.

        ``T_ro``/``T_g`` ride the compute factor (they are sub-terms of
        the processing component), which is what
        :meth:`PredictedBreakdown.scaled` implements.
        """
        return raw.scaled(
            self.factor("disk", app, replica_site, compute_site),
            self.factor("network", app, replica_site, compute_site),
            self.factor("compute", app, replica_site, compute_site),
        )

    def observe(
        self,
        app: str,
        replica_site: str,
        compute_site: str,
        raw: PredictedBreakdown,
        actual: Tuple[float, float, float],
    ) -> None:
        """Fold one completed run into the factors.

        ``actual`` is the observed ``(t_disk, t_network, t_compute)``.
        Components whose raw prediction carries no signal are skipped.
        """
        lo, hi = self.clamp
        resources = self._resources(replica_site, compute_site)
        predicted = {
            "disk": raw.t_disk,
            "network": raw.t_network,
            "compute": raw.t_compute,
        }
        observed = dict(zip(COMPONENTS, actual))
        for component in COMPONENTS:
            p = predicted[component]
            a = observed[component]
            if p < _MIN_PREDICTED or a < 0.0:
                continue
            ratio = min(max(a / p, lo), hi)
            key = _Key(component, app, resources[component])
            self._factors.setdefault(key, CorrectionFactor()).update(
                ratio, self.alpha
            )

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Factors keyed ``component -> 'app @ resource' -> value`` (sorted)."""
        out: Dict[str, Dict[str, float]] = {}
        for key in sorted(
            self._factors, key=lambda k: (k.component, k.app, k.resource)
        ):
            out.setdefault(key.component, {})[
                f"{key.app} @ {key.resource}"
            ] = self._factors[key].value
        return out

    @property
    def total_observations(self) -> int:
        return sum(f.observations for f in self._factors.values())

    # ------------------------------------------------------------------
    # Persistence (service warm restarts)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical-JSON-ready snapshot of the full calibration state.

        Unlike :meth:`snapshot` (a reporting view), this preserves the
        observation counts, so a reloaded calibrator resumes learning
        exactly where the saved one stopped.
        """
        return {
            "format_version": _FORMAT_VERSION,
            "alpha": self.alpha,
            "clamp": list(self.clamp),
            "factors": [
                {
                    "component": key.component,
                    "app": key.app,
                    "resource": key.resource,
                    "value": self._factors[key].value,
                    "observations": self._factors[key].observations,
                }
                for key in sorted(
                    self._factors,
                    key=lambda k: (k.component, k.app, k.resource),
                )
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OnlineCalibrator":
        """Rebuild a calibrator from :meth:`to_dict` output."""
        check_format_version(data, "calibration state", _FORMAT_VERSION)
        try:
            clamp = data["clamp"]
            calibrator = cls(
                alpha=float(data["alpha"]),
                clamp=(float(clamp[0]), float(clamp[1])),
            )
            for entry in data["factors"]:
                component = str(entry["component"])
                if component not in COMPONENTS:
                    raise ConfigurationError(
                        f"unknown calibration component '{component}'"
                    )
                key = _Key(component, str(entry["app"]), str(entry["resource"]))
                calibrator._factors[key] = CorrectionFactor(
                    value=float(entry["value"]),
                    observations=int(entry["observations"]),
                )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ConfigurationError(
                f"malformed calibration state: {exc}"
            ) from exc
        return calibrator

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Durably persist the calibration state as canonical JSON."""
        return atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "OnlineCalibrator":
        """Load previously saved calibration state.

        Lets a restarted prediction service warm-start with everything
        the previous process learned instead of re-converging from 1.0
        factors over live traffic.
        """
        data = read_json_document(
            path,
            "calibration state",
            remedy="delete the file; calibration re-learns from traffic",
        )
        return cls.from_dict(data)
