"""Online calibration of component predictions from observed runs.

Vazhkudai & Schopf predict wide-area data-transfer times by regressing
on the *history* of observed transfers rather than trusting a static
model.  The broker applies the same idea to all three components of the
paper's additive model: after every completed job it compares the actual
``T_disk`` / ``T_network`` / ``T_compute`` against the model's raw
prediction and maintains a multiplicative correction factor per
(application, resource) key via an exponentially-weighted update — the
scalar steady-state form of that regression:

    f  <-  f + alpha * (actual / predicted - f)

Components are keyed by the resource that determines them:

- ``disk``    by (app, replica site)  — retrieval runs on the repository;
- ``network`` by (app, replica site -> compute site) — the path;
- ``compute`` by (app, compute site)  — processing hardware.

A fresh key starts at factor 1.0 (the uncalibrated model).  Because the
factors multiply the *prediction*, systematic model bias — most visibly
the cross-cluster case where a profile from one machine type predicts
another without measured scaling factors — is learned away over the job
stream, which is exactly what the broker benchmark asserts.

At six-figure job counts :meth:`OnlineCalibrator.correct` is the
broker's hottest call (four factor lookups per candidate per decision),
so the current factor of every (component, app, resource) key is kept in
per-component read caches that :meth:`OnlineCalibrator.observe`
invalidates for exactly the three keys it touches.  The cached path is
bit-identical to the uncached arithmetic — the factors only change on
``observe`` — and :meth:`reference_correct` retains the original
uncached computation as the equivalence oracle (and as the instruction
path of the broker's ``linear`` baseline engine).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.core.durable import (
    atomic_write_json,
    check_format_version,
    read_json_document,
)
from repro.core.models import PredictedBreakdown
from repro.simgrid.errors import ConfigurationError

__all__ = ["CorrectionFactor", "OnlineCalibrator"]

_FORMAT_VERSION = 1

#: Components the calibrator corrects, in reporting order.
COMPONENTS = ("disk", "network", "compute")

#: Predicted component times below this are treated as "no signal":
#: a ratio against a near-zero prediction is numerically meaningless.
_MIN_PREDICTED = 1e-12


@dataclass
class CorrectionFactor:
    """State of one (component, app, resource) correction."""

    value: float = 1.0
    observations: int = 0

    def update(self, ratio: float, alpha: float) -> None:
        self.value += alpha * (ratio - self.value)
        self.observations += 1


#: Factor keys are plain ``(component, app, resource)`` tuples — the
#: cheapest hashable the hot observe/correct path can build.
_Key = Tuple[str, str, str]


@dataclass
class OnlineCalibrator:
    """Per-(app, site) multiplicative correction of predicted breakdowns.

    Parameters
    ----------
    alpha:
        Exponential weight of the newest observation (0 < alpha <= 1).
        Higher alpha adapts faster but is noisier.
    clamp:
        Bounds applied to each observed actual/predicted ratio before the
        update, so one pathological run cannot poison a factor.
    """

    alpha: float = 0.3
    clamp: Tuple[float, float] = (0.1, 10.0)
    _factors: Dict[_Key, CorrectionFactor] = field(default_factory=dict)
    #: Read caches of current factor values, one per component, keyed by
    #: (app, resource).  Purely derived state: invalidated by observe().
    _fast: Dict[str, Dict[Tuple[str, str], float]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        lo, hi = self.clamp
        if not 0.0 < lo < hi:
            raise ConfigurationError("clamp bounds must satisfy 0 < lo < hi")
        for component in COMPONENTS:
            self._fast.setdefault(component, {})

    # ------------------------------------------------------------------

    @staticmethod
    def _resources(
        replica_site: str, compute_site: str
    ) -> Dict[str, str]:
        return {
            "disk": replica_site,
            "network": f"{replica_site}->{compute_site}",
            "compute": compute_site,
        }

    def factor(
        self, component: str, app: str, replica_site: str, compute_site: str
    ) -> float:
        """Current correction factor (1.0 when never observed)."""
        if component not in COMPONENTS:
            raise ConfigurationError(f"unknown component '{component}'")
        resource = self._resources(replica_site, compute_site)[component]
        state = self._factors.get((component, app, resource))
        return state.value if state is not None else 1.0

    def _fast_factor(self, component: str, app: str, resource: str) -> float:
        """Cached current factor; bit-identical to :meth:`factor`."""
        cache = self._fast[component]
        cache_key = (app, resource)
        value = cache.get(cache_key)
        if value is None:
            state = self._factors.get((component, app, resource))
            value = state.value if state is not None else 1.0
            cache[cache_key] = value
        return value

    def correct(
        self,
        app: str,
        replica_site: str,
        compute_site: str,
        raw: PredictedBreakdown,
    ) -> PredictedBreakdown:
        """Apply the current factors to a raw model prediction.

        ``T_ro``/``T_g`` ride the compute factor (they are sub-terms of
        the processing component), which is what
        :meth:`PredictedBreakdown.scaled` implements.  Served from the
        per-component read caches; bit-identical to
        :meth:`reference_correct`.
        """
        return raw.scaled(
            self._fast_factor("disk", app, replica_site),
            self._fast_factor(
                "network", app, f"{replica_site}->{compute_site}"
            ),
            self._fast_factor("compute", app, compute_site),
        )

    def correct_total(
        self,
        app: str,
        replica_site: str,
        compute_site: str,
        raw: PredictedBreakdown,
    ) -> float:
        """Calibrated predicted total as a bare scalar.

        Bit-identical to ``correct(...).total``: the three products and
        the left-to-right sum are the exact IEEE operations
        :meth:`PredictedBreakdown.scaled` followed by
        :attr:`PredictedBreakdown.total` performs, without materializing
        the intermediate breakdown.  The indexed engine's placement loop
        scores every feasible candidate with this before building a
        :class:`~repro.broker.policies.PlacementOption` for the winner
        alone.
        """
        return (
            raw.t_disk * self._fast_factor("disk", app, replica_site)
            + raw.t_network
            * self._fast_factor(
                "network", app, f"{replica_site}->{compute_site}"
            )
            + raw.t_compute * self._fast_factor("compute", app, compute_site)
        )

    def reference_correct(
        self,
        app: str,
        replica_site: str,
        compute_site: str,
        raw: PredictedBreakdown,
    ) -> PredictedBreakdown:
        """The original uncached correction path.

        Retained as the equivalence oracle for :meth:`correct` (asserted
        bit-identical by the broker equivalence suite) and as the
        instruction path of the ``linear`` baseline engine the
        throughput benchmark measures against.
        """
        return raw.scaled(
            self.factor("disk", app, replica_site, compute_site),
            self.factor("network", app, replica_site, compute_site),
            self.factor("compute", app, replica_site, compute_site),
        )

    def observe(
        self,
        app: str,
        replica_site: str,
        compute_site: str,
        raw: PredictedBreakdown,
        actual: Tuple[float, float, float],
    ) -> None:
        """Fold one completed run into the factors.

        ``actual`` is the observed ``(t_disk, t_network, t_compute)``.
        Components whose raw prediction carries no signal are skipped.
        Invalidates the read cache of exactly the three touched keys.
        """
        lo, hi = self.clamp
        alpha = self.alpha
        factors = self._factors
        fast = self._fast
        path = f"{replica_site}->{compute_site}"
        for component, resource, p, a in (
            ("disk", replica_site, raw.t_disk, actual[0]),
            ("network", path, raw.t_network, actual[1]),
            ("compute", compute_site, raw.t_compute, actual[2]),
        ):
            if p < _MIN_PREDICTED or a < 0.0:
                continue
            ratio = min(max(a / p, lo), hi)
            key = (component, app, resource)
            state = factors.get(key)
            if state is None:
                state = factors[key] = CorrectionFactor()
            state.update(ratio, alpha)
            fast[component].pop((app, resource), None)

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Factors keyed ``component -> 'app @ resource' -> value`` (sorted)."""
        out: Dict[str, Dict[str, float]] = {}
        for component, app, resource in sorted(self._factors):
            out.setdefault(component, {})[
                f"{app} @ {resource}"
            ] = self._factors[(component, app, resource)].value
        return out

    @property
    def total_observations(self) -> int:
        return sum(f.observations for f in self._factors.values())

    # ------------------------------------------------------------------
    # Persistence (service warm restarts)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical-JSON-ready snapshot of the full calibration state.

        Unlike :meth:`snapshot` (a reporting view), this preserves the
        observation counts, so a reloaded calibrator resumes learning
        exactly where the saved one stopped.
        """
        return {
            "format_version": _FORMAT_VERSION,
            "alpha": self.alpha,
            "clamp": list(self.clamp),
            "factors": [
                {
                    "component": key[0],
                    "app": key[1],
                    "resource": key[2],
                    "value": self._factors[key].value,
                    "observations": self._factors[key].observations,
                }
                for key in sorted(self._factors)
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OnlineCalibrator":
        """Rebuild a calibrator from :meth:`to_dict` output."""
        check_format_version(data, "calibration state", _FORMAT_VERSION)
        try:
            clamp = data["clamp"]
            calibrator = cls(
                alpha=float(data["alpha"]),
                clamp=(float(clamp[0]), float(clamp[1])),
            )
            for entry in data["factors"]:
                component = str(entry["component"])
                if component not in COMPONENTS:
                    raise ConfigurationError(
                        f"unknown calibration component '{component}'"
                    )
                key = (component, str(entry["app"]), str(entry["resource"]))
                calibrator._factors[key] = CorrectionFactor(
                    value=float(entry["value"]),
                    observations=int(entry["observations"]),
                )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ConfigurationError(
                f"malformed calibration state: {exc}"
            ) from exc
        return calibrator

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Durably persist the calibration state as canonical JSON."""
        return atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "OnlineCalibrator":
        """Load previously saved calibration state.

        Lets a restarted prediction service warm-start with everything
        the previous process learned instead of re-converging from 1.0
        factors over live traffic.
        """
        data = read_json_document(
            path,
            "calibration state",
            remedy="delete the file; calibration re-learns from traffic",
        )
        return cls.from_dict(data)
