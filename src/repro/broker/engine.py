"""The prediction-guided grid broker.

:class:`GridBroker` closes the loop the paper motivates: a *stream* of
FREERIDE-G jobs arrives over simulated time and contends for cluster
nodes, and each job is placed on a (replica site, compute configuration)
pair chosen by a pluggable policy over the prediction framework's
one-profile estimates.  The broker is a discrete-event simulation:

1. **Arrival** — the job is admission-checked: the
   :class:`~repro.core.selection.ResourceSelector` enumerates its
   full-capacity candidates (an infeasible job is rejected with the
   selector's machine-usable rejection reasons) and the policy may
   refuse it outright (deadline admission control).  Admitted jobs enter
   the wait queue, ordered by priority then arrival.
2. **Placement** — whenever an event fires, the broker tries to place
   the queue head on the candidates that fit the *currently free* nodes
   (no backfilling: a blocked head blocks the queue, which keeps the
   simulation fair and the scheduling property provable).  The policy
   sees calibrated predictions, so its completion estimate is realized
   queue wait + :math:`\\hat T_{exec}`.
3. **Execution** — the placement runs for real on the simulated
   middleware (:class:`~repro.middleware.runtime.FreerideGRuntime`);
   identical (dataset, configuration) runs are memoized, which is sound
   because the middleware is deterministic.
4. **Completion** — nodes are released and the *observed* component
   times are fed to the :class:`~repro.broker.calibration.OnlineCalibrator`,
   so later placements of the same (app, site) use corrected estimates.
   Online calibration replaces the paper's measured cross-cluster
   scaling factors with factors learned from the stream itself.

When :meth:`run` is handed a
:class:`~repro.faults.grid.GridFaultSchedule`, the simulation gains grid
weather: site outages and node-pool shrinks quiesce capacity and preempt
the attempts running on it, WAN degradations stretch the network time of
placements whose replica-to-compute path crosses the degraded edge, and
transient job failures abort individual attempts mid-flight.  Every
preempted job goes through the run's
:class:`~repro.broker.recovery.RecoveryPolicy` — resubmit-elsewhere or
checkpoint-aware migration, both under the bounded
:class:`~repro.faults.retry.BrokerRetryPolicy` — until it either
completes or is terminally failed and classified in the report.

Every data structure iterates in a deterministic order, so replaying
the same job stream (and the same fault schedule) yields a
byte-identical :class:`BrokerReport`; a fault-free run serializes
byte-identically to a broker without the fault model.

The event loop runs in one of two engines.  ``engine="indexed"`` (the
default) is sized for six-figure trace streams: a binary-heap wait
queue, the incremental free-index ledger, read-cached calibration, a
per-application placement-option cache invalidated on every calibration
update, an admission fast path that only builds idle-grid options for
policies that read them, and an O(1)-amortized blocked-head check — a
queue head that found no feasible candidate is not re-evaluated until
:attr:`~repro.broker.events.GridLedger.version` moves (feasibility
depends only on free node counts, which every capacity change
version-bumps).  ``engine="linear"`` is the retained pre-scale-up
instruction path (sorted-list queues, uncached calibration, options
rebuilt on every decision) — the baseline ``bench_throughput.py``
measures against.  Both engines produce byte-identical reports on the
same stream, with and without faults; the equivalence property suite
holds them to it.
"""

from __future__ import annotations

import bisect
import gc
import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.broker.calibration import OnlineCalibrator
from repro.broker.events import Event, EventKind, EventQueue, GridLedger
from repro.broker.linear import LinearEventQueue, LinearSitePool
from repro.broker.jobs import BrokerJob, BrokerWorkloadDoc, sorted_jobs
from repro.broker.policies import (
    POLICY_NAMES,
    PlacementOption,
    Rejection,
    make_policy,
)
from repro.broker.recovery import (
    GiveUp,
    Incident,
    RecoveryPolicy,
    Requeue,
    make_recovery,
)
from repro.hotpath import hot
from repro.broker.report import (
    BrokerPlacement,
    BrokerPreemption,
    BrokerRejection,
    BrokerReport,
    GridFaultEvent,
    PolicyRun,
    TerminalFailure,
)
from repro.core.classes import ModelClasses
from repro.core.degraded import DegradedModePredictor
from repro.core.models import GlobalReductionModel, PredictionModel
from repro.core.profile import Profile
from repro.core.selection import (
    InfeasibleSelectionError,
    ResourceSelector,
    SelectionCandidate,
    SelectionOutcome,
)
from repro.core.target import PredictionTarget
from repro.faults.grid import (
    GridFaultSchedule,
    NodePoolShrink,
    SiteOutage,
    WanDegradation,
)
from repro.faults.retry import BrokerRetryPolicy
from repro.middleware.dataset import Dataset
from repro.middleware.replica import ReplicaCatalog
from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import ClusterSpec
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads.registry import WORKLOADS, WorkloadSpec

__all__ = ["GridBroker", "ActualRun"]


@dataclass(frozen=True, slots=True)
class ActualRun:
    """Observed component times of one executed placement."""

    t_disk: float
    t_network: float
    t_compute: float
    num_passes: int = 1

    @property
    def total(self) -> float:
        return self.t_disk + self.t_network + self.t_compute

    @property
    def components(self) -> Tuple[float, float, float]:
        return (self.t_disk, self.t_network, self.t_compute)


@dataclass(frozen=True, slots=True)
class _Completion:
    """Payload of a completion event."""

    attempt_id: int
    job: BrokerJob
    candidate: SelectionCandidate
    data_node_ids: Tuple[int, ...]
    compute_node_ids: Tuple[int, ...]
    raw: object  # PredictedBreakdown
    predicted_total: float
    actual: ActualRun
    full_attempt: bool = True


@dataclass(slots=True)
class _Running:
    """Book-keeping of one in-flight attempt (mutable engine state)."""

    attempt_id: int
    attempt_number: int
    job: BrokerJob
    candidate: SelectionCandidate
    data_node_ids: Tuple[int, ...]
    compute_node_ids: Tuple[int, ...]
    start: float
    end: float
    #: Work fraction already done when the attempt started.
    progress_before: float
    #: T_recover seconds paid at the head of this attempt.
    charge: float
    #: Effective full-run duration (WAN-stretched) of this placement.
    full_total: float
    num_passes: int

    def uses_site(self, site: str) -> bool:
        return site in (
            self.candidate.replica_site, self.candidate.compute_site
        )

    def uses_node(self, site: str, nodes: Sequence[int]) -> bool:
        victims = set(nodes)
        if self.candidate.replica_site == site and victims.intersection(
            self.data_node_ids
        ):
            return True
        return self.candidate.compute_site == site and bool(
            victims.intersection(self.compute_node_ids)
        )

    def progress_at(self, when: float) -> float:
        """Total work fraction done by ``when`` (charge paid first)."""
        executed = max(0.0, min(when, self.end) - self.start - self.charge)
        if self.full_total <= 0.0:
            return self.progress_before
        return min(1.0, self.progress_before + executed / self.full_total)

    def checkpoint_at(self, when: float) -> float:
        """Progress quantized down to a completed-pass boundary."""
        if self.num_passes <= 0:
            return 0.0
        done = self.progress_at(when)
        return int(done * self.num_passes) / self.num_passes


@dataclass(slots=True)
class _FaultState:
    """Mutable grid-weather state of one faulted :meth:`GridBroker.run`."""

    schedule: GridFaultSchedule
    recovery: RecoveryPolicy
    #: Remaining scripted aborts per job id.
    transient_remaining: Dict[str, int]
    #: Currently active WAN degradations.
    wan_active: List[WanDegradation]
    #: Nodes removed by each NodePoolShrink (schedule index -> victims).
    shrink_victims: Dict[int, Tuple[int, ...]]
    #: Failed attempts per job id (drives the retry budget).
    failed_attempts: Dict[str, int]
    #: Work fraction each job carries into its next attempt.
    progress: Dict[str, float]
    #: Whether the next attempt of the job must pay T_recover.
    charge_next: Dict[str, bool]
    #: Jobs already settled terminally (never requeued again).
    terminal: Set[str]

    fault_events: List[GridFaultEvent]
    preemptions: List[BrokerPreemption]
    failures: List[TerminalFailure]


class GridBroker:
    """Places a stream of jobs on a grid using calibrated predictions.

    Parameters
    ----------
    topology:
        The grid (repository + compute sites with annotated links).
    allocations:
        Candidate ``(data_nodes, compute_nodes)`` pairs per site pair.
    replicas:
        Optional ``dataset-key -> [repository sites]`` placement map
        (keys as :attr:`BrokerJob.dataset_key`); by default every
        repository site holds every dataset.
    profile_cluster:
        Hardware the one-off 1-1 reference profiles are collected on
        (default: the paper's Pentium/Myrinet testbed).  Predictions for
        other machine types carry systematic error that the online
        calibration layer then learns away.
    alpha:
        Exponential weight of the calibrator (see
        :class:`~repro.broker.calibration.OnlineCalibrator`).
    """

    def __init__(
        self,
        topology: GridTopology,
        allocations: Sequence[Tuple[int, int]],
        *,
        replicas: Optional[Mapping[str, Sequence[str]]] = None,
        profile_cluster: Optional[ClusterSpec] = None,
        alpha: float = 0.3,
    ) -> None:
        if not allocations:
            raise ConfigurationError("need at least one candidate allocation")
        if not list(topology.sites(SiteKind.COMPUTE)):
            raise ConfigurationError("broker grid has no compute sites")
        if not list(topology.sites(SiteKind.REPOSITORY)):
            raise ConfigurationError("broker grid has no repository sites")
        self.topology = topology
        self.allocations = list(allocations)
        self._replica_map = {
            key: list(sites) for key, sites in (replicas or {}).items()
        }
        if profile_cluster is None:
            from repro.workloads.clusters import pentium_myrinet_cluster

            profile_cluster = pentium_myrinet_cluster()
        self.profile_cluster = profile_cluster
        self.alpha = alpha

        self.catalog = ReplicaCatalog(topology)
        self._datasets: Dict[str, Dataset] = {}
        self._profiles: Dict[str, Profile] = {}
        self._models: Dict[str, PredictionModel] = {}
        self._selections: Dict[str, SelectionOutcome] = {}
        self._infeasible: Dict[str, InfeasibleSelectionError] = {}
        self._exec_cache: Dict[tuple, ActualRun] = {}
        #: Identity-keyed view of ``_exec_cache``: selection outcomes are
        #: memoized for the broker's lifetime, so a candidate object is
        #: stable and ``id(candidate)`` short-circuits the 6-tuple key
        #: build on the placement hot path.
        self._exec_by_cand: Dict[Tuple[int, str], ActualRun] = {}
        self._recover_cache: Dict[tuple, float] = {}
        self._path_cache: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        #: Node ledger of the most recent :meth:`run`, for inspection.
        self.last_ledger: Optional[GridLedger] = None
        #: Queue-pressure stats of the most recent :meth:`run` (engine,
        #: total events, peak event-queue and wait-queue depths) — the
        #: columns ``bench_throughput.py`` records.
        self.last_queue_stats: Dict[str, Any] = {}

    @classmethod
    def from_document(cls, doc: BrokerWorkloadDoc, **kwargs) -> "GridBroker":
        """Build a broker for a parsed workload document."""
        return cls(
            doc.build_topology(),
            doc.allocations,
            replicas=doc.replicas,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Per-workload artefacts (datasets, profiles, selections) — memoized
    # ------------------------------------------------------------------

    @staticmethod
    def _spec(workload: str) -> WorkloadSpec:
        spec = WORKLOADS.get(workload)
        if spec is None:
            raise ConfigurationError(
                f"unknown workload '{workload}'; known: {sorted(WORKLOADS)}"
            )
        return spec

    def _model(self, workload: str) -> PredictionModel:
        model = self._models.get(workload)
        if model is None:
            spec = self._spec(workload)
            model = GlobalReductionModel(
                ModelClasses.parse(
                    spec.natural_object_class, spec.natural_global_class
                )
            )
            self._models[workload] = model
        return model

    def _dataset(self, job: BrokerJob) -> Dataset:
        key = job.dataset_key
        dataset = self._datasets.get(key)
        if dataset is None:
            dataset = self._spec(job.workload).make_dataset(job.size)
            if dataset.name not in self.catalog:
                sites = self._replica_map.get(key)
                if sites is None:
                    sites = sorted(
                        s.name for s in self.topology.repositories()
                    )
                if not sites:
                    raise ConfigurationError(
                        f"no replica sites for dataset '{key}'"
                    )
                for site in sites:
                    self.catalog.add(dataset.name, site)
            self._datasets[key] = dataset
        return dataset

    def _profile(self, job: BrokerJob) -> Profile:
        """The one-off 1-1 reference profile for (workload, size)."""
        key = job.dataset_key
        profile = self._profiles.get(key)
        if profile is None:
            spec = self._spec(job.workload)
            dataset = self._dataset(job)
            from repro.workloads.clusters import DEFAULT_BANDWIDTH

            config = RunConfig(
                storage_cluster=self.profile_cluster,
                compute_cluster=self.profile_cluster,
                data_nodes=1,
                compute_nodes=1,
                bandwidth=DEFAULT_BANDWIDTH,
            )
            run = FreerideGRuntime(config).execute(spec.make_app(), dataset)
            profile = Profile.from_run(config, run.breakdown)
            self._profiles[key] = profile
        return profile

    @hot
    def _selection(self, job: BrokerJob) -> SelectionOutcome:
        """Full-capacity candidate enumeration (raises when infeasible)."""
        key = job.dataset_key
        cached = self._selections.get(key)
        if cached is not None:
            return cached
        known_error = self._infeasible.get(key)
        if known_error is not None:
            raise known_error
        dataset = self._dataset(job)
        selector = ResourceSelector(
            topology=self.topology,
            catalog=self.catalog,
            model_for_site=self._model(job.workload),
            allocations=self.allocations,
        )
        try:
            outcome = selector.select(
                dataset.name, dataset.nbytes, self._profile(job)
            )
        except InfeasibleSelectionError as exc:
            self._infeasible[key] = exc
            raise
        self._selections[key] = outcome
        return outcome

    def baseline_estimate(
        self, workload: str, size: Optional[str] = None
    ) -> float:
        """Best raw predicted execution time on this grid (idle).

        Job-stream generators scale deadlines off this number.
        """
        probe = BrokerJob(job_id="baseline", workload=workload, size=size)
        outcome = self._selection(probe)
        return min(c.predicted_total for c in outcome.candidates)

    # ------------------------------------------------------------------
    # Execution (memoized; the middleware is deterministic)
    # ------------------------------------------------------------------

    @hot
    def _execute(self, job: BrokerJob, cand: SelectionCandidate) -> ActualRun:
        fast_key = (id(cand), job.dataset_key)
        cached = self._exec_by_cand.get(fast_key)
        if cached is not None:
            return cached
        storage = self.topology.site(cand.replica_site).cluster
        compute = self.topology.site(cand.compute_site).cluster
        key = (
            job.dataset_key,
            storage.name,
            compute.name,
            cand.data_nodes,
            cand.compute_nodes,
            cand.bandwidth,
        )
        actual = self._exec_cache.get(key)
        if actual is None:
            config = RunConfig(
                storage_cluster=storage,
                compute_cluster=compute,
                data_nodes=cand.data_nodes,
                compute_nodes=cand.compute_nodes,
                bandwidth=cand.bandwidth,
            )
            result = FreerideGRuntime(config).execute(
                self._spec(job.workload).make_app(), self._dataset(job)
            )
            breakdown = result.breakdown
            actual = ActualRun(
                t_disk=breakdown.t_disk,
                t_network=breakdown.t_network,
                t_compute=breakdown.t_compute,
                num_passes=max(1, breakdown.num_passes),
            )
            self._exec_cache[key] = actual
        self._exec_by_cand[fast_key] = actual
        return actual

    @hot
    def _recover_charge(self, job: BrokerJob, cand: SelectionCandidate) -> float:
        """T_recover for resuming ``job`` from checkpoints on ``cand``.

        Priced through the degraded-mode predictor as a compute-node
        restart at the head of the run: checkpoint restore plus replica
        re-staging of the unshipped tail.  The what-if target always has
        at least two compute nodes (a single-node crash schedule would
        leave no survivors to price the restore against).
        """
        key = (
            job.dataset_key,
            cand.replica_site,
            cand.compute_site,
            cand.data_nodes,
            cand.compute_nodes,
        )
        charge = self._recover_cache.get(key)
        if charge is None:
            config = RunConfig(
                storage_cluster=self.topology.site(cand.replica_site).cluster,
                compute_cluster=self.topology.site(cand.compute_site).cluster,
                data_nodes=cand.data_nodes,
                compute_nodes=max(2, cand.compute_nodes),
                bandwidth=cand.bandwidth,
            )
            target = PredictionTarget(
                config=config, dataset_bytes=self._dataset(job).nbytes
            )
            what_if = DegradedModePredictor(
                self._model(job.workload)
            ).predict_compute_node_crash(
                self._profile(job), target, at_fraction=0.0
            )
            recovery = what_if.recovery
            charge = (
                recovery.t_restore
                + recovery.t_refetch_disk
                + recovery.t_refetch_network
            )
            self._recover_cache[key] = charge
        return charge

    @hot
    def _wan_factor(
        self,
        replica_site: str,
        compute_site: str,
        active: Optional[Sequence[WanDegradation]],
    ) -> float:
        """Product of active WAN degradation factors on the pair's path."""
        if not active or replica_site == compute_site:
            return 1.0
        pair = (replica_site, compute_site)
        path = self._path_cache.get(pair)
        if path is None:
            path = tuple(self.topology.path(replica_site, compute_site))
            self._path_cache[pair] = path
        factor = 1.0
        for spec in active:
            if spec.crosses(path):
                factor *= spec.factor
        return factor

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    @hot
    def run(
        self,
        jobs: Sequence[BrokerJob],
        policy: str = "min-completion",
        *,
        calibrate: bool = True,
        faults: Optional[GridFaultSchedule] = None,
        recovery: str = "resubmit",
        retry: Optional[BrokerRetryPolicy] = None,
        engine: str = "indexed",
    ) -> PolicyRun:
        """Broker one job stream under one policy.

        Returns the :class:`PolicyRun` with placements, rejections and
        the completion-ordered prediction-error series.  The per-node
        reservation windows of the run are kept on :attr:`last_ledger`
        for inspection (the property tests check them for overlap), and
        queue-pressure stats on :attr:`last_queue_stats`.

        ``faults`` installs a grid fault schedule: the report then also
        carries the fault timeline, preemptions, terminal failures and
        resilience metrics, with preempted jobs routed through the named
        ``recovery`` policy under the bounded ``retry`` budget.  Without
        faults the report is byte-identical to a fault-free broker's.

        ``engine`` selects the event-loop implementation: ``"indexed"``
        (default; heap queues, incremental ledger, cached calibration)
        or ``"linear"`` (the retained pre-scale-up reference path).
        Both produce byte-identical reports (see the module docstring).
        """
        if not jobs:
            raise ConfigurationError("no jobs to broker")
        if engine not in ("indexed", "linear"):
            raise ConfigurationError(
                f"unknown broker engine '{engine}'; known: indexed, linear"
            )
        indexed = engine == "indexed"
        stream = sorted_jobs(jobs)
        policy_impl = make_policy(
            policy, [s.name for s in self.topology.sites(SiteKind.COMPUTE)]
        )
        calibrator = OnlineCalibrator(alpha=self.alpha)
        queue: EventQueue | LinearEventQueue
        if indexed:
            ledger = GridLedger.from_topology(self.topology)
            queue = EventQueue()
        else:
            ledger = GridLedger.from_topology(
                self.topology, pool_cls=LinearSitePool
            )
            queue = LinearEventQueue()
        for job in stream:
            queue.push(Event(time=job.arrival, kind=EventKind.ARRIVAL,
                             payload=job))

        faulted = faults is not None and len(faults) > 0
        state: Optional[_FaultState] = None
        if faulted:
            assert faults is not None
            state = _FaultState(
                schedule=faults,
                recovery=make_recovery(recovery, retry),
                transient_remaining={
                    job_id: spec.failures
                    for job_id, spec in faults.transient_failures.items()
                },
                wan_active=[],
                shrink_victims={},
                failed_attempts={},
                progress={},
                charge_next={},
                terminal=set(),
                fault_events=[],
                preemptions=[],
                failures=[],
            )
            self._schedule_faults(faults, queue)

        pending: List[Tuple[tuple, BrokerJob]] = []  # (sort key, job)
        #: Placements in placement order, keyed by attempt id so that
        #: preempted attempts can be withdrawn without reordering.
        placed: List[Tuple[int, BrokerPlacement]] = []
        rejections: List[BrokerRejection] = []
        errors: List[Tuple[str, float]] = []
        running: Dict[int, _Running] = {}
        cancelled: Set[int] = set()
        attempt_seq = 0
        now = 0.0
        peak_pending = 0
        #: Per-workload calibration epochs: observe() only moves factors
        #: of the completed job's application, so only that workload's
        #: cached options go stale.
        app_epoch: Dict[str, int] = {}
        #: dataset_key -> (workload epoch at build, fault-free options).
        #: Options are job-independent fault-free, so the list is shared
        #: across jobs of the same (workload, size) until calibration
        #: moves for that workload.
        options_cache: Dict[str, Tuple[int, List[PlacementOption]]] = {}
        #: (job_id, ledger version) of the last blocked queue head: the
        #: head cannot become placeable until capacity moves, so the
        #: placement loop skips it while the version stands still.
        last_block: Optional[Tuple[str, int]] = None
        #: dataset_key -> per-candidate capacity requirements, in
        #: candidate order: ``(site, other_site, need, other_need)``
        #: with same-site pairs folded to ``(site, None, sum, 0)``.
        #: Candidates are memoized per dataset key, so this is computed
        #: once and the feasibility scan touches only plain tuples.
        feas_reqs: Dict[
            str, List[Tuple[str, Optional[str], int, int]]
        ] = {}

        @hot
        def reject(job: BrokerJob, now: float, code: str, reason: str) -> None:
            rejections.append(
                BrokerRejection(
                    job_id=job.job_id,
                    workload=job.workload,
                    time=now,
                    code=code,
                    reason=reason,
                    deadline=job.deadline,
                    vo=job.vo,
                    arrival_index=job.arrival_index,
                )
            )

        @hot
        def enqueue(job: BrokerJob) -> None:
            nonlocal peak_pending
            entry = ((-job.priority, job.arrival, job.job_id), job)
            if indexed:
                heapq.heappush(pending, entry)
            else:
                bisect.insort(pending, entry)
            if len(pending) > peak_pending:
                peak_pending = len(pending)

        @hot
        def job_options(
            job: BrokerJob, outcome: SelectionOutcome
        ) -> List[PlacementOption]:
            if state is None:
                if indexed:
                    epoch = app_epoch.get(job.workload, 0)
                    cached = options_cache.get(job.dataset_key)
                    if cached is not None and cached[0] == epoch:
                        return cached[1]
                    opts = self._options(job, outcome, calibrator)
                    options_cache[job.dataset_key] = (epoch, opts)
                    return opts
                return self._options(
                    job, outcome, calibrator, use_reference=True
                )
            done = state.progress.get(job.job_id, 0.0)
            return self._options(
                job,
                outcome,
                calibrator,
                remaining=1.0 - done,
                charge=state.charge_next.get(job.job_id, False) and done > 0,
                wan=state.wan_active,
                use_reference=not indexed,
            )

        @hot
        def settle_preemption(run_state: _Running, cause: str, at: float) -> None:
            """Tear one attempt down and route its job through recovery."""
            assert state is not None
            cancelled.add(run_state.attempt_id)
            running.pop(run_state.attempt_id, None)
            cand = run_state.candidate
            ledger.pool(cand.replica_site).truncate_windows(
                run_state.job.job_id, at
            )
            if cand.compute_site != cand.replica_site:
                ledger.pool(cand.compute_site).truncate_windows(
                    run_state.job.job_id, at
                )
            ledger.pool(cand.replica_site).release(run_state.data_node_ids)
            ledger.pool(cand.compute_site).release(run_state.compute_node_ids)

            job = run_state.job
            state.failed_attempts[job.job_id] = run_state.attempt_number
            incident = Incident(
                job=job,
                cause=cause,
                time=at,
                failed_attempts=run_state.attempt_number,
                done_before=run_state.progress_before,
                checkpoint_fraction=run_state.checkpoint_at(at),
            )
            decision = state.recovery.plan(incident)
            kept = decision.progress if isinstance(decision, Requeue) else 0.0
            gained = max(0.0, kept - run_state.progress_before)
            executed = at - run_state.start
            state.preemptions.append(
                BrokerPreemption(
                    job_id=job.job_id,
                    workload=job.workload,
                    attempt=run_state.attempt_number,
                    time=at,
                    start=run_state.start,
                    cause=cause,
                    site=cand.compute_site,
                    wasted=executed - gained * run_state.full_total,
                    kept_fraction=kept,
                )
            )
            if isinstance(decision, GiveUp):
                state.terminal.add(job.job_id)
                state.failures.append(
                    TerminalFailure(
                        job_id=job.job_id,
                        workload=job.workload,
                        time=at,
                        code=decision.code,
                        reason=decision.reason,
                        attempts=run_state.attempt_number,
                        deadline=job.deadline,
                    )
                )
                return
            state.progress[job.job_id] = kept
            state.charge_next[job.job_id] = decision.charge_recovery
            queue.push(
                Event(time=decision.at, kind=EventKind.REQUEUE, payload=job)
            )

        # Six-figure streams allocate millions of short-lived objects
        # that all survive (report rows, reservation windows); CPython's
        # generational collector re-scans that growing live set on every
        # gen-2 pass, which turns the loop superlinear.  The indexed
        # engine pauses automatic collection for the loop's duration
        # (nothing here creates reference cycles; collection resumes in
        # the ``finally``).  The linear engine keeps the pre-scale-up
        # behaviour — it is the measured baseline.
        gc_was_enabled = indexed and gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while queue:
                event = queue.pop()
                now = event.time
                if event.kind is EventKind.COMPLETION:
                    done: _Completion = event.payload
                    if done.attempt_id in cancelled:
                        continue
                    running.pop(done.attempt_id, None)
                    ledger.pool(done.candidate.replica_site).release(
                        done.data_node_ids
                    )
                    ledger.pool(done.candidate.compute_site).release(
                        done.compute_node_ids
                    )
                    errors.append(
                        (
                            done.job.job_id,
                            abs(done.actual.total - done.predicted_total)
                            / done.actual.total,
                        )
                    )
                    if calibrate and done.full_attempt:
                        calibrator.observe(
                            done.job.workload,
                            done.candidate.replica_site,
                            done.candidate.compute_site,
                            done.raw,
                            done.actual.components,
                        )
                        app = done.job.workload
                        app_epoch[app] = app_epoch.get(app, 0) + 1
                elif event.kind is EventKind.ABORT:
                    assert state is not None
                    attempt_id = event.payload
                    run_state = running.get(attempt_id)
                    if run_state is not None and attempt_id not in cancelled:
                        state.fault_events.append(
                            GridFaultEvent(
                                time=now,
                                kind="transient-failure",
                                target=run_state.job.job_id,
                                detail=(
                                    f"attempt {run_state.attempt_number} aborted"
                                ),
                            )
                        )
                        settle_preemption(run_state, "transient-failure", now)
                elif event.kind is EventKind.FAULT:
                    self._apply_fault(event.payload, now, ledger, state,
                                      running, settle_preemption)
                elif event.kind is EventKind.REPAIR:
                    self._apply_repair(event.payload, now, ledger, state)
                elif event.kind is EventKind.REQUEUE:
                    assert state is not None
                    job = event.payload
                    if job.job_id not in state.terminal:
                        enqueue(job)
                else:
                    job = event.payload
                    try:
                        outcome = self._selection(job)
                    except InfeasibleSelectionError as exc:
                        tagged = exc.tagged(job.arrival_index, job.vo)
                        detail = "; ".join(
                            r.label for r in tagged.rejections[:3]
                        )
                        reject(
                            job,
                            now,
                            "no-feasible-configuration",
                            detail or str(tagged),
                        )
                        continue
                    # The indexed engine only pays for idle-grid options
                    # when the policy's admission check will read them.
                    if not indexed or policy_impl.wants_admission_options(job):
                        options = job_options(job, outcome)
                    else:
                        options = []
                    refusal = policy_impl.admit(job, options, now)
                    if refusal is not None:
                        reject(job, now, refusal.code, refusal.reason)
                        continue
                    enqueue(job)

                # Placement: serve the queue head while it fits; no backfill.
                while pending:
                    head = pending[0][1]
                    if indexed and last_block == (head.job_id, ledger.version):
                        break
                    outcome = self._selection(head)
                    if indexed:
                        # Feasibility first: one free-count read per
                        # decision, then plain integer compares against
                        # the precomputed per-candidate requirements
                        # (the predicate fits_now evaluates, without
                        # per-candidate method hops).  A blocked head is
                        # detected before any option is priced.
                        reqs = feas_reqs.get(head.dataset_key)
                        if reqs is None:
                            reqs = []
                            for cand in outcome.candidates:
                                if cand.replica_site == cand.compute_site:
                                    reqs.append((
                                        cand.replica_site,
                                        None,
                                        cand.data_nodes + cand.compute_nodes,
                                        0,
                                    ))
                                else:
                                    reqs.append((
                                        cand.replica_site,
                                        cand.compute_site,
                                        cand.data_nodes,
                                        cand.compute_nodes,
                                    ))
                            feas_reqs[head.dataset_key] = reqs
                        free = ledger.free_counts()
                        feasible_idx = [
                            i
                            for i, (s1, s2, n1, n2) in enumerate(reqs)
                            if free[s1] >= n1
                            and (s2 is None or free[s2] >= n2)
                        ]
                        if not feasible_idx:
                            last_block = (head.job_id, ledger.version)
                            break
                        if state is None and policy_impl.scalar_choice:
                            # Scalar fast path: score each feasible
                            # candidate with one calibrated float
                            # (bit-identical to the option's
                            # predicted_total), let the policy pick the
                            # winning index, and materialize a full
                            # PlacementOption for the winner alone.
                            # Round-robin never reads predictions, so
                            # its decisions skip the correction calls
                            # entirely.  Deliberately not cached: the
                            # feasible subset is free-count-shaped, not
                            # reusable, and at steady state a
                            # same-workload completion lands between
                            # almost every pair of same-workload
                            # placements.
                            cands = outcome.candidates
                            feas_cands = [
                                cands[i] for i in feasible_idx
                            ]
                            if policy_impl.needs_totals:
                                app = head.workload
                                totals = [
                                    calibrator.correct_total(
                                        app,
                                        cand.replica_site,
                                        cand.compute_site,
                                        cand.prediction,
                                    )
                                    for cand in feas_cands
                                ]
                            else:
                                totals = []
                            choice = policy_impl.choose_index(
                                head, feas_cands, totals, now
                            )
                            if isinstance(choice, Rejection):
                                decision: PlacementOption | Rejection = (
                                    choice
                                )
                            else:
                                decision = self._options(
                                    head,
                                    outcome,
                                    calibrator,
                                    candidates=[feas_cands[choice]],
                                )[0]
                        elif state is None:
                            # Fallback for policies without the scalar
                            # protocol: price only the candidates that
                            # fit right now — identical values to a
                            # full build filtered afterwards, at a
                            # fraction of the correction calls.
                            cands = outcome.candidates
                            feasible = self._options(
                                head,
                                outcome,
                                calibrator,
                                candidates=[
                                    cands[i] for i in feasible_idx
                                ],
                            )
                            decision = policy_impl.choose(
                                head, feasible, now
                            )
                        else:
                            opts = job_options(head, outcome)
                            feasible = [opts[i] for i in feasible_idx]
                            decision = policy_impl.choose(
                                head, feasible, now
                            )
                    else:
                        feasible = [
                            option
                            for option in job_options(head, outcome)
                            if ledger.fits_now(
                                option.replica_site,
                                option.compute_site,
                                option.data_nodes,
                                option.compute_nodes,
                            )
                        ]
                        if not feasible:
                            last_block = (head.job_id, ledger.version)
                            break
                        decision = policy_impl.choose(head, feasible, now)
                    if indexed:
                        heapq.heappop(pending)
                    else:
                        pending.pop(0)
                    if isinstance(decision, Rejection):
                        reject(head, now, decision.code, decision.reason)
                        continue
                    attempt_seq += 1
                    self._place(
                        head, decision, now, ledger, queue, placed,
                        attempt_seq, running, state,
                    )

        finally:
            if gc_was_enabled:
                gc.enable()

        # Jobs still queued when the event stream dries up can never be
        # served (nothing is running, nothing will be repaired): settle
        # them terminally so every admitted job is accounted for.
        if state is not None:
            for _, job in sorted(pending):
                attempts = state.failed_attempts.get(job.job_id, 0)
                state.terminal.add(job.job_id)
                state.failures.append(
                    TerminalFailure(
                        job_id=job.job_id,
                        workload=job.workload,
                        time=now,
                        code="stranded-no-capacity",
                        reason=(
                            "no feasible placement before the event stream "
                            "ended (lost capacity was never repaired)"
                        ),
                        attempts=attempts,
                        deadline=job.deadline,
                    )
                )

        self.last_ledger = ledger
        self.last_queue_stats = {
            "engine": engine,
            "events": queue.total_pushed,
            "peak_event_queue_depth": queue.peak_depth,
            "peak_pending_depth": peak_pending,
        }
        placements = tuple(
            placement
            for attempt_id, placement in placed
            if attempt_id not in cancelled
        )
        return PolicyRun(
            policy=policy,
            calibrated=calibrate,
            placements=placements,
            rejections=tuple(rejections),
            error_series=tuple(errors),
            calibration_factors=calibrator.snapshot() if calibrate else {},
            recovery=state.recovery.name if state is not None else None,
            fault_events=tuple(state.fault_events) if state is not None else (),
            preemptions=tuple(state.preemptions) if state is not None else (),
            failures=tuple(state.failures) if state is not None else (),
        )

    # ------------------------------------------------------------------
    # Grid-weather delivery
    # ------------------------------------------------------------------

    def _schedule_faults(
        self, schedule: GridFaultSchedule, queue: EventQueue
    ) -> None:
        """Turn the fault schedule into FAULT/REPAIR events."""
        for index, spec in enumerate(schedule.faults):
            if isinstance(spec, (SiteOutage, NodePoolShrink, WanDegradation)):
                for site in self._fault_sites(spec):
                    if site not in self.topology:
                        raise ConfigurationError(
                            f"grid fault targets unknown site '{site}'"
                        )
                queue.push(
                    Event(
                        time=spec.at,
                        kind=EventKind.FAULT,
                        payload=(index, spec),
                    )
                )
                repair_at = self._repair_time(spec)
                if repair_at is not None:
                    queue.push(
                        Event(
                            time=repair_at,
                            kind=EventKind.REPAIR,
                            payload=(index, spec),
                        )
                    )
            # TransientJobFailure is consulted at placement time.

    @staticmethod
    def _fault_sites(spec: object) -> Tuple[str, ...]:
        if isinstance(spec, WanDegradation):
            return (spec.site_a, spec.site_b)
        return (spec.site,)  # type: ignore[union-attr]

    @staticmethod
    def _repair_time(spec: object) -> Optional[float]:
        if isinstance(spec, SiteOutage):
            return spec.repaired_at
        if isinstance(spec, NodePoolShrink):
            if spec.restore_after is None:
                return None
            return spec.at + spec.restore_after
        if isinstance(spec, WanDegradation):
            if spec.duration is None:
                return None
            return spec.at + spec.duration
        return None

    @hot
    def _apply_fault(
        self,
        payload: Tuple[int, object],
        now: float,
        ledger: GridLedger,
        state: Optional[_FaultState],
        running: Dict[int, _Running],
        settle_preemption,
    ) -> None:
        assert state is not None
        index, spec = payload
        if isinstance(spec, SiteOutage):
            state.fault_events.append(
                GridFaultEvent(
                    time=now,
                    kind="site-outage",
                    target=spec.site,
                    detail=(
                        "permanent"
                        if spec.repair_after is None
                        else f"repair after {spec.repair_after}s"
                    ),
                )
            )
            victims = [
                running[attempt_id]
                for attempt_id in sorted(running)
                if running[attempt_id].uses_site(spec.site)
            ]
            for run_state in victims:
                settle_preemption(run_state, "site-outage", now)
            ledger.pool(spec.site).fail(now)
        elif isinstance(spec, NodePoolShrink):
            removed = ledger.pool(spec.site).shrink(spec.nodes, now)
            state.shrink_victims[index] = removed
            state.fault_events.append(
                GridFaultEvent(
                    time=now,
                    kind="pool-shrink",
                    target=spec.site,
                    detail=f"nodes {sorted(removed)} removed",
                )
            )
            victims = [
                running[attempt_id]
                for attempt_id in sorted(running)
                if running[attempt_id].uses_node(spec.site, removed)
            ]
            for run_state in victims:
                settle_preemption(run_state, "pool-shrink", now)
        elif isinstance(spec, WanDegradation):
            state.wan_active.append(spec)
            state.fault_events.append(
                GridFaultEvent(
                    time=now,
                    kind="wan-degradation",
                    target=f"{spec.site_a}~{spec.site_b}",
                    detail=f"factor {spec.factor}",
                )
            )

    @hot
    def _apply_repair(
        self,
        payload: Tuple[int, object],
        now: float,
        ledger: GridLedger,
        state: Optional[_FaultState],
    ) -> None:
        assert state is not None
        index, spec = payload
        if isinstance(spec, SiteOutage):
            ledger.pool(spec.site).repair(now)
            state.fault_events.append(
                GridFaultEvent(
                    time=now, kind="site-repair", target=spec.site
                )
            )
        elif isinstance(spec, NodePoolShrink):
            victims = state.shrink_victims.get(index, ())
            if victims:
                ledger.pool(spec.site).restore(victims, now)
            state.fault_events.append(
                GridFaultEvent(
                    time=now,
                    kind="pool-restore",
                    target=spec.site,
                    detail=f"nodes {sorted(victims)} restored",
                )
            )
        elif isinstance(spec, WanDegradation):
            state.wan_active.remove(spec)
            state.fault_events.append(
                GridFaultEvent(
                    time=now,
                    kind="wan-restoration",
                    target=f"{spec.site_a}~{spec.site_b}",
                )
            )

    # ------------------------------------------------------------------

    @hot
    def _options(
        self,
        job: BrokerJob,
        outcome: SelectionOutcome,
        calibrator: OnlineCalibrator,
        *,
        remaining: float = 1.0,
        charge: bool = False,
        wan: Optional[Sequence[WanDegradation]] = None,
        use_reference: bool = False,
        candidates: Optional[Sequence[SelectionCandidate]] = None,
    ) -> List[PlacementOption]:
        correct = (
            calibrator.reference_correct if use_reference
            else calibrator.correct
        )
        if candidates is None:
            candidates = outcome.candidates
        return [
            PlacementOption(
                candidate=cand,
                raw=cand.prediction,
                calibrated=correct(
                    job.workload,
                    cand.replica_site,
                    cand.compute_site,
                    cand.prediction,
                ),
                remaining_fraction=remaining,
                resume_charge=(
                    self._recover_charge(job, cand) if charge else 0.0
                ),
                wan_factor=self._wan_factor(
                    cand.replica_site, cand.compute_site, wan
                ),
            )
            for cand in candidates
        ]

    @hot
    def _place(
        self,
        job: BrokerJob,
        option: PlacementOption,
        now: float,
        ledger: GridLedger,
        queue: EventQueue,
        placed: List[Tuple[int, BrokerPlacement]],
        attempt_id: int,
        running: Dict[int, _Running],
        state: Optional[_FaultState],
    ) -> None:
        actual = self._execute(job, option.candidate)
        full_total = (
            actual.t_disk
            + actual.t_network * option.wan_factor
            + actual.t_compute
        )
        charge = option.resume_charge
        duration = option.remaining_fraction * full_total + charge
        start, end = now, now + duration
        data_ids = ledger.pool(option.replica_site).acquire(
            option.data_nodes, job.job_id, start, end
        )
        compute_ids = ledger.pool(option.compute_site).acquire(
            option.compute_nodes, job.job_id, start, end
        )
        attempt_number = 1
        if state is not None:
            attempt_number = state.failed_attempts.get(job.job_id, 0) + 1
        placed.append(
            (
                attempt_id,
                BrokerPlacement(
                    job_id=job.job_id,
                    workload=job.workload,
                    replica_site=option.replica_site,
                    compute_site=option.compute_site,
                    data_nodes=option.data_nodes,
                    compute_nodes=option.compute_nodes,
                    data_node_ids=data_ids,
                    compute_node_ids=compute_ids,
                    arrival=job.arrival,
                    start=start,
                    end=end,
                    predicted_total=option.predicted_total,
                    raw_predicted_total=option.raw.total,
                    deadline=job.deadline,
                    priority=job.priority,
                    attempt=attempt_number,
                    recovery_charge=charge,
                ),
            )
        )
        # remaining_fraction <= 1, charge >= 0, wan_factor >= 1 by
        # construction: inequalities test the fault-free identity values
        # without a float-equality compare.
        full_attempt = option.remaining_fraction >= 1.0 and charge <= 0.0
        effective = actual
        if option.wan_factor > 1.0:
            effective = ActualRun(
                t_disk=actual.t_disk,
                t_network=actual.t_network * option.wan_factor,
                t_compute=actual.t_compute,
                num_passes=actual.num_passes,
            )
        queue.push(
            Event(
                time=end,
                kind=EventKind.COMPLETION,
                payload=_Completion(
                    attempt_id=attempt_id,
                    job=job,
                    candidate=option.candidate,
                    data_node_ids=data_ids,
                    compute_node_ids=compute_ids,
                    raw=option.raw,
                    predicted_total=option.predicted_total,
                    actual=effective,
                    full_attempt=full_attempt,
                ),
            )
        )
        if state is not None:
            running[attempt_id] = _Running(
                attempt_id=attempt_id,
                attempt_number=attempt_number,
                job=job,
                candidate=option.candidate,
                data_node_ids=data_ids,
                compute_node_ids=compute_ids,
                start=start,
                end=end,
                progress_before=1.0 - option.remaining_fraction,
                charge=charge,
                full_total=full_total,
                num_passes=actual.num_passes,
            )
            doomed = state.transient_remaining.get(job.job_id, 0)
            if doomed > 0:
                state.transient_remaining[job.job_id] = doomed - 1
                spec = state.schedule.transient_failures[job.job_id]
                queue.push(
                    Event(
                        time=start + spec.at_fraction * duration,
                        kind=EventKind.ABORT,
                        payload=attempt_id,
                    )
                )

    # ------------------------------------------------------------------

    def compare(
        self,
        name: str,
        jobs: Sequence[BrokerJob],
        policies: Sequence[str] = POLICY_NAMES,
        *,
        include_uncalibrated: bool = True,
        faults: Optional[GridFaultSchedule] = None,
        recovery: str = "resubmit",
        retry: Optional[BrokerRetryPolicy] = None,
        engine: str = "indexed",
    ) -> BrokerReport:
        """Run every policy over the same stream; one report.

        ``include_uncalibrated`` adds a calibration-off twin of the first
        policy, the control for the calibration-accuracy claim.  A
        ``faults`` schedule applies identically to every run.
        """
        runs = [
            self.run(jobs, policy, faults=faults, recovery=recovery,
                     retry=retry, engine=engine)
            for policy in policies
        ]
        if include_uncalibrated and policies:
            runs.append(
                self.run(jobs, policies[0], calibrate=False, faults=faults,
                         recovery=recovery, retry=retry, engine=engine)
            )
        return BrokerReport(name=name, runs=tuple(runs))

    def resolve_jobs(self, doc: BrokerWorkloadDoc) -> List[BrokerJob]:
        """The document's job stream (expanding a seeded stream spec)."""
        if doc.jobs:
            return list(doc.jobs)
        from repro.workloads.streams import StreamSpec, generate_stream

        spec = StreamSpec.from_dict(doc.stream or {})
        return generate_stream(spec, baselines=self.baseline_estimate)
