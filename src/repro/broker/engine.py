"""The prediction-guided grid broker.

:class:`GridBroker` closes the loop the paper motivates: a *stream* of
FREERIDE-G jobs arrives over simulated time and contends for cluster
nodes, and each job is placed on a (replica site, compute configuration)
pair chosen by a pluggable policy over the prediction framework's
one-profile estimates.  The broker is a discrete-event simulation:

1. **Arrival** — the job is admission-checked: the
   :class:`~repro.core.selection.ResourceSelector` enumerates its
   full-capacity candidates (an infeasible job is rejected with the
   selector's machine-usable rejection reasons) and the policy may
   refuse it outright (deadline admission control).  Admitted jobs enter
   the wait queue, ordered by priority then arrival.
2. **Placement** — whenever an event fires, the broker tries to place
   the queue head on the candidates that fit the *currently free* nodes
   (no backfilling: a blocked head blocks the queue, which keeps the
   simulation fair and the scheduling property provable).  The policy
   sees calibrated predictions, so its completion estimate is realized
   queue wait + :math:`\\hat T_{exec}`.
3. **Execution** — the placement runs for real on the simulated
   middleware (:class:`~repro.middleware.runtime.FreerideGRuntime`);
   identical (dataset, configuration) runs are memoized, which is sound
   because the middleware is deterministic.
4. **Completion** — nodes are released and the *observed* component
   times are fed to the :class:`~repro.broker.calibration.OnlineCalibrator`,
   so later placements of the same (app, site) use corrected estimates.
   Online calibration replaces the paper's measured cross-cluster
   scaling factors with factors learned from the stream itself.

Every data structure iterates in a deterministic order, so replaying
the same job stream yields a byte-identical :class:`BrokerReport`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.broker.calibration import OnlineCalibrator
from repro.broker.events import Event, EventKind, EventQueue, GridLedger
from repro.broker.jobs import BrokerJob, BrokerWorkloadDoc, sorted_jobs
from repro.broker.policies import (
    POLICY_NAMES,
    PlacementOption,
    Rejection,
    make_policy,
)
from repro.broker.report import (
    BrokerPlacement,
    BrokerRejection,
    BrokerReport,
    PolicyRun,
)
from repro.core.classes import ModelClasses
from repro.core.models import GlobalReductionModel, PredictionModel
from repro.core.profile import Profile
from repro.core.selection import (
    InfeasibleSelectionError,
    ResourceSelector,
    SelectionCandidate,
    SelectionOutcome,
)
from repro.middleware.dataset import Dataset
from repro.middleware.replica import ReplicaCatalog
from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import ClusterSpec
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads.registry import WORKLOADS, WorkloadSpec

__all__ = ["GridBroker", "ActualRun"]


@dataclass(frozen=True)
class ActualRun:
    """Observed component times of one executed placement."""

    t_disk: float
    t_network: float
    t_compute: float

    @property
    def total(self) -> float:
        return self.t_disk + self.t_network + self.t_compute

    @property
    def components(self) -> Tuple[float, float, float]:
        return (self.t_disk, self.t_network, self.t_compute)


@dataclass(frozen=True)
class _Completion:
    """Payload of a completion event."""

    job: BrokerJob
    candidate: SelectionCandidate
    data_node_ids: Tuple[int, ...]
    compute_node_ids: Tuple[int, ...]
    raw: object  # PredictedBreakdown
    predicted_total: float
    actual: ActualRun


class GridBroker:
    """Places a stream of jobs on a grid using calibrated predictions.

    Parameters
    ----------
    topology:
        The grid (repository + compute sites with annotated links).
    allocations:
        Candidate ``(data_nodes, compute_nodes)`` pairs per site pair.
    replicas:
        Optional ``dataset-key -> [repository sites]`` placement map
        (keys as :attr:`BrokerJob.dataset_key`); by default every
        repository site holds every dataset.
    profile_cluster:
        Hardware the one-off 1-1 reference profiles are collected on
        (default: the paper's Pentium/Myrinet testbed).  Predictions for
        other machine types carry systematic error that the online
        calibration layer then learns away.
    alpha:
        Exponential weight of the calibrator (see
        :class:`~repro.broker.calibration.OnlineCalibrator`).
    """

    def __init__(
        self,
        topology: GridTopology,
        allocations: Sequence[Tuple[int, int]],
        *,
        replicas: Optional[Mapping[str, Sequence[str]]] = None,
        profile_cluster: Optional[ClusterSpec] = None,
        alpha: float = 0.3,
    ) -> None:
        if not allocations:
            raise ConfigurationError("need at least one candidate allocation")
        if not list(topology.sites(SiteKind.COMPUTE)):
            raise ConfigurationError("broker grid has no compute sites")
        if not list(topology.sites(SiteKind.REPOSITORY)):
            raise ConfigurationError("broker grid has no repository sites")
        self.topology = topology
        self.allocations = list(allocations)
        self._replica_map = {
            key: list(sites) for key, sites in (replicas or {}).items()
        }
        if profile_cluster is None:
            from repro.workloads.clusters import pentium_myrinet_cluster

            profile_cluster = pentium_myrinet_cluster()
        self.profile_cluster = profile_cluster
        self.alpha = alpha

        self.catalog = ReplicaCatalog(topology)
        self._datasets: Dict[str, Dataset] = {}
        self._profiles: Dict[str, Profile] = {}
        self._models: Dict[str, PredictionModel] = {}
        self._selections: Dict[str, SelectionOutcome] = {}
        self._infeasible: Dict[str, InfeasibleSelectionError] = {}
        self._exec_cache: Dict[tuple, ActualRun] = {}
        #: Node ledger of the most recent :meth:`run`, for inspection.
        self.last_ledger: Optional[GridLedger] = None

    @classmethod
    def from_document(cls, doc: BrokerWorkloadDoc, **kwargs) -> "GridBroker":
        """Build a broker for a parsed workload document."""
        return cls(
            doc.build_topology(),
            doc.allocations,
            replicas=doc.replicas,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Per-workload artefacts (datasets, profiles, selections) — memoized
    # ------------------------------------------------------------------

    @staticmethod
    def _spec(workload: str) -> WorkloadSpec:
        spec = WORKLOADS.get(workload)
        if spec is None:
            raise ConfigurationError(
                f"unknown workload '{workload}'; known: {sorted(WORKLOADS)}"
            )
        return spec

    def _model(self, workload: str) -> PredictionModel:
        model = self._models.get(workload)
        if model is None:
            spec = self._spec(workload)
            model = GlobalReductionModel(
                ModelClasses.parse(
                    spec.natural_object_class, spec.natural_global_class
                )
            )
            self._models[workload] = model
        return model

    def _dataset(self, job: BrokerJob) -> Dataset:
        key = job.dataset_key
        dataset = self._datasets.get(key)
        if dataset is None:
            dataset = self._spec(job.workload).make_dataset(job.size)
            if dataset.name not in self.catalog:
                sites = self._replica_map.get(key)
                if sites is None:
                    sites = sorted(
                        s.name for s in self.topology.repositories()
                    )
                if not sites:
                    raise ConfigurationError(
                        f"no replica sites for dataset '{key}'"
                    )
                for site in sites:
                    self.catalog.add(dataset.name, site)
            self._datasets[key] = dataset
        return dataset

    def _profile(self, job: BrokerJob) -> Profile:
        """The one-off 1-1 reference profile for (workload, size)."""
        key = job.dataset_key
        profile = self._profiles.get(key)
        if profile is None:
            spec = self._spec(job.workload)
            dataset = self._dataset(job)
            from repro.workloads.clusters import DEFAULT_BANDWIDTH

            config = RunConfig(
                storage_cluster=self.profile_cluster,
                compute_cluster=self.profile_cluster,
                data_nodes=1,
                compute_nodes=1,
                bandwidth=DEFAULT_BANDWIDTH,
            )
            run = FreerideGRuntime(config).execute(spec.make_app(), dataset)
            profile = Profile.from_run(config, run.breakdown)
            self._profiles[key] = profile
        return profile

    def _selection(self, job: BrokerJob) -> SelectionOutcome:
        """Full-capacity candidate enumeration (raises when infeasible)."""
        key = job.dataset_key
        cached = self._selections.get(key)
        if cached is not None:
            return cached
        known_error = self._infeasible.get(key)
        if known_error is not None:
            raise known_error
        dataset = self._dataset(job)
        selector = ResourceSelector(
            topology=self.topology,
            catalog=self.catalog,
            model_for_site=self._model(job.workload),
            allocations=self.allocations,
        )
        try:
            outcome = selector.select(
                dataset.name, dataset.nbytes, self._profile(job)
            )
        except InfeasibleSelectionError as exc:
            self._infeasible[key] = exc
            raise
        self._selections[key] = outcome
        return outcome

    def baseline_estimate(
        self, workload: str, size: Optional[str] = None
    ) -> float:
        """Best raw predicted execution time on this grid (idle).

        Job-stream generators scale deadlines off this number.
        """
        probe = BrokerJob(job_id="baseline", workload=workload, size=size)
        outcome = self._selection(probe)
        return min(c.predicted_total for c in outcome.candidates)

    # ------------------------------------------------------------------
    # Execution (memoized; the middleware is deterministic)
    # ------------------------------------------------------------------

    def _execute(self, job: BrokerJob, cand: SelectionCandidate) -> ActualRun:
        storage = self.topology.site(cand.replica_site).cluster
        compute = self.topology.site(cand.compute_site).cluster
        key = (
            job.dataset_key,
            storage.name,
            compute.name,
            cand.data_nodes,
            cand.compute_nodes,
            cand.bandwidth,
        )
        actual = self._exec_cache.get(key)
        if actual is None:
            config = RunConfig(
                storage_cluster=storage,
                compute_cluster=compute,
                data_nodes=cand.data_nodes,
                compute_nodes=cand.compute_nodes,
                bandwidth=cand.bandwidth,
            )
            result = FreerideGRuntime(config).execute(
                self._spec(job.workload).make_app(), self._dataset(job)
            )
            breakdown = result.breakdown
            actual = ActualRun(
                t_disk=breakdown.t_disk,
                t_network=breakdown.t_network,
                t_compute=breakdown.t_compute,
            )
            self._exec_cache[key] = actual
        return actual

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[BrokerJob],
        policy: str = "min-completion",
        *,
        calibrate: bool = True,
    ) -> PolicyRun:
        """Broker one job stream under one policy.

        Returns the :class:`PolicyRun` with placements, rejections and
        the completion-ordered prediction-error series.  The per-node
        reservation windows of the run are kept on :attr:`last_ledger`
        for inspection (the property tests check them for overlap).
        """
        if not jobs:
            raise ConfigurationError("no jobs to broker")
        stream = sorted_jobs(jobs)
        policy_impl = make_policy(
            policy, [s.name for s in self.topology.sites(SiteKind.COMPUTE)]
        )
        calibrator = OnlineCalibrator(alpha=self.alpha)
        ledger = GridLedger.from_topology(self.topology)
        queue = EventQueue()
        for job in stream:
            queue.push(Event(time=job.arrival, kind=EventKind.ARRIVAL,
                             payload=job))

        pending: List[Tuple[tuple, BrokerJob]] = []  # (sort key, job)
        placements: List[BrokerPlacement] = []
        rejections: List[BrokerRejection] = []
        errors: List[Tuple[str, float]] = []

        def reject(job: BrokerJob, now: float, code: str, reason: str) -> None:
            rejections.append(
                BrokerRejection(
                    job_id=job.job_id,
                    workload=job.workload,
                    time=now,
                    code=code,
                    reason=reason,
                    deadline=job.deadline,
                )
            )

        while queue:
            event = queue.pop()
            now = event.time
            if event.kind is EventKind.COMPLETION:
                done: _Completion = event.payload
                ledger.pool(done.candidate.replica_site).release(
                    done.data_node_ids
                )
                ledger.pool(done.candidate.compute_site).release(
                    done.compute_node_ids
                )
                errors.append(
                    (
                        done.job.job_id,
                        abs(done.actual.total - done.predicted_total)
                        / done.actual.total,
                    )
                )
                if calibrate:
                    calibrator.observe(
                        done.job.workload,
                        done.candidate.replica_site,
                        done.candidate.compute_site,
                        done.raw,
                        done.actual.components,
                    )
            else:
                job: BrokerJob = event.payload
                try:
                    outcome = self._selection(job)
                except InfeasibleSelectionError as exc:
                    detail = "; ".join(r.label for r in exc.rejections[:3])
                    reject(
                        job,
                        now,
                        "no-feasible-configuration",
                        detail or str(exc),
                    )
                    continue
                options = self._options(job, outcome, calibrator)
                refusal = policy_impl.admit(job, options, now)
                if refusal is not None:
                    reject(job, now, refusal.code, refusal.reason)
                    continue
                entry = ((-job.priority, job.arrival, job.job_id), job)
                bisect.insort(pending, entry)

            # Placement: serve the queue head while it fits; no backfill.
            while pending:
                head = pending[0][1]
                outcome = self._selection(head)
                feasible = [
                    option
                    for option in self._options(head, outcome, calibrator)
                    if ledger.fits_now(
                        option.replica_site,
                        option.compute_site,
                        option.data_nodes,
                        option.compute_nodes,
                    )
                ]
                if not feasible:
                    break
                decision = policy_impl.choose(head, feasible, now)
                pending.pop(0)
                if isinstance(decision, Rejection):
                    reject(head, now, decision.code, decision.reason)
                    continue
                self._place(
                    head, decision, now, ledger, queue, placements
                )

        self.last_ledger = ledger
        return PolicyRun(
            policy=policy,
            calibrated=calibrate,
            placements=tuple(placements),
            rejections=tuple(rejections),
            error_series=tuple(errors),
            calibration_factors=calibrator.snapshot() if calibrate else {},
        )

    def _options(
        self,
        job: BrokerJob,
        outcome: SelectionOutcome,
        calibrator: OnlineCalibrator,
    ) -> List[PlacementOption]:
        return [
            PlacementOption(
                candidate=cand,
                raw=cand.prediction,
                calibrated=calibrator.correct(
                    job.workload,
                    cand.replica_site,
                    cand.compute_site,
                    cand.prediction,
                ),
            )
            for cand in outcome.candidates
        ]

    def _place(
        self,
        job: BrokerJob,
        option: PlacementOption,
        now: float,
        ledger: GridLedger,
        queue: EventQueue,
        placements: List[BrokerPlacement],
    ) -> None:
        actual = self._execute(job, option.candidate)
        start, end = now, now + actual.total
        data_ids = ledger.pool(option.replica_site).acquire(
            option.data_nodes, job.job_id, start, end
        )
        compute_ids = ledger.pool(option.compute_site).acquire(
            option.compute_nodes, job.job_id, start, end
        )
        placements.append(
            BrokerPlacement(
                job_id=job.job_id,
                workload=job.workload,
                replica_site=option.replica_site,
                compute_site=option.compute_site,
                data_nodes=option.data_nodes,
                compute_nodes=option.compute_nodes,
                data_node_ids=data_ids,
                compute_node_ids=compute_ids,
                arrival=job.arrival,
                start=start,
                end=end,
                predicted_total=option.predicted_total,
                raw_predicted_total=option.raw.total,
                deadline=job.deadline,
                priority=job.priority,
            )
        )
        queue.push(
            Event(
                time=end,
                kind=EventKind.COMPLETION,
                payload=_Completion(
                    job=job,
                    candidate=option.candidate,
                    data_node_ids=data_ids,
                    compute_node_ids=compute_ids,
                    raw=option.raw,
                    predicted_total=option.predicted_total,
                    actual=actual,
                ),
            )
        )

    # ------------------------------------------------------------------

    def compare(
        self,
        name: str,
        jobs: Sequence[BrokerJob],
        policies: Sequence[str] = POLICY_NAMES,
        *,
        include_uncalibrated: bool = True,
    ) -> BrokerReport:
        """Run every policy over the same stream; one report.

        ``include_uncalibrated`` adds a calibration-off twin of the first
        policy, the control for the calibration-accuracy claim.
        """
        runs = [self.run(jobs, policy) for policy in policies]
        if include_uncalibrated and policies:
            runs.append(self.run(jobs, policies[0], calibrate=False))
        return BrokerReport(name=name, runs=tuple(runs))

    def resolve_jobs(self, doc: BrokerWorkloadDoc) -> List[BrokerJob]:
        """The document's job stream (expanding a seeded stream spec)."""
        if doc.jobs:
            return list(doc.jobs)
        from repro.workloads.streams import StreamSpec, generate_stream

        spec = StreamSpec.from_dict(doc.stream or {})
        return generate_stream(spec, baselines=self.baseline_estimate)
