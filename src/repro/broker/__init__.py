"""Prediction-guided grid brokering over simulated time.

The broker subsystem accepts a stream of FREERIDE-G jobs and places
each on a (replica site, compute configuration) pair chosen by a
pluggable policy over the prediction framework, correcting the model
online from observed runs.  See :mod:`repro.broker.engine` for the
event-loop semantics and DESIGN.md section 12 for the design rationale.
"""

from repro.broker.calibration import CorrectionFactor, OnlineCalibrator
from repro.broker.engine import ActualRun, GridBroker
from repro.broker.events import (
    Event,
    EventKind,
    EventQueue,
    GridLedger,
    NodeWindow,
    SitePool,
)
from repro.broker.jobs import (
    BrokerJob,
    BrokerWorkloadDoc,
    load_workload_document,
    parse_workload_document,
    sorted_jobs,
)
from repro.broker.policies import (
    POLICY_NAMES,
    DeadlineAwarePolicy,
    MinCompletionPolicy,
    MinCostPolicy,
    PlacementOption,
    PlacementPolicy,
    Rejection,
    RoundRobinPolicy,
    make_policy,
)
from repro.broker.report import (
    BrokerPlacement,
    BrokerRejection,
    BrokerReport,
    PolicyRun,
    load_report,
)

__all__ = [
    "ActualRun",
    "BrokerJob",
    "BrokerPlacement",
    "BrokerRejection",
    "BrokerReport",
    "BrokerWorkloadDoc",
    "CorrectionFactor",
    "DeadlineAwarePolicy",
    "Event",
    "EventKind",
    "EventQueue",
    "GridBroker",
    "GridLedger",
    "MinCompletionPolicy",
    "MinCostPolicy",
    "NodeWindow",
    "OnlineCalibrator",
    "POLICY_NAMES",
    "PlacementOption",
    "PlacementPolicy",
    "PolicyRun",
    "Rejection",
    "RoundRobinPolicy",
    "SitePool",
    "load_report",
    "load_workload_document",
    "make_policy",
    "parse_workload_document",
    "sorted_jobs",
]
