"""Prediction-guided grid brokering over simulated time.

The broker subsystem accepts a stream of FREERIDE-G jobs and places
each on a (replica site, compute configuration) pair chosen by a
pluggable policy over the prediction framework, correcting the model
online from observed runs.  See :mod:`repro.broker.engine` for the
event-loop semantics and DESIGN.md section 12 for the design rationale.
"""

from repro.broker.calibration import CorrectionFactor, OnlineCalibrator
from repro.broker.engine import ActualRun, GridBroker
from repro.broker.events import (
    Event,
    EventKind,
    EventQueue,
    GridLedger,
    NodeWindow,
    OutageRecord,
    SitePool,
)
from repro.broker.jobs import (
    BrokerJob,
    BrokerWorkloadDoc,
    load_workload_document,
    parse_workload_document,
    sorted_jobs,
)
from repro.broker.policies import (
    POLICY_NAMES,
    DeadlineAwarePolicy,
    MinCompletionPolicy,
    MinCostPolicy,
    PlacementOption,
    PlacementPolicy,
    Rejection,
    RoundRobinPolicy,
    make_policy,
)
from repro.broker.recovery import (
    RECOVERY_NAMES,
    GiveUp,
    Incident,
    MigratePolicy,
    RecoveryPolicy,
    Requeue,
    ResubmitPolicy,
    make_recovery,
)
from repro.broker.report import (
    BrokerPlacement,
    BrokerPreemption,
    BrokerRejection,
    BrokerReport,
    GridFaultEvent,
    PolicyRun,
    TerminalFailure,
    load_report,
)

__all__ = [
    "ActualRun",
    "BrokerJob",
    "BrokerPlacement",
    "BrokerPreemption",
    "BrokerRejection",
    "BrokerReport",
    "BrokerWorkloadDoc",
    "CorrectionFactor",
    "DeadlineAwarePolicy",
    "Event",
    "EventKind",
    "EventQueue",
    "GiveUp",
    "GridBroker",
    "GridFaultEvent",
    "GridLedger",
    "Incident",
    "MigratePolicy",
    "MinCompletionPolicy",
    "MinCostPolicy",
    "NodeWindow",
    "OnlineCalibrator",
    "OutageRecord",
    "POLICY_NAMES",
    "PlacementOption",
    "PlacementPolicy",
    "PolicyRun",
    "RECOVERY_NAMES",
    "RecoveryPolicy",
    "Rejection",
    "Requeue",
    "ResubmitPolicy",
    "RoundRobinPolicy",
    "SitePool",
    "TerminalFailure",
    "load_report",
    "load_workload_document",
    "make_policy",
    "make_recovery",
    "parse_workload_document",
    "sorted_jobs",
]
