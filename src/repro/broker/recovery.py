"""Recovery policies: what the broker does with a preempted job.

When a grid fault (site outage, node-pool shrink, transient job
failure) tears a running placement down, the broker asks its recovery
policy for a :class:`RecoveryDecision`.  Both built-in policies share
the bounded :class:`~repro.faults.retry.BrokerRetryPolicy` budget — a
job whose attempts are exhausted is *terminally failed* and classified
as such in the report — and differ in what survives the preemption:

- :class:`ResubmitPolicy` (``resubmit``) — resubmit-elsewhere: the job
  re-enters the wait queue after the backoff delay and re-runs resource
  selection from scratch against the surviving sites.  All work of the
  torn-down attempt is wasted.
- :class:`MigratePolicy` (``migrate``) — checkpoint-aware migration:
  the passes completed before the preemption survive as reduction-object
  checkpoints, so the next attempt re-runs only the unfinished passes
  and is charged a recovery overhead :math:`T_{recover}` (checkpoint
  restore + data re-staging) estimated through the
  :class:`~repro.core.degraded.DegradedModePredictor`.

Policies are pure decision functions over an :class:`Incident`; the
engine owns all ledger and queue mutation (REP008).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Union

from repro.broker.jobs import BrokerJob
from repro.faults.retry import DEFAULT_BROKER_RETRY_POLICY, BrokerRetryPolicy
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "Incident",
    "Requeue",
    "GiveUp",
    "RecoveryDecision",
    "RecoveryPolicy",
    "ResubmitPolicy",
    "MigratePolicy",
    "RECOVERY_NAMES",
    "make_recovery",
]


@dataclass(frozen=True, slots=True)
class Incident:
    """One torn-down execution attempt, as the recovery policy sees it.

    ``checkpoint_fraction`` is the share of the job's passes whose
    reduction objects were checkpointed before the preemption (quantized
    to pass boundaries by the engine); ``done_before`` is the share
    already carried into the attempt by earlier migrations.
    """

    job: BrokerJob
    cause: str
    time: float
    failed_attempts: int
    done_before: float = 0.0
    checkpoint_fraction: float = 0.0


@dataclass(frozen=True, slots=True)
class Requeue:
    """Re-place the job: eligible again at ``at`` with ``progress`` kept.

    ``charge_recovery`` asks the engine to add the candidate-specific
    :math:`T_{recover}` estimate to the next attempt's execution time.
    """

    at: float
    progress: float = 0.0
    charge_recovery: bool = False


@dataclass(frozen=True, slots=True)
class GiveUp:
    """Stop retrying: the job is terminally failed with this code."""

    code: str
    reason: str


RecoveryDecision = Union[Requeue, GiveUp]


class RecoveryPolicy(abc.ABC):
    """Common interface; instances are stateless across jobs."""

    #: CLI/report name.
    name: str = "recovery"

    def __init__(
        self, retry: BrokerRetryPolicy = DEFAULT_BROKER_RETRY_POLICY
    ) -> None:
        self.retry = retry

    def plan(self, incident: Incident) -> RecoveryDecision:
        """Decide what happens to the job of one incident."""
        if not self.retry.allows_retry(incident.failed_attempts):
            return GiveUp(
                code="retry-budget-exhausted",
                reason=(
                    f"{incident.failed_attempts} attempt(s) torn down "
                    f"(last: {incident.cause}); the "
                    f"{self.retry.max_attempts}-attempt budget is spent"
                ),
            )
        delay = self.retry.requeue_delay_s(incident.failed_attempts)
        return self._requeue(incident, incident.time + delay)

    @abc.abstractmethod
    def _requeue(self, incident: Incident, at: float) -> Requeue:
        """Build the policy-specific requeue decision."""


class ResubmitPolicy(RecoveryPolicy):
    """Resubmit-elsewhere: fresh start on whatever sites survive."""

    name = "resubmit"

    def _requeue(self, incident: Incident, at: float) -> Requeue:
        return Requeue(at=at, progress=0.0, charge_recovery=False)


class MigratePolicy(RecoveryPolicy):
    """Checkpoint-aware migration: completed passes survive, T_recover
    is charged on the resumed attempt."""

    name = "migrate"

    def _requeue(self, incident: Incident, at: float) -> Requeue:
        progress = max(incident.checkpoint_fraction, 0.0)
        return Requeue(at=at, progress=progress, charge_recovery=progress > 0)


#: Names accepted by the CLI, in canonical order.
RECOVERY_NAMES = ("resubmit", "migrate")


def make_recovery(
    name: str, retry: Optional[BrokerRetryPolicy] = None
) -> RecoveryPolicy:
    """A fresh recovery policy instance by CLI name."""
    retry = retry if retry is not None else DEFAULT_BROKER_RETRY_POLICY
    if name == "resubmit":
        return ResubmitPolicy(retry)
    if name == "migrate":
        return MigratePolicy(retry)
    raise ConfigurationError(
        f"unknown recovery policy '{name}'; known: {', '.join(RECOVERY_NAMES)}"
    )
