"""Synthetic silicon lattices with seeded defects.

Substitute for the molecular-dynamics Si-lattice snapshots of the paper's
defect-detection application (Section 4.5): a regular (nz, ny, nx) site
grid where each site carries a displacement magnitude (thermal noise around
zero) and a species code (0 = Si, 1 = dopant).  Defects are stamped from a
small template library — point vacancies, di-vacancies (including one that
spans two z-layers, so defects genuinely straddle chunk boundaries), line
and cluster structures, and dopant substitutions.

Defect count scales with lattice volume, which makes the defect-detection
reduction object *linear* in dataset size, as the paper's classification
requires.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.middleware.dataset import Dataset
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "DEFECT_TEMPLATES",
    "generate_lattice",
    "LatticeDataset",
    "make_lattice_dataset",
]

#: Displacement threshold separating defective from thermal sites.  Thermal
#: noise is sigma = 0.02; stamped anomalies are >= 0.5, so detection is
#: exact and deterministic.
DETECTION_THRESHOLD = 0.3

#: Template name -> list of (dz, dy, dx, species) cells.
DEFECT_TEMPLATES: Dict[str, List[Tuple[int, int, int, int]]] = {
    "vacancy": [(0, 0, 0, 0)],
    "di-vacancy": [(0, 0, 0, 0), (0, 0, 1, 0)],
    "di-vacancy-z": [(0, 0, 0, 0), (1, 0, 0, 0)],
    "tri-line": [(0, 0, 0, 0), (0, 0, 1, 0), (0, 0, 2, 0)],
    "l-cluster": [(0, 0, 0, 0), (0, 1, 0, 0), (0, 1, 1, 0)],
    "quad": [(0, 0, 0, 0), (0, 0, 1, 0), (0, 1, 0, 0), (0, 1, 1, 0)],
    "dopant": [(0, 0, 0, 1)],
    "dopant-pair": [(0, 0, 0, 1), (0, 0, 1, 1)],
}


def template_signature(
    cells: List[Tuple[int, int, int, int]],
) -> Tuple[Tuple[int, int, int, int], ...]:
    """Canonical (translation-invariant) signature of a defect shape."""
    if not cells:
        raise ConfigurationError("a defect must occupy at least one cell")
    z0 = min(c[0] for c in cells)
    y0 = min(c[1] for c in cells)
    x0 = min(c[2] for c in cells)
    return tuple(
        sorted((z - z0, y - y0, x - x0, s) for z, y, x, s in cells)
    )


def generate_lattice(
    nz: int,
    ny: int,
    nx: int,
    num_defects: int,
    seed: int = 0,
    thermal_sigma: float = 0.02,
) -> Tuple[np.ndarray, np.ndarray, List[Dict[str, Any]]]:
    """A lattice with ``num_defects`` stamped defect structures.

    Returns ``(displacement, species, truth)``; ``truth`` records each
    planted defect's template name, anchor cell and signature.  Defects are
    separated by at least two sites (Chebyshev) so connected-component
    detection recovers exactly the planted structures.
    """
    if min(nz, ny, nx) < 4:
        raise ConfigurationError("lattice must be at least 4 sites on a side")
    if num_defects < 0:
        raise ConfigurationError("defect count must be >= 0")
    rng = np.random.default_rng(seed)

    displacement = np.abs(
        rng.normal(0.0, thermal_sigma, size=(nz, ny, nx))
    ).astype(np.float32)
    species = np.zeros((nz, ny, nx), dtype=np.int8)

    names = sorted(DEFECT_TEMPLATES)
    occupied = np.zeros((nz, ny, nx), dtype=bool)
    truth: List[Dict[str, Any]] = []
    attempts = 0
    while len(truth) < num_defects:
        attempts += 1
        if attempts > 500 * max(num_defects, 1):
            raise ConfigurationError(
                f"cannot place {num_defects} separated defects in a "
                f"{nz}x{ny}x{nx} lattice"
            )
        name = names[int(rng.integers(len(names)))]
        cells = DEFECT_TEMPLATES[name]
        extent_z = max(c[0] for c in cells)
        extent_y = max(c[1] for c in cells)
        extent_x = max(c[2] for c in cells)
        z = int(rng.integers(1, nz - extent_z - 1))
        y = int(rng.integers(1, ny - extent_y - 1))
        x = int(rng.integers(1, nx - extent_x - 1))

        # Keep a 2-site Chebyshev moat around every stamped cell.
        zone = occupied[
            max(z - 2, 0) : z + extent_z + 3,
            max(y - 2, 0) : y + extent_y + 3,
            max(x - 2, 0) : x + extent_x + 3,
        ]
        if zone.any():
            continue

        for dz, dy, dx, spec in cells:
            displacement[z + dz, y + dy, x + dx] = rng.uniform(0.5, 0.8)
            species[z + dz, y + dy, x + dx] = spec
            occupied[z + dz, y + dy, x + dx] = True
        truth.append(
            {
                "template": name,
                "anchor": (z, y, x),
                "signature": template_signature(cells),
            }
        )

    return displacement, species, truth


class LatticeDataset(Dataset):
    """A chunked lattice: z-slab chunks with one halo layer per side."""

    def __init__(
        self,
        name: str,
        displacement: np.ndarray,
        species: np.ndarray,
        num_chunks: int,
        nbytes: float | None = None,
        meta: Dict[str, Any] | None = None,
    ) -> None:
        displacement = np.asarray(displacement)
        species = np.asarray(species)
        if displacement.shape != species.shape or displacement.ndim != 3:
            raise ConfigurationError(
                "displacement and species must be 3-D arrays of equal shape"
            )
        nz = displacement.shape[0]
        if nz < num_chunks:
            raise ConfigurationError(
                f"cannot split {nz} layers into {num_chunks} chunks"
            )
        super().__init__(
            name=name,
            nbytes=(
                float(displacement.nbytes + species.nbytes)
                if nbytes is None
                else float(nbytes)
            ),
            num_chunks=num_chunks,
            meta=meta,
        )
        self.displacement = displacement
        self.species = species
        edges = np.linspace(0, nz, num_chunks + 1).astype(int)
        self._bounds = list(zip(edges[:-1], edges[1:]))

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Lattice dimensions ``(nz, ny, nx)``."""
        return self.displacement.shape  # type: ignore[return-value]

    def chunk_payload(self, index: int) -> Dict[str, Any]:
        """Slab ``index`` with halo layers and placement metadata."""
        self._check_index(index)
        lo, hi = self._bounds[index]
        halo_lo = 1 if lo > 0 else 0
        halo_hi = 1 if hi < self.displacement.shape[0] else 0
        sl = slice(lo - halo_lo, hi + halo_hi)
        return {
            "block": index,
            "z0": lo,
            "halo_lo": halo_lo,
            "halo_hi": halo_hi,
            "displacement": self.displacement[sl],
            "species": self.species[sl],
        }

    def chunk_nbytes(self, index: int) -> float:
        """Model bytes of the slab, proportional to its interior layers."""
        self._check_index(index)
        lo, hi = self._bounds[index]
        return self.nbytes * (hi - lo) / self.displacement.shape[0]


def make_lattice_dataset(
    name: str,
    nz: int,
    ny: int,
    nx: int,
    num_chunks: int,
    num_defects: int | None = None,
    nbytes: float | None = None,
    seed: int = 0,
) -> LatticeDataset:
    """Generate a defective lattice and wrap it as a chunked dataset.

    When ``num_defects`` is omitted it scales with lattice volume (one
    defect per ~1200 sites), keeping defect density constant across dataset
    sizes.
    """
    if num_defects is None:
        num_defects = max(4, (nz * ny * nx) // 1200)
    displacement, species, truth = generate_lattice(
        nz, ny, nx, num_defects, seed=seed
    )
    return LatticeDataset(
        name=name,
        displacement=displacement,
        species=species,
        num_chunks=num_chunks,
        nbytes=nbytes,
        meta={
            "kind": "si-lattice",
            "nz": nz,
            "ny": ny,
            "nx": nx,
            "true_defects": truth,
            "detection_threshold": DETECTION_THRESHOLD,
            "seed": seed,
        },
    )
