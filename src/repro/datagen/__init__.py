"""Synthetic dataset generators.

The paper's evaluation used real datasets we cannot obtain (multi-GB point
data for the data-mining codes, CFD simulation output for vortex detection,
molecular-dynamics Si lattices for defect detection).  These generators
produce laptop-scale synthetic datasets with the same *statistical
structure* — which is all the prediction framework is sensitive to:

- :mod:`repro.datagen.points`  — Gaussian-mixture point clouds (k-means,
  EM) and labelled training sets (kNN).
- :mod:`repro.datagen.cfd`     — 2-D velocity fields with embedded
  Lamb-Oseen vortices over a background shear flow (vortex detection);
  vortex count scales with field area, giving the *linear* reduction-object
  size class.
- :mod:`repro.datagen.lattice` — silicon-lattice site grids with seeded
  point/cluster defects (molecular defect detection); defect count scales
  with lattice volume.

Every generator is deterministic given a seed and returns ground truth for
correctness tests.
"""

from repro.datagen.cfd import FieldDataset, generate_velocity_field, make_field_dataset
from repro.datagen.lattice import (
    DEFECT_TEMPLATES,
    LatticeDataset,
    generate_lattice,
    make_lattice_dataset,
)
from repro.datagen.points import (
    make_blobs,
    make_labeled_points,
    make_point_dataset,
    make_training_dataset,
)
from repro.datagen.transactions import (
    generate_transactions,
    make_transaction_dataset,
)

__all__ = [
    "generate_transactions",
    "make_transaction_dataset",
    "FieldDataset",
    "generate_velocity_field",
    "make_field_dataset",
    "DEFECT_TEMPLATES",
    "LatticeDataset",
    "generate_lattice",
    "make_lattice_dataset",
    "make_blobs",
    "make_labeled_points",
    "make_point_dataset",
    "make_training_dataset",
]
