"""Synthetic market-basket transactions with planted frequent itemsets.

Support data for the apriori association-mining application (named in
Section 2.2 of the paper as a canonical generalized reduction).  Each
transaction is a multi-hot row over ``num_items`` items; planted patterns
(the ground-truth frequent itemsets) are embedded with controlled support
so the miner's output can be checked exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.middleware.dataset import ArrayDataset
from repro.simgrid.errors import ConfigurationError

__all__ = ["generate_transactions", "make_transaction_dataset"]


def generate_transactions(
    num_transactions: int,
    num_items: int,
    patterns: Sequence[Tuple[int, ...]],
    pattern_prob: float = 0.35,
    noise_items: float = 2.0,
    seed: int = 0,
) -> np.ndarray:
    """Multi-hot transaction matrix with embedded patterns.

    Each transaction independently includes every planted pattern with
    probability ``pattern_prob`` and on average ``noise_items`` random
    single items.  Returns a float32 matrix of shape
    ``(num_transactions, num_items)`` with entries in {0, 1}.
    """
    if num_transactions <= 0 or num_items <= 0:
        raise ConfigurationError("transaction counts must be positive")
    if not 0.0 <= pattern_prob <= 1.0:
        raise ConfigurationError("pattern probability must be in [0, 1]")
    for pattern in patterns:
        if not pattern:
            raise ConfigurationError("patterns must be non-empty")
        if max(pattern) >= num_items or min(pattern) < 0:
            raise ConfigurationError(
                f"pattern {pattern} references items outside 0..{num_items - 1}"
            )

    rng = np.random.default_rng(seed)
    data = np.zeros((num_transactions, num_items), dtype=np.float32)
    for pattern in patterns:
        include = rng.random(num_transactions) < pattern_prob
        for item in pattern:
            data[include, item] = 1.0
    # Sparse random noise.
    noise_prob = min(noise_items / num_items, 1.0)
    noise = rng.random((num_transactions, num_items)) < noise_prob
    data[noise] = 1.0
    return data


def default_patterns(num_items: int, seed: int = 0) -> List[Tuple[int, ...]]:
    """A small library of disjoint planted itemsets (sizes 2-4)."""
    rng = np.random.default_rng(seed + 0xA11)
    items = rng.permutation(num_items)
    patterns: List[Tuple[int, ...]] = []
    cursor = 0
    for size in (2, 3, 4, 2, 3):
        if cursor + size > num_items:
            break
        patterns.append(tuple(sorted(int(i) for i in items[cursor : cursor + size])))
        cursor += size
    return patterns


def make_transaction_dataset(
    name: str,
    num_transactions: int,
    num_items: int,
    num_chunks: int,
    nbytes: float | None = None,
    pattern_prob: float = 0.35,
    seed: int = 0,
) -> ArrayDataset:
    """A chunked transaction dataset with ground-truth patterns in meta."""
    patterns = default_patterns(num_items, seed=seed)
    records = generate_transactions(
        num_transactions,
        num_items,
        patterns,
        pattern_prob=pattern_prob,
        seed=seed,
    )
    meta: Dict[str, Any] = {
        "kind": "transactions",
        "num_items": num_items,
        "true_patterns": patterns,
        "pattern_prob": pattern_prob,
        "seed": seed,
    }
    return ArrayDataset(
        name=name,
        records=records,
        num_chunks=num_chunks,
        nbytes=nbytes,
        meta=meta,
    )
