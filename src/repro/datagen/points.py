"""Gaussian-mixture point clouds and labelled training sets.

These model the dense multi-dimensional point data the paper's data-mining
applications (k-means, EM clustering, kNN search) were evaluated on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.middleware.dataset import ArrayDataset
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "make_blobs",
    "make_labeled_points",
    "make_point_dataset",
    "make_training_dataset",
]


def make_blobs(
    num_points: int,
    num_dims: int,
    num_centers: int,
    spread: float = 0.6,
    box: float = 10.0,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Points drawn from an isotropic Gaussian mixture.

    Returns ``(points, centers, labels)`` with points float32 of shape
    ``(num_points, num_dims)``.
    """
    if num_points <= 0 or num_dims <= 0 or num_centers <= 0:
        raise ConfigurationError("blob parameters must be positive")
    if num_points < num_centers:
        raise ConfigurationError("need at least one point per center")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-box, box, size=(num_centers, num_dims))
    labels = rng.integers(0, num_centers, size=num_points)
    noise = rng.normal(0.0, spread, size=(num_points, num_dims))
    points = centers[labels] + noise
    return points.astype(np.float32), centers.astype(np.float64), labels


def make_labeled_points(
    num_points: int,
    num_dims: int,
    num_classes: int,
    spread: float = 0.6,
    box: float = 10.0,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Training samples for kNN: features plus a class label column.

    Returns ``(records, centers)`` where ``records`` has shape
    ``(num_points, num_dims + 1)`` with the label in the final column.
    """
    points, centers, labels = make_blobs(
        num_points, num_dims, num_classes, spread=spread, box=box, seed=seed
    )
    records = np.concatenate(
        [points, labels.astype(np.float32)[:, None]], axis=1
    )
    return records, centers


def make_point_dataset(
    name: str,
    num_points: int,
    num_dims: int,
    num_centers: int,
    num_chunks: int,
    nbytes: float | None = None,
    seed: int = 0,
) -> ArrayDataset:
    """An :class:`~repro.middleware.dataset.ArrayDataset` of mixture points.

    Ground truth (mixture centers) is stored in ``meta['true_centers']``.
    """
    points, centers, _labels = make_blobs(
        num_points, num_dims, num_centers, seed=seed
    )
    return ArrayDataset(
        name=name,
        records=points,
        num_chunks=num_chunks,
        nbytes=nbytes,
        meta={
            "kind": "points",
            "num_dims": num_dims,
            "num_centers": num_centers,
            "true_centers": centers,
            "init_sample": _init_sample(points, seed),
            "seed": seed,
        },
    )


def _init_sample(points: np.ndarray, seed: int, size: int = 256) -> np.ndarray:
    """A deterministic subsample used by clustering codes to seed centres.

    Mirrors common practice: the middleware hands applications a small
    sample of the data alongside its metadata so iterative algorithms can
    initialize from data rather than from an arbitrary box.
    """
    rng = np.random.default_rng(seed + 0x5EED)
    take = min(size, points.shape[0])
    index = rng.choice(points.shape[0], size=take, replace=False)
    return points[index].astype(np.float64)


def make_training_dataset(
    name: str,
    num_points: int,
    num_dims: int,
    num_classes: int,
    num_chunks: int,
    nbytes: float | None = None,
    seed: int = 0,
) -> ArrayDataset:
    """A labelled training set for kNN search (label in the last column)."""
    records, centers = make_labeled_points(
        num_points, num_dims, num_classes, seed=seed
    )
    return ArrayDataset(
        name=name,
        records=records,
        num_chunks=num_chunks,
        nbytes=nbytes,
        meta={
            "kind": "labeled-points",
            "num_dims": num_dims,
            "num_classes": num_classes,
            "true_centers": centers,
            "init_sample": _init_sample(records[:, :num_dims], seed),
            "seed": seed,
        },
    )
