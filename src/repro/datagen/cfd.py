"""Synthetic CFD velocity fields with embedded vortices.

Substitute for the paper's CFD simulation output (the EVITA terascale
datasets of Machiraju et al.): a 2-D velocity field composed of a background
shear flow plus superposed Lamb-Oseen vortices.  Vortex count scales with
field area, so the vortex-detection application's reduction object (its
feature list) grows linearly with dataset size — the behaviour that puts it
in the paper's *linear object size* class.

Chunks are horizontal row blocks with a one-row halo on each side: the
"special approach to partitioning data between nodes (overlapping data
instances from neighboring partitions)" of Section 4.4, which lets the
detection phase run without communication.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.middleware.dataset import Dataset
from repro.simgrid.errors import ConfigurationError

__all__ = ["generate_velocity_field", "FieldDataset", "make_field_dataset"]

#: Bytes per grid cell in the stored field (u, v as float32).
BYTES_PER_CELL = 8.0


def generate_velocity_field(
    ny: int,
    nx: int,
    num_vortices: int,
    seed: int = 0,
    core_radius: float = 4.0,
    circulation: float = 60.0,
    shear: float = 0.08,
) -> Tuple[np.ndarray, np.ndarray, List[Dict[str, Any]]]:
    """A velocity field ``(u, v)`` with ``num_vortices`` embedded vortices.

    Vortex centres are placed on a jittered grid with a minimum separation
    of four core radii so each vortex produces one connected high-vorticity
    region.  Returns ``(u, v, truth)`` where ``truth`` lists the planted
    vortices (``cy``, ``cx``, ``sign``, ``core_radius``).
    """
    if ny < 8 or nx < 8:
        raise ConfigurationError("field must be at least 8x8")
    if num_vortices < 0:
        raise ConfigurationError("vortex count must be >= 0")
    rng = np.random.default_rng(seed)

    yy, xx = np.meshgrid(
        np.arange(ny, dtype=np.float64),
        np.arange(nx, dtype=np.float64),
        indexing="ij",
    )
    u = 1.0 + shear * (yy / max(ny - 1, 1) - 0.5)
    v = np.zeros_like(u)

    # Candidate centres on a jittered grid, margin away from the edges.
    margin = 3.0 * core_radius
    min_sep = 4.0 * core_radius
    centres: List[Tuple[float, float]] = []
    attempts = 0
    while len(centres) < num_vortices:
        attempts += 1
        if attempts > 200 * max(num_vortices, 1):
            raise ConfigurationError(
                f"cannot place {num_vortices} vortices with separation "
                f"{min_sep:.1f} in a {ny}x{nx} field"
            )
        cy = rng.uniform(margin, ny - 1 - margin)
        cx = rng.uniform(margin, nx - 1 - margin)
        if all((cy - py) ** 2 + (cx - px) ** 2 >= min_sep**2 for py, px in centres):
            centres.append((cy, cx))

    truth: List[Dict[str, Any]] = []
    for cy, cx in centres:
        sign = 1.0 if rng.random() < 0.5 else -1.0
        gamma = sign * circulation * rng.uniform(0.8, 1.2)
        dy = yy - cy
        dx = xx - cx
        r2 = dy**2 + dx**2
        r2 = np.maximum(r2, 1e-9)
        # Lamb-Oseen tangential speed divided by r, applied via the
        # perpendicular displacement components.
        swirl = gamma / (2.0 * np.pi * r2) * (1.0 - np.exp(-r2 / core_radius**2))
        u += -swirl * dy
        v += swirl * dx
        truth.append(
            {
                "cy": float(cy),
                "cx": float(cx),
                "sign": float(sign),
                "core_radius": float(core_radius),
                "circulation": float(gamma),
            }
        )

    return u.astype(np.float32), v.astype(np.float32), truth


class FieldDataset(Dataset):
    """A chunked 2-D velocity field.

    Chunks are contiguous row blocks.  Each payload carries one halo row on
    each side (where available) so per-chunk finite differences match the
    global field exactly — detection then needs no inter-node
    communication, as in the paper's parallelization.
    """

    def __init__(
        self,
        name: str,
        u: np.ndarray,
        v: np.ndarray,
        num_chunks: int,
        nbytes: float | None = None,
        meta: Dict[str, Any] | None = None,
    ) -> None:
        u = np.asarray(u)
        v = np.asarray(v)
        if u.shape != v.shape or u.ndim != 2:
            raise ConfigurationError("u and v must be 2-D arrays of equal shape")
        ny = u.shape[0]
        if ny < num_chunks:
            raise ConfigurationError(
                f"cannot split {ny} rows into {num_chunks} chunks"
            )
        super().__init__(
            name=name,
            nbytes=float(u.nbytes + v.nbytes) if nbytes is None else float(nbytes),
            num_chunks=num_chunks,
            meta=meta,
        )
        self.u = u
        self.v = v
        edges = np.linspace(0, ny, num_chunks + 1).astype(int)
        self._bounds = list(zip(edges[:-1], edges[1:]))

    @property
    def shape(self) -> Tuple[int, int]:
        """Field dimensions ``(ny, nx)``."""
        return self.u.shape  # type: ignore[return-value]

    def chunk_payload(self, index: int) -> Dict[str, Any]:
        """Row block ``index`` with halo rows and placement metadata."""
        self._check_index(index)
        lo, hi = self._bounds[index]
        halo_lo = 1 if lo > 0 else 0
        halo_hi = 1 if hi < self.u.shape[0] else 0
        sl = slice(lo - halo_lo, hi + halo_hi)
        return {
            "block": index,
            "y0": lo,
            "halo_lo": halo_lo,
            "halo_hi": halo_hi,
            "u": self.u[sl],
            "v": self.v[sl],
        }

    def chunk_nbytes(self, index: int) -> float:
        """Model bytes of the block, proportional to its interior rows."""
        self._check_index(index)
        lo, hi = self._bounds[index]
        return self.nbytes * (hi - lo) / self.u.shape[0]


def make_field_dataset(
    name: str,
    ny: int,
    nx: int,
    num_chunks: int,
    num_vortices: int | None = None,
    nbytes: float | None = None,
    seed: int = 0,
) -> FieldDataset:
    """Generate a velocity field and wrap it as a chunked dataset.

    When ``num_vortices`` is omitted it scales with field area (one vortex
    per ~4000 cells), keeping feature density constant across dataset sizes.
    """
    if num_vortices is None:
        num_vortices = max(3, (ny * nx) // 4000)
    u, v, truth = generate_velocity_field(ny, nx, num_vortices, seed=seed)
    return FieldDataset(
        name=name,
        u=u,
        v=v,
        num_chunks=num_chunks,
        nbytes=nbytes,
        meta={
            "kind": "cfd-field",
            "ny": ny,
            "nx": nx,
            "true_vortices": truth,
            "seed": seed,
        },
    )
