"""The declared hot set: ``@hot`` marks a performance-contract entry.

The performance-contract layer (``repro.lint.perf``, DESIGN.md §18)
needs one ground truth both its halves can key on: *which functions the
project claims are hot*.  The static analyzer reads the claim from the
decorator syntactically (it resolves ``@hot`` through the import table,
so aliasing does not hide a declaration) and gates REP301-REP304 on the
call-graph closure of the declared set; the ``repro profile`` harness
reads the same claim from this runtime registry and cross-validates it
against a measured call profile in both directions — an undeclared
function dominating the profile is a REP305 finding, a declared entry
the pinned workload never reaches is an agreement failure.

``hot`` is an identity decorator: it records the function's qualified
name and returns the function object unchanged, so decorated functions
stay picklable (the process-pool campaign executor submits some of
them) and pay zero per-call overhead — a hot-path registry that slowed
the hot path down would be its own finding.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, TypeVar

__all__ = ["hot", "declared_hot", "is_declared_hot", "HOT_DECORATOR"]

#: Canonical qualname the static analyzer matches decorators against.
HOT_DECORATOR = "repro.hotpath.hot"

_REGISTRY: set = set()

_F = TypeVar("_F", bound=Callable)


def hot(func: _F) -> _F:
    """Declare ``func`` a hot-path entry; returns ``func`` unchanged."""
    _REGISTRY.add(f"{func.__module__}.{func.__qualname__}")
    return func


def declared_hot() -> FrozenSet[str]:
    """Qualified names registered so far (import-order independent)."""
    return frozenset(_REGISTRY)


def is_declared_hot(qualname: str) -> bool:
    """Whether ``qualname`` has been registered via :func:`hot`."""
    return qualname in _REGISTRY
