"""Baseline files: suppressed-but-tracked pre-existing violations.

A baseline is a durable canonical-JSON document mapping finding
identities — ``(code, path, snippet)``, deliberately line-number-free —
to occurrence counts.  Linting against a baseline partitions findings
into:

- **new**: occurrences beyond the baselined count (these fail the run),
- **suppressed**: occurrences the baseline covers, and
- **stale** baseline entries whose violations have since been fixed
  (reported so the baseline can be shrunk; it should only ever shrink).

Counting by identity rather than exact line means moving a violating
line does not produce a "new" finding, while editing the line's text
does — the contract is re-reviewed whenever the code it covers changes.
"""

from __future__ import annotations

import dataclasses
import pathlib
from collections import Counter
from typing import Collection, Dict, List, Optional, Sequence, Tuple

from repro.core.durable import atomic_write_json, read_json_document
from repro.lint.errors import LintError
from repro.lint.findings import Finding

__all__ = ["BASELINE_FORMAT_VERSION", "Baseline", "BaselinePartition"]

BASELINE_FORMAT_VERSION = 1

Identity = Tuple[str, str, str]  # (code, path, snippet)


@dataclasses.dataclass(frozen=True)
class BaselinePartition:
    """The result of matching findings against a baseline."""

    new: Tuple[Finding, ...]
    suppressed: Tuple[Finding, ...]
    stale: Tuple[Tuple[Identity, int], ...]  # identity -> uncovered count


@dataclasses.dataclass
class Baseline:
    """Identity -> allowed occurrence count."""

    entries: Dict[Identity, int] = dataclasses.field(default_factory=dict)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries={})

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        counts = Counter(f.identity for f in findings)
        return cls(entries=dict(counts))

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Baseline":
        data = read_json_document(
            path,
            "lint baseline",
            expected_version=BASELINE_FORMAT_VERSION,
            remedy="regenerate it with 'repro lint --write-baseline'",
        )
        raw_entries = data.get("entries")
        if not isinstance(raw_entries, list):
            raise LintError(
                f"lint baseline '{path}' has no 'entries' list; "
                "regenerate it with 'repro lint --write-baseline'"
            )
        entries: Dict[Identity, int] = {}
        for raw in raw_entries:
            if not isinstance(raw, dict):
                raise LintError(
                    f"lint baseline '{path}' entry is not an object"
                )
            try:
                identity = (
                    str(raw["code"]),
                    str(raw["path"]),
                    str(raw["snippet"]),
                )
                count = int(raw["count"])
            except (KeyError, TypeError, ValueError) as exc:
                raise LintError(
                    f"lint baseline '{path}' entry missing "
                    "code/path/snippet/count"
                ) from exc
            if count < 1:
                raise LintError(
                    f"lint baseline '{path}' entry for {identity[0]} at "
                    f"{identity[1]} has non-positive count {count}"
                )
            entries[identity] = entries.get(identity, 0) + count
        return cls(entries=entries)

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        payload = {
            "format_version": BASELINE_FORMAT_VERSION,
            "tool": "repro.lint",
            "entries": [
                {
                    "code": code,
                    "path": rel,
                    "snippet": snippet,
                    "count": count,
                }
                for (code, rel, snippet), count in sorted(
                    self.entries.items()
                )
            ],
        }
        return atomic_write_json(path, payload)

    @property
    def total(self) -> int:
        return sum(self.entries.values())

    def count_for_code(self, code: str) -> int:
        """Baselined occurrences of one rule code (tests pin this)."""
        return sum(
            count
            for (entry_code, _, _), count in self.entries.items()
            if entry_code == code
        )

    def partition(
        self,
        findings: Sequence[Finding],
        *,
        scanned_paths: Optional[Collection[str]] = None,
    ) -> BaselinePartition:
        """Split findings into new vs suppressed; report stale entries.

        Within one identity group, the earliest occurrences (by line) are
        the suppressed ones — so when an extra duplicate of a baselined
        violation appears, exactly one finding is reported as new.

        A partial run (``--changed``) passes ``scanned_paths``: entries
        for files outside the scan were never given a chance to match,
        so staleness is only reported for files actually linted.
        """
        remaining = dict(self.entries)
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in sorted(findings, key=Finding.sort_key):
            credit = remaining.get(finding.identity, 0)
            if credit > 0:
                remaining[finding.identity] = credit - 1
                suppressed.append(finding)
            else:
                new.append(finding)
        stale = tuple(
            (identity, count)
            for identity, count in sorted(remaining.items())
            if count > 0
            and (scanned_paths is None or identity[1] in scanned_paths)
        )
        return BaselinePartition(
            new=tuple(new), suppressed=tuple(suppressed), stale=stale
        )
