"""repro.lint — AST-based checker for the repo's coding contracts.

The reproduction's guarantees (seeded byte-identical replay, crash-safe
resumable campaigns, fault recovery bit-identical to fault-free runs)
rest on coding contracts this package makes machine-checked:

========  =======================  ==========================================
code      name                     contract
========  =======================  ==========================================
REP001    no-wall-clock            no host-clock reads outside the watchdog
REP002    seeded-rng               every RNG constructed with an explicit seed
REP003    canonical-json           json.dump(s) passes sort_keys=True
REP004    durable-writes           persistence via repro.core.durable only
REP005    repro-errors             raise ReproError subclasses, not builtins
REP006    float-equality           no ==/!= against float literals
REP007    ordered-serialization    no raw set iteration in report/serialize
REP008    ledger-discipline        ledger mutation only in GridBroker's loop
========  =======================  ==========================================

Directory runs add the whole-program flow family (``repro.lint.flow``):

========  ==========================  =======================================
REP101    clock-taint-to-sink         no clock/env value reaches an artifact
REP102    rng-taint-to-sink           no unseeded draw reaches an artifact
REP103    cross-module-error-escape   public APIs don't leak callee builtins
REP104    dimensional-consistency     prediction-core unit coherence
========  ==========================  =======================================

``--effects`` adds the interprocedural effect-and-determinism family
(``repro.lint.effects``), which also emits the ``.repro-effects.json``
determinism certificate gating ``repro campaign --workers N``:

========  ==============================  ===================================
REP201    shared-state-write              no pool-reachable function writes
                                          shared module state
REP202    closure-over-pool-boundary      no closure capture crosses a
                                          process-pool submit
REP203    unordered-iteration-to-sink     no set-iteration order reaches a
                                          serialized artifact
REP204    mutable-default-or-aliased-ret  no mutable defaults / mutate-and-
                                          return aliasing
REP205    uncertified-pool-submit         only certified process-pool-safe
                                          functions are submitted
========  ==============================  ===================================

Run it as ``repro lint [PATHS]`` or ``python -m repro.lint``; see
DESIGN.md §13 for the full contract rationale and docs/lint-rules.md for
the rule table.
"""

from repro.lint.baseline import Baseline, BaselinePartition
from repro.lint.context import ModuleContext
from repro.lint.engine import (
    PARSE_ERROR_CODE,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.effects import (
    CERTIFICATE_NAME,
    EFFECT_CODES,
    EFFECT_RULES,
    analyze_effects,
    load_certificate,
    write_certificate,
)
from repro.lint.errors import LintError
from repro.lint.findings import Finding, Fix
from repro.lint.fixes import apply_fixes
from repro.lint.flow import FLOW_CODES, FLOW_RULES, FlowRule, analyze_paths
from repro.lint.registry import RULES, Rule, all_rules, register
from repro.lint.reporters import (
    REPORT_FORMATS,
    LintReport,
    render,
    render_github,
    render_json,
    render_text,
)

__all__ = [
    "Baseline",
    "BaselinePartition",
    "CERTIFICATE_NAME",
    "EFFECT_CODES",
    "EFFECT_RULES",
    "analyze_effects",
    "load_certificate",
    "write_certificate",
    "FLOW_CODES",
    "FLOW_RULES",
    "Finding",
    "Fix",
    "FlowRule",
    "analyze_paths",
    "LintError",
    "LintReport",
    "ModuleContext",
    "PARSE_ERROR_CODE",
    "REPORT_FORMATS",
    "RULES",
    "Rule",
    "all_rules",
    "apply_fixes",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "render",
    "render_github",
    "render_json",
    "render_text",
]
