"""Finding and Fix: the data the rule engine produces.

A :class:`Finding` is one contract violation at one source location.  Its
:attr:`~Finding.identity` deliberately excludes the line number — baselines
match on ``(code, path, snippet)`` so that unrelated edits that shift a
violation up or down the file do not invalidate the baseline, while any
edit that *touches the violating line itself* does.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

__all__ = ["Finding", "Fix"]


@dataclasses.dataclass(frozen=True)
class Fix:
    """A mechanical source replacement for an autofixable finding.

    Spans are in the parser's coordinates: 1-based lines, 0-based columns,
    end-exclusive — exactly what ``ast`` puts on nodes, so rules can copy
    ``lineno``/``col_offset``/``end_lineno``/``end_col_offset`` verbatim.
    """

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str


@dataclasses.dataclass(frozen=True)
class Finding:
    """One violation of one registered rule at one source location."""

    code: str  # stable rule code, e.g. "REP003"
    message: str  # one-line human explanation of this occurrence
    path: str  # POSIX path relative to the lint root
    line: int  # 1-based
    col: int  # 1-based (display convention; ast col_offset + 1)
    snippet: str  # the violating source line, stripped (baseline identity)
    fix: Optional[Fix] = None

    @property
    def fixable(self) -> bool:
        return self.fix is not None

    @property
    def identity(self) -> Tuple[str, str, str]:
        """What a baseline matches on: line-number-independent."""
        return (self.code, self.path, self.snippet)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "snippet": self.snippet,
            "fixable": self.fixable,
        }
