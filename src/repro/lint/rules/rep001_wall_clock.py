"""REP001: no wall-clock reads in model or simulation paths.

The entire reproduction is built on *simulated* time: the broker's
replay guarantee (byte-identical reports for the same seed) and the
fault-recovery guarantee (bit-identical to fault-free runs) both die the
moment a model path consults the host's clock.  Wall-clock time is a
harness concern, and the only sanctioned reader is the campaign
watchdog, which enforces real deadlines on real processes.

Bad::

    started = time.time()          # REP001

Good::

    now = engine.now               # simulated clock owned by the engine
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, dotted_name, register

WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    code = "REP001"
    name = "no-wall-clock"
    summary = "no wall-clock reads outside the watchdog allowlist"
    rationale = (
        "Model and simulation paths must depend only on simulated time; "
        "a host-clock read makes seeded replay non-deterministic."
    )
    node_types = (ast.Call,)
    # Sanctioned wall-clock readers: the watchdog (real deadlines on real
    # processes), the two harness drivers that report operator-facing
    # wall durations (campaign attempt timing, suite experiment timing),
    # and the service clock abstraction (MonotonicClock drives real HTTP
    # serving; simulated results only ever see VirtualClock).
    allowlist = (
        "campaign/watchdog.py",
        "campaign/runner.py",
        "campaign/parallel.py",
        "workloads/suite.py",
        "service/clock.py",
    )

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name in WALL_CLOCK_CALLS:
            yield self.finding(
                ctx,
                node,
                f"wall-clock read {name}() breaks seeded replay; use the "
                "simulated clock, or add this harness module to the "
                "REP001 allowlist",
            )
