"""REP009: no unbounded waits in service, broker, or campaign paths.

A long-running layer — the prediction service, the broker, the campaign
runner — must never block forever on an external party: every socket,
subprocess, queue, lock, and thread interaction needs an explicit
timeout, or one stuck peer wedges the whole process and the deadline
budgets above it become fiction.  This is the micro-level twin of the
service's bulkhead contract (a bounded queue refuses instead of waiting
unboundedly).

The rule flags, inside the scoped paths:

- ``subprocess.run/call/check_call/check_output`` without ``timeout=``;
- ``socket.create_connection(...)`` without a timeout argument, and
  ``.settimeout(None)`` (which *removes* a bound);
- blocking rendezvous calls with no arguments at all —
  ``.acquire()`` / ``.wait()`` / ``.join()`` / ``.get()`` /
  ``.communicate()`` — the no-timeout forms of locks, events, threads,
  queues, and processes.  (String ``.join(parts)`` and ``dict.get(key)``
  always carry arguments, so they never match.)

Bad::

    proc = subprocess.run(cmd)          # REP009: can hang forever
    queue.get()                         # REP009: unbounded block

Good::

    proc = subprocess.run(cmd, timeout=60.0)
    queue.get(timeout=5.0)
    sock = socket.create_connection(addr, timeout=10.0)
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, dotted_name, register

#: Paths this contract governs: the long-running layers.
SCOPE_FRAGMENTS = ("repro/service/", "repro/broker/", "repro/campaign/")

_SUBPROCESS_CALLS = frozenset(
    {
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

_SOCKET_FACTORIES = frozenset({"socket.create_connection"})

#: Methods whose zero-argument form blocks without bound.
_RENDEZVOUS_METHODS = frozenset(
    {"acquire", "wait", "join", "get", "communicate"}
)


def _has_timeout(node: ast.Call) -> bool:
    return any(kw.arg == "timeout" for kw in node.keywords)


@register
class UnboundedWaitRule(Rule):
    code = "REP009"
    name = "no-unbounded-waits"
    summary = (
        "service/broker/campaign code must bound every blocking call "
        "with a timeout"
    )
    rationale = (
        "A long-running layer that can block forever on a socket, "
        "subprocess, queue, or lock turns one stuck peer into a wedged "
        "process; deadline budgets only mean something if every wait "
        "under them is bounded."
    )
    node_types = (ast.Call,)
    scope = SCOPE_FRAGMENTS

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name in _SUBPROCESS_CALLS and not _has_timeout(node):
            yield self.finding(
                ctx,
                node,
                f"{name}(...) without timeout= can hang forever; pass an "
                "explicit timeout",
            )
            return
        if name in _SOCKET_FACTORIES:
            # create_connection(addr[, timeout]): bounded either way.
            if len(node.args) < 2 and not _has_timeout(node):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}(...) without a timeout blocks until the "
                    "peer answers; pass timeout=",
                )
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "settimeout":
            if len(node.args) == 1 and isinstance(
                node.args[0], ast.Constant
            ) and node.args[0].value is None:
                yield self.finding(
                    ctx,
                    node,
                    "settimeout(None) removes the socket's bound and "
                    "re-enables unbounded blocking",
                )
            return
        if (
            func.attr in _RENDEZVOUS_METHODS
            and not node.args
            and not node.keywords
        ):
            yield self.finding(
                ctx,
                node,
                f".{func.attr}() with no timeout blocks without bound; "
                "pass timeout= (or a bounded equivalent)",
            )
