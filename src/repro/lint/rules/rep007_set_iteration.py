"""REP007: no direct iteration over sets in serialization/report code.

Set iteration order depends on element hashes and insertion history; two
runs that compute the same *set* can serialize it in different orders,
breaking byte-identical reports and journal checksums.  In modules whose
job is producing persisted or displayed bytes (serializers, reporters,
journals, stores), every set must be ordered — ``sorted(...)`` — before
it is walked.

The rule is scoped to those modules by path fragment; a set iterated in
pure in-memory logic elsewhere is fine.

Bad (in a report/serialize module)::

    for site in {p.site for p in placements}:      # REP007
        emit(site)

Good::

    for site in sorted({p.site for p in placements}):
        emit(site)
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, dotted_name, register

SCOPE_FRAGMENTS = (
    "serialize",
    "report",
    "reporter",
    "journal",
    "store",
    "results_io",
)


@register
class SetIterationRule(Rule):
    code = "REP007"
    name = "ordered-serialization"
    summary = "serialization/report modules must not iterate raw sets"
    rationale = (
        "Set order is hash- and history-dependent; persisted or "
        "displayed bytes must come from a sorted sequence."
    )
    node_types = (ast.For, ast.comprehension)
    scope = SCOPE_FRAGMENTS

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        iters: List[ast.expr] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, ast.comprehension):
            iters.append(node.iter)
        for expr in iters:
            if _is_set_expression(expr):
                yield self.finding(
                    ctx,
                    # comprehension nodes carry no position; anchor on the
                    # iterated expression, which always does.
                    expr,
                    "iterating a set directly yields hash-dependent "
                    "order in serialized output; wrap it in sorted(...)",
                )


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if name in ("sorted",):
            return False
        # set arithmetic helpers commonly produce sets too
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return True
    return False
