"""REP008: ledger node acquisition only inside the broker event loop.

The broker's correctness claim — every admitted job placed exactly once,
per-node reservation windows never overlapping — holds because *all*
``SitePool.acquire`` / ``release`` calls happen inside ``GridBroker``'s
event loop (``broker/engine.py``), interleaved with the simulated-time
event queue.  A helper that grabs nodes from a ledger directly races the
simulated clock: it mutates capacity at no defined event time, and the
queue-head placement invariant (predicted completion = queue wait +
T̂_exec) silently stops holding.

The rule flags ``.acquire(...)`` / ``.release(...)`` calls whose
receiver expression mentions a ledger or pool, anywhere outside the
engine (and the ledger's own implementation module).

Bad (in a policy or report module)::

    ids = ledger.pool(site).acquire(n, now, eta)      # REP008

Good::

    # ask the engine to place the job; only GridBroker touches the ledger
    decision = policy.choose(job, feasible, now)
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, register

_MUTATORS = frozenset({"acquire", "release"})
_RECEIVER_MARKERS = ("ledger", "pool")


@register
class LedgerDisciplineRule(Rule):
    code = "REP008"
    name = "ledger-discipline"
    summary = "ledger/pool acquire/release only inside GridBroker's loop"
    rationale = (
        "Node capacity may only change at event-queue time inside the "
        "broker engine; outside mutation races the simulated clock."
    )
    node_types = (ast.Call,)
    allowlist = ("broker/engine.py", "broker/events.py")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _MUTATORS:
            return
        receiver = ctx.segment(func.value) or ""
        lowered = receiver.lower()
        if any(marker in lowered for marker in _RECEIVER_MARKERS):
            yield self.finding(
                ctx,
                node,
                f".{func.attr}() on a grid ledger/pool outside the "
                "broker engine mutates capacity at no defined simulated "
                "time; route placement through GridBroker's event loop",
            )
