"""REP003: JSON rendered outside the durable layer must sort its keys.

Journal records are checksummed, reports are compared byte-for-byte
across replays, and profiles round-trip through disk.  The durable layer
(:mod:`repro.core.durable`) owns the one canonical serialization; any
*other* ``json.dump(s)`` call must at minimum pass ``sort_keys=True`` so
its output does not depend on dict construction order.

The rule is autofixable when ``sort_keys`` is simply absent: ``--fix``
appends ``sort_keys=True`` to the call.  An explicit ``sort_keys=False``
(or a non-literal value) is reported but never rewritten — that is a
deliberate choice the author must undo by hand.

Bad::

    json.dumps(payload)                     # REP003 (autofixable)
    json.dump(payload, fh, sort_keys=False)  # REP003 (manual)

Good::

    json.dumps(payload, sort_keys=True)
    atomic_write_json(path, payload)        # the durable layer
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.findings import Finding, Fix
from repro.lint.registry import ModuleContext, Rule, dotted_name, register


@register
class CanonicalJsonRule(Rule):
    code = "REP003"
    name = "canonical-json"
    summary = "json.dump(s) outside repro.core.durable needs sort_keys=True"
    rationale = (
        "Byte-identical replay and journal checksums require one "
        "canonical JSON form; unsorted keys leak dict construction "
        "order into persisted bytes."
    )
    fixable = True
    node_types = (ast.Call,)
    allowlist = ("core/durable.py",)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name not in ("json.dump", "json.dumps"):
            return
        sort_kw = None
        has_star_kwargs = False
        for kw in node.keywords:
            if kw.arg is None:
                has_star_kwargs = True
            elif kw.arg == "sort_keys":
                sort_kw = kw
        if sort_kw is None:
            if has_star_kwargs:
                # **kwargs may carry sort_keys; require it to be literal.
                yield self.finding(
                    ctx,
                    node,
                    f"{name}(**...) hides sort_keys; pass sort_keys=True "
                    "explicitly or route through repro.core.durable",
                )
                return
            yield self.finding(
                ctx,
                node,
                f"{name}() without sort_keys=True is not canonical JSON; "
                "add sort_keys=True or route through repro.core.durable",
                fix=_append_sort_keys_fix(ctx, node),
            )
            return
        value = sort_kw.value
        if not (isinstance(value, ast.Constant) and value.value is True):
            yield self.finding(
                ctx,
                node,
                f"{name}() must pass a literal sort_keys=True "
                "(found a non-True value); persisted JSON must be "
                "canonical",
            )


def _append_sort_keys_fix(
    ctx: ModuleContext, node: ast.Call
) -> Optional[Fix]:
    """Rewrite the call with ``sort_keys=True`` appended to its arguments."""
    segment = ctx.segment(node)
    if segment is None or not segment.endswith(")"):
        return None
    body = segment[:-1].rstrip()
    if body.endswith("("):
        rewritten = f"{body}sort_keys=True)"
    elif body.endswith(","):
        rewritten = f"{body} sort_keys=True)"
    else:
        rewritten = f"{body}, sort_keys=True)"
    return Fix(
        start_line=node.lineno,
        start_col=node.col_offset,
        end_line=node.end_lineno or node.lineno,
        end_col=node.end_col_offset or node.col_offset,
        replacement=rewritten,
    )
