"""REP004: persistence must route through the atomic durable layer.

A crash mid-``write()`` leaves a truncated journal, profile, or report
on disk — exactly the corruption class PR 2's campaign engine exists to
rule out.  :mod:`repro.core.durable` is the single sanctioned writer: it
stages to a same-directory temp file, fsyncs, renames, and fsyncs the
directory.  Everything else in the library must call it rather than
reimplement (or skip) those steps.

The rule flags write/append/create-mode ``open(...)`` calls and
``.write_text(...)`` / ``.write_bytes(...)`` attribute calls.  Read-mode
opens are untouched.

Bad::

    with open(path, "w") as fh:        # REP004
        fh.write(text)
    path.write_text(doc)               # REP004

Good::

    from repro.core.durable import atomic_write_text
    atomic_write_text(path, text)
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, dotted_name, register

_WRITE_MODE_CHARS = frozenset("wax+")
_WRITE_ATTRS = frozenset({"write_text", "write_bytes"})


@register
class DurableWritesRule(Rule):
    code = "REP004"
    name = "durable-writes"
    summary = "file writes must go through repro.core.durable"
    rationale = (
        "Raw writes can be torn by a crash; the durable layer's "
        "temp+fsync+rename sequence is what makes journals and stores "
        "crash-safe."
    )
    node_types = (ast.Call,)
    allowlist = ("core/durable.py",)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name == "open":
            mode = _open_mode(node)
            if mode is not None and _WRITE_MODE_CHARS.intersection(mode):
                yield self.finding(
                    ctx,
                    node,
                    f"raw open(..., {mode!r}) is not crash-safe; use "
                    "repro.core.durable.atomic_write_text/_json",
                )
            return
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _WRITE_ATTRS:
                yield self.finding(
                    ctx,
                    node,
                    f".{node.func.attr}() is not crash-safe; use "
                    "repro.core.durable.atomic_write_text/_json",
                )


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of an open() call, None when read/unknown."""
    mode_node: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    else:
        for kw in node.keywords:
            if kw.arg == "mode":
                mode_node = kw.value
    if mode_node is None:
        return None  # default mode "r"
    if isinstance(mode_node, ast.Constant) and isinstance(
        mode_node.value, str
    ):
        return mode_node.value
    return None  # dynamic mode: give the author the benefit of the doubt
