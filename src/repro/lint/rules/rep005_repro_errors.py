"""REP005: library errors come from the ReproError hierarchy.

Callers embedding the framework catch :class:`repro.errors.ReproError`
once (the CLI does exactly this to turn failures into exit code 1).  A
bare ``raise ValueError(...)`` in library code escapes that contract:
it crashes embedders with a traceback instead of a classified error,
and it cannot carry the remedy text the durable layer's errors do.

``NotImplementedError`` is exempt — it is Python's idiom for abstract
interface methods (e.g. ``api.merge_local``) and signals a missing
override, not a runtime failure.  Bare re-raises (``raise``) are exempt
too.

Bad::

    raise ValueError("jobs need a non-empty id")      # REP005
    raise RuntimeError                                # REP005

Good::

    raise ConfigurationError("jobs need a non-empty id")
    raise NotImplementedError("subclasses override")  # abstract method
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, dotted_name, register

BUILTIN_EXCEPTIONS = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "MemoryError",
        "NameError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopAsyncIteration",
        "StopIteration",
        "SystemError",
        "TypeError",
        "UnicodeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


@register
class ReproErrorsRule(Rule):
    code = "REP005"
    name = "repro-errors"
    summary = "raise ReproError subclasses, not bare builtin exceptions"
    rationale = (
        "Embedders catch ReproError once; a builtin raise escapes the "
        "error model and loses the classified remedy text."
    )
    node_types = (ast.Raise,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Raise)
        exc = node.exc
        if exc is None:  # bare re-raise inside an except block
            return
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = dotted_name(target)
        if name in BUILTIN_EXCEPTIONS:
            yield self.finding(
                ctx,
                node,
                f"raise of builtin {name} escapes the ReproError "
                "hierarchy; use (or add) a ReproError subclass in "
                "repro/errors.py or the owning branch module",
            )
