"""Built-in contract rules; importing this package registers all of them."""

from repro.lint.rules import (  # noqa: F401
    rep001_wall_clock,
    rep002_seeded_rng,
    rep003_canonical_json,
    rep004_durable_writes,
    rep005_repro_errors,
    rep006_float_equality,
    rep007_set_iteration,
    rep008_ledger_discipline,
    rep009_unbounded_waits,
)
