"""REP002: every random source must be explicitly seeded.

Reproducibility is the repo's product: the fault injector replays crash
schedules from a seed, the Poisson job-stream generator draws in a fixed
order from a seed, and dataset generators are seeded per dataset.  An
unseeded ``random.Random()``, the process-global ``random.*`` functions,
or an unseeded ``numpy`` generator silently couples results to
interpreter start-up state.

Bad::

    rng = random.Random()                  # REP002: no seed
    random.shuffle(items)                  # REP002: global RNG
    rng = np.random.default_rng()          # REP002: no seed
    np.random.seed(7); np.random.rand()    # REP002: legacy global state

Good::

    rng = random.Random(f"{seed}:transient:{pass_index}")
    rng = np.random.default_rng(spec.seed)
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, dotted_name, register

# The module-global random functions that mutate/read the shared state.
GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

LEGACY_NUMPY_FNS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "poisson",
        "exponential",
        "binomial",
    }
)


@register
class SeededRngRule(Rule):
    code = "REP002"
    name = "seeded-rng"
    summary = "RNGs must be constructed with an explicit seed"
    rationale = (
        "Unseeded or process-global randomness couples results to "
        "interpreter start-up state, breaking byte-identical replay."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name in ("random.Random", "random.SystemRandom"):
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() without an explicit seed is "
                    "non-reproducible; pass a seed derived from the run's "
                    "seed material",
                )
            return
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] in GLOBAL_RANDOM_FNS:
                yield self.finding(
                    ctx,
                    node,
                    f"module-global {name}() uses shared interpreter RNG "
                    "state; construct a seeded random.Random instead",
                )
            return
        if name in ("np.random.default_rng", "numpy.random.default_rng"):
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() without a seed draws OS entropy; pass "
                    "the run's seed explicitly",
                )
            return
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] in LEGACY_NUMPY_FNS
        ):
            yield self.finding(
                ctx,
                node,
                f"legacy global {name}() mutates shared numpy RNG state; "
                "use a seeded np.random.default_rng(seed) generator",
            )
