"""REP006: no ``==`` / ``!=`` against float literals in model math.

The prediction model is float arithmetic end to end (``T_exec = T_disk +
T_network + T_compute``); comparing a computed time, bandwidth, or
calibration factor to a float literal with ``==`` is a latent
determinism bug — it silently flips with re-association or an extra
model term, and then a "calibrated" branch fires on one platform and
not another.

Integer-literal comparisons (``if retries == 0``) are untouched; the
rule only fires when a comparand is a *float* literal.

Bad::

    if t_network == 0.0:            # REP006
        skip_transfer()

Good::

    if t_network <= EPS:
        skip_transfer()
    if math.isclose(factor, 1.0, rel_tol=1e-9):
        ...
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, register


@register
class FloatEqualityRule(Rule):
    code = "REP006"
    name = "float-equality"
    summary = "no ==/!= comparisons against float literals"
    rationale = (
        "Exact float equality flips under re-association and platform "
        "differences; prediction math must use tolerances."
    )
    node_types = (ast.Compare,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Compare)
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        if any(_is_float_literal(operand) for operand in operands):
            yield self.finding(
                ctx,
                node,
                "==/!= against a float literal is unstable in model "
                "math; compare with a tolerance (math.isclose or an "
                "epsilon bound)",
            )


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)
