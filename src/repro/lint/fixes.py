"""Applying mechanical fixes to source files.

Fixes are span replacements recorded on findings by fixable rules
(currently REP003's ``sort_keys=True`` insertion).  Per file, spans are
applied bottom-up so earlier replacements never shift later offsets, and
overlapping spans are refused defensively.  Rewritten sources go back to
disk through the durable layer — the linter practices the REP004
contract it enforces.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Sequence, Tuple

from repro.core.durable import atomic_write_text
from repro.lint.errors import LintError
from repro.lint.findings import Finding, Fix

__all__ = ["apply_fixes"]


def apply_fixes(
    findings: Sequence[Finding],
    root: pathlib.Path,
) -> Dict[str, int]:
    """Rewrite every fixable finding; returns {relpath: fixes applied}.

    Paths in findings are relative to ``root`` (the lint root), matching
    how the engine produced them.
    """
    by_file: Dict[str, List[Finding]] = {}
    for finding in findings:
        if finding.fix is not None:
            by_file.setdefault(finding.path, []).append(finding)
    applied: Dict[str, int] = {}
    for relpath, file_findings in sorted(by_file.items()):
        path = _resolve(relpath, root)
        source = path.read_text(encoding="utf-8")
        rewritten = _apply_to_source(
            source, [f.fix for f in file_findings if f.fix is not None],
            relpath,
        )
        if rewritten != source:
            atomic_write_text(path, rewritten)
        applied[relpath] = len(file_findings)
    return applied


def _resolve(relpath: str, root: pathlib.Path) -> pathlib.Path:
    candidate = pathlib.Path(relpath)
    if candidate.is_absolute():
        return candidate
    return root / candidate


def _apply_to_source(
    source: str, fixes: Sequence[Fix], relpath: str
) -> str:
    line_starts = _line_start_offsets(source)

    def offset(line: int, col: int) -> int:
        if not 1 <= line <= len(line_starts):
            raise LintError(
                f"fix for {relpath} is out of range (line {line}); "
                "the file changed since it was linted — re-run lint"
            )
        return line_starts[line - 1] + col

    spans: List[Tuple[int, int, str]] = sorted(
        (
            offset(fix.start_line, fix.start_col),
            offset(fix.end_line, fix.end_col),
            fix.replacement,
        )
        for fix in fixes
    )
    for (_, prev_end, _), (next_start, _, _) in zip(spans, spans[1:]):
        if next_start < prev_end:
            raise LintError(
                f"overlapping fixes in {relpath}; re-run lint after "
                "applying fixes once"
            )
    out = source
    for start, end, replacement in reversed(spans):
        out = out[:start] + replacement + out[end:]
    return out


def _line_start_offsets(source: str) -> List[int]:
    starts = [0]
    for idx, char in enumerate(source):
        if char == "\n":
            starts.append(idx + 1)
    return starts
