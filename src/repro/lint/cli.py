"""The ``repro lint`` command (also runnable as ``python -m repro.lint``).

Kept importable without numpy/scipy so the CI lint job stays light: this
module and everything it pulls in (engine, rules, baseline, reporters)
is stdlib + :mod:`repro.errors` + :mod:`repro.core.durable` only.

Exit codes: 0 — clean modulo baseline; 1 — new findings (or a
:class:`ReproError` surfaced by the top-level CLI); 2 — usage error from
argparse.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.errors import ReproError
from repro.lint.baseline import Baseline
from repro.lint.engine import lint_paths, relative_finding_path
from repro.lint.findings import Finding
from repro.lint.fixes import apply_fixes
from repro.lint.effects.ruledefs import EFFECT_CODES, EFFECT_RULES
from repro.lint.flow.ruledefs import FLOW_CODES, FLOW_RULES
from repro.lint.perf.ruledefs import PERF_CODES, PERF_RULES
from repro.lint.registry import all_rules
from repro.lint.reporters import REPORT_FORMATS, LintReport, render

__all__ = ["add_lint_arguments", "run_lint_command", "main"]

DEFAULT_PATHS = ("src/repro",)
DEFAULT_FLOW_CACHE = ".repro-flow-cache.json"
DEFAULT_EFFECTS_CACHE = ".repro-effects-cache.json"
DEFAULT_CERTIFICATE = ".repro-effects.json"
DEFAULT_PERF_CACHE = ".repro-perf-cache.json"
DEFAULT_PROFILE = ".repro-profile.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to a parser (shared with the repro CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS), metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORT_FORMATS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline JSON of suppressed-but-tracked findings",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite --baseline FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanical fixes (REP003 sort_keys=True) in place",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all); e.g. "
        "REP003,REP004 for harness code where only the writer "
        "contracts apply; flow codes (REP101-REP104) force the "
        "whole-program pass on",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="directory finding paths are relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table (code, name, summary) and exit",
    )
    flow_group = parser.add_mutually_exclusive_group()
    flow_group.add_argument(
        "--flow", action="store_true",
        help="force the whole-program pass (REP101-REP104) on",
    )
    flow_group.add_argument(
        "--no-flow", action="store_true",
        help="force the whole-program pass off (it defaults to on for "
        "directory runs, off for single-file and --changed runs)",
    )
    parser.add_argument(
        "--flow-cache", default=None, metavar="FILE",
        help="per-module summary cache for the flow pass "
        f"(default: ROOT/{DEFAULT_FLOW_CACHE})",
    )
    effects_group = parser.add_mutually_exclusive_group()
    effects_group.add_argument(
        "--effects", action="store_true",
        help="run the effect/determinism pass (REP201-REP205); always "
        "analyzes the full PATH scope, even under --changed, so "
        "certificate regressions in unchanged files are caught",
    )
    effects_group.add_argument(
        "--no-effects", action="store_true",
        help="force the effect pass off even when --select names a "
        "REP2xx code",
    )
    parser.add_argument(
        "--effects-cache", default=None, metavar="FILE",
        help="per-module summary cache for the effect pass "
        f"(default: ROOT/{DEFAULT_EFFECTS_CACHE})",
    )
    parser.add_argument(
        "--certificate", default=None, metavar="FILE",
        help="determinism certificate the effect pass checks tiers "
        f"against (default: ROOT/{DEFAULT_CERTIFICATE})",
    )
    parser.add_argument(
        "--write-certificate", action="store_true",
        help="rewrite the determinism certificate from the current "
        "effect analysis and exit 0 (refuses tier demotions)",
    )
    parser.add_argument(
        "--allow-demotions", action="store_true",
        help="let --write-certificate record tier demotions after "
        "review",
    )
    perf_group = parser.add_mutually_exclusive_group()
    perf_group.add_argument(
        "--perf", action="store_true",
        help="run the performance-contract pass (REP301-REP305); like "
        "--effects it always analyzes the full PATH scope, even under "
        "--changed, because hot-region membership is a whole-program "
        "property",
    )
    perf_group.add_argument(
        "--no-perf", action="store_true",
        help="force the perf pass off even when --select names a "
        "REP3xx code",
    )
    parser.add_argument(
        "--perf-cache", default=None, metavar="FILE",
        help="per-module summary cache for the perf pass "
        f"(default: ROOT/{DEFAULT_PERF_CACHE})",
    )
    parser.add_argument(
        "--profile", default=None, metavar="FILE",
        help="call profile the perf pass cross-validates the declared "
        f"hot set against (default: ROOT/{DEFAULT_PROFILE}; REP305 "
        "is skipped when the file is absent)",
    )
    parser.add_argument(
        "--clear-cache", action="store_true",
        help="delete the flow, effect, and perf summary caches before "
        "running",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only Python files changed since --base (plus "
        "untracked ones), intersected with PATH scope",
    )
    parser.add_argument(
        "--base", default="HEAD", metavar="REF",
        help="git ref --changed diffs against (default: HEAD)",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute one lint run from parsed arguments."""
    if args.list_rules:
        print(_rule_table())
        return 0
    root = pathlib.Path(args.root) if args.root else pathlib.Path.cwd()
    if args.clear_cache:
        _clear_caches(args, root)
    rules, flow_selected, effects_selected, perf_selected = _selected_rules(
        args.select
    )
    paths: List[str] = list(args.paths)
    if args.changed:
        from repro.lint.gitdiff import changed_python_files

        paths = [
            str(p)
            for p in changed_python_files(
                args.base, scope=[pathlib.Path(p) for p in args.paths]
            )
        ]
    findings = lint_paths(paths, root=root, rules=rules)
    fixed = 0
    if args.fix:
        applied = apply_fixes(findings, root)
        fixed = sum(applied.values())
        if fixed:
            findings = lint_paths(paths, root=root, rules=rules)
    if _flow_enabled(args, paths, flow_selected):
        from repro.lint.flow import analyze_paths

        cache_path = args.flow_cache or str(root / DEFAULT_FLOW_CACHE)
        flow_result = analyze_paths(paths, root=root, cache_path=cache_path)
        flow_findings = flow_result.findings
        if flow_selected is not None:
            flow_findings = [
                f for f in flow_findings if f.code in flow_selected
            ]
        findings = sorted(
            findings + flow_findings, key=Finding.sort_key
        )
    if _effects_enabled(args, effects_selected):
        from repro.lint.effects import analyze_effects, write_certificate

        cache_path = args.effects_cache or str(
            root / DEFAULT_EFFECTS_CACHE
        )
        certificate_path = args.certificate or str(
            root / DEFAULT_CERTIFICATE
        )
        # The effect pass always covers the original PATH scope: tier
        # regressions surface in *unchanged* files (a helper edit
        # demotes a distant entry point), so a --changed-narrowed file
        # list would miss exactly the regressions the pass exists to
        # catch.  The summary cache keeps the full pass cheap.
        effect_result = analyze_effects(
            list(args.paths),
            root=root,
            cache_path=cache_path,
            certificate_path=(
                None if args.write_certificate else certificate_path
            ),
        )
        if args.write_certificate:
            write_certificate(
                certificate_path,
                effect_result.analysis,
                effect_result.module_digests,
                allow_demotions=args.allow_demotions,
            )
            certified = sum(
                1
                for tier in effect_result.analysis.tiers.values()
                if tier != "effectful"
            )
            print(
                f"determinism certificate written to {certificate_path} "
                f"({certified} certified function(s))"
            )
            return 0
        effect_findings = effect_result.findings
        if effects_selected is not None:
            effect_findings = [
                f for f in effect_findings if f.code in effects_selected
            ]
        findings = sorted(
            findings + effect_findings, key=Finding.sort_key
        )
    if _perf_enabled(args, perf_selected):
        from repro.lint.perf import analyze_perf

        perf_cache = args.perf_cache or str(root / DEFAULT_PERF_CACHE)
        perf_certificate = args.certificate or str(
            root / DEFAULT_CERTIFICATE
        )
        profile_path = args.profile or str(root / DEFAULT_PROFILE)
        # Like the effect pass, the perf pass always covers the original
        # PATH scope even under --changed: decorating one function can
        # pull a distant, unchanged callee into the hot region (or push
        # it out), so a diff-narrowed file list would miss exactly the
        # regressions REP301-REP304 exist to catch.
        perf_result = analyze_perf(
            list(args.paths),
            root=root,
            cache_path=perf_cache,
            certificate_path=perf_certificate,
            profile_path=profile_path,
        )
        perf_findings_list = perf_result.findings
        if perf_selected is not None:
            perf_findings_list = [
                f for f in perf_findings_list if f.code in perf_selected
            ]
        findings = sorted(
            findings + perf_findings_list, key=Finding.sort_key
        )
    if args.write_baseline:
        if not args.baseline:
            raise ReproError("--write-baseline requires --baseline FILE")
        path = Baseline.from_findings(findings).save(args.baseline)
        print(
            f"baseline written to {path} "
            f"({len(findings)} finding(s) recorded)"
        )
        return 0
    baseline = (
        Baseline.load(args.baseline) if args.baseline else Baseline.empty()
    )
    scanned_paths = None
    if args.changed:
        # Partial scan: only files in the diff were linted, so baseline
        # entries elsewhere must not be reported as stale.
        scanned_paths = frozenset(
            relative_finding_path(pathlib.Path(p), root) for p in paths
        )
    report = LintReport(
        partition=baseline.partition(
            findings, scanned_paths=scanned_paths
        ),
        files_scanned=_count_files(paths),
        fixed=fixed,
    )
    output = render(report, args.format)
    if output:
        print(output)
    return report.exit_code


def _flow_enabled(
    args: argparse.Namespace,
    paths: Sequence[str],
    flow_selected: Optional[frozenset],
) -> bool:
    """Whether this run includes the whole-program pass.

    Explicit flags win; an explicit --select decides by whether it names
    any flow code; otherwise directory runs get the full analysis and
    single-file / --changed runs stay fast and intraprocedural.
    """
    if args.no_flow:
        return False
    if args.flow:
        return True
    if flow_selected is not None:
        return bool(flow_selected)
    if args.changed:
        return False
    return any(pathlib.Path(p).is_dir() for p in paths)


def _effects_enabled(
    args: argparse.Namespace,
    effects_selected: Optional[frozenset],
) -> bool:
    """Whether this run includes the effect/determinism pass.

    Off by default — it is a whole-program pass with its own committed
    artifact, so it runs when asked for: --effects, --write-certificate,
    or a --select naming a REP2xx code.
    """
    if args.no_effects:
        return False
    if args.effects or args.write_certificate:
        return True
    if effects_selected is not None:
        return bool(effects_selected)
    return False


def _perf_enabled(
    args: argparse.Namespace,
    perf_selected: Optional[frozenset],
) -> bool:
    """Whether this run includes the performance-contract pass.

    Off by default, exactly like the effect pass: it is a whole-program
    analysis that reads the committed certificate and profile artifacts,
    so it runs when asked for: --perf, or a --select naming a REP3xx
    code.
    """
    if args.no_perf:
        return False
    if args.perf:
        return True
    if perf_selected is not None:
        return bool(perf_selected)
    return False


def _clear_caches(args: argparse.Namespace, root: pathlib.Path) -> None:
    for candidate in (
        args.flow_cache or root / DEFAULT_FLOW_CACHE,
        args.effects_cache or root / DEFAULT_EFFECTS_CACHE,
        args.perf_cache or root / DEFAULT_PERF_CACHE,
    ):
        pathlib.Path(candidate).unlink(missing_ok=True)


def _selected_rules(select: Optional[str]):
    """Split a --select list into engine, flow, effect, and perf codes.

    Returns ``(engine_rules, flow_codes, effect_codes, perf_codes)``,
    all ``None`` when no --select was given (meaning: everything).
    """
    if not select:
        return None, None, None, None
    from repro.lint.errors import LintError
    from repro.lint.registry import RULES

    codes = [c.strip().upper() for c in select.split(",") if c.strip()]
    all_instances = {rule.code: rule for rule in all_rules()}
    unknown = [
        c
        for c in codes
        if c not in all_instances
        and c not in FLOW_CODES
        and c not in EFFECT_CODES
        and c not in PERF_CODES
    ]
    if unknown:
        registered = (
            sorted(RULES)
            + sorted(FLOW_CODES)
            + sorted(EFFECT_CODES)
            + sorted(PERF_CODES)
        )
        raise LintError(
            f"unknown rule code(s) {', '.join(unknown)} in --select "
            f"(registered: {', '.join(registered)})"
        )
    engine_rules = [
        all_instances[c] for c in codes if c in all_instances
    ]
    flow_codes = frozenset(c for c in codes if c in FLOW_CODES)
    effect_codes = frozenset(c for c in codes if c in EFFECT_CODES)
    perf_codes = frozenset(c for c in codes if c in PERF_CODES)
    return engine_rules, flow_codes, effect_codes, perf_codes


def _count_files(paths: Sequence[str]) -> int:
    from repro.lint.engine import iter_python_files

    return len(iter_python_files([pathlib.Path(p) for p in paths]))


def _rule_table() -> str:
    lines: List[str] = []
    for rule in all_rules():
        fixable = " (autofix)" if rule.fixable else ""
        lines.append(f"{rule.code}  {rule.name}{fixable}")
        lines.append(f"        {rule.summary}")
        lines.append(f"        why: {rule.rationale}")
        if rule.allowlist:
            lines.append(
                "        allowlist: " + ", ".join(rule.allowlist)
            )
        if rule.scope:
            lines.append(
                "        scope: modules matching "
                + ", ".join(rule.scope)
            )
    for flow_rule in FLOW_RULES:
        lines.append(f"{flow_rule.code}  {flow_rule.name} (flow)")
        lines.append(f"        {flow_rule.summary}")
        lines.append(f"        why: {flow_rule.rationale}")
    for effect_rule in EFFECT_RULES:
        lines.append(
            f"{effect_rule.code}  {effect_rule.name} (effects)"
        )
        lines.append(f"        {effect_rule.summary}")
        lines.append(f"        why: {effect_rule.rationale}")
    for perf_rule in PERF_RULES:
        lines.append(f"{perf_rule.code}  {perf_rule.name} (perf)")
        lines.append(f"        {perf_rule.summary}")
        lines.append(f"        why: {perf_rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based contract checker for the repro framework's "
            "determinism, durability, and error-model invariants"
        ),
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# Re-exported for the docs generator and tests.
def findings_for(paths: Sequence[str]) -> List[Finding]:
    return lint_paths(paths)
