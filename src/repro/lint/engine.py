"""The AST-visitor rule engine: one walk per file, event dispatch to rules.

The engine parses each module once, builds a node-type → interested-rules
dispatch table, and hands every node of :func:`ast.walk` to exactly the
rules that declared that node type.  Adding a rule therefore never adds
another tree traversal, and a rule never sees nodes it did not ask for.

Files that fail to parse are reported as findings under the synthetic
code ``REP000`` rather than aborting the run: a syntax error in one file
must not hide contract violations in the other two hundred.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Type

from repro.lint.context import ModuleContext
from repro.lint.errors import LintError
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules

__all__ = [
    "PARSE_ERROR_CODE",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
]

PARSE_ERROR_CODE = "REP000"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(
    paths: Sequence[pathlib.Path],
) -> List[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen = set()
    out: List[pathlib.Path] = []
    for path in paths:
        if not path.exists():
            raise LintError(f"no such file or directory: '{path}'")
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(p.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                out.append(candidate)
    return out


def _dispatch_table(
    rules: Sequence[Rule],
) -> Dict[Type[ast.AST], List[Rule]]:
    table: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            table.setdefault(node_type, []).append(rule)
    return table


def lint_source(
    source: str,
    relpath: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module given as text; the unit the fixture tests use."""
    active = list(rules) if rules is not None else all_rules()
    try:
        ctx = ModuleContext.parse(source, relpath)
    except SyntaxError as exc:
        return [
            Finding(
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
                path=relpath.replace("\\", "/"),
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                snippet=(exc.text or "").strip(),
            )
        ]
    applicable = [r for r in active if r.applies_to(ctx.relpath)]
    if not applicable:
        return []
    table = _dispatch_table(applicable)
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        for rule in table.get(type(node), ()):
            findings.extend(rule.visit(node, ctx))
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: pathlib.Path,
    root: pathlib.Path,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one file on disk, reporting paths relative to ``root``."""
    return lint_source(
        path.read_text(encoding="utf-8"),
        relative_finding_path(path, root),
        rules,
    )


def lint_paths(
    paths: Sequence[str | pathlib.Path],
    *,
    root: Optional[str | pathlib.Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint files and directories; the programmatic entry point.

    ``root`` anchors the relative paths used in findings and baselines;
    it defaults to the current working directory (the repo root in CI
    and in the test suite).
    """
    rootpath = pathlib.Path(root) if root is not None else pathlib.Path.cwd()
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for path in iter_python_files([pathlib.Path(p) for p in paths]):
        findings.extend(lint_file(path, rootpath, active))
    findings.sort(key=Finding.sort_key)
    return findings


def relative_finding_path(path: pathlib.Path, root: pathlib.Path) -> str:
    """The path form findings and baseline identities use: ``root``-relative
    with posix separators, falling back to the path as given when it lies
    outside ``root``."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        return path.as_posix()
    return rel.as_posix()


def iter_rule_findings(  # pragma: no cover - thin convenience wrapper
    source: str, relpath: str, rule: Rule
) -> Iterable[Finding]:
    """Findings of a single rule on one source blob (doc/test helper)."""
    return lint_source(source, relpath, [rule])
