"""``python -m repro.lint`` — the contract checker without the full CLI."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
