"""The perf layer's entry point: files in, REP301-REP305 findings out.

``analyze_perf`` mirrors ``analyze_effects``: expand paths the same
way, anchor finding paths on the same ``root``, and return plain
:class:`Finding` objects the CLI concatenates with the other layers'
and hands to the same baseline partition and reporters.

Per file: hash the source, hit the perf cache or parse + extract, then
build the call graph over all summaries (the flow layer's builder,
unchanged — perf summaries carry identically-shaped ``calls`` and
``arg_flows``), close the declared hot set over it, and generate
REP301-REP304.  When a committed call profile is present, REP305 fires
for every measured-hot function outside the static hot region.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, List, Optional, Sequence

from repro.lint.effects.certificate import load_certificate
from repro.lint.engine import iter_python_files, relative_finding_path
from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph, build_callgraph
from repro.lint.perf.cache import PerfCache, source_digest
from repro.lint.perf.extract import PerfExtract, extract_perf
from repro.lint.perf.hotset import (
    PerfAnalysis,
    build_analysis,
    perf_findings,
)
from repro.lint.perf.profile import cross_validate, load_profile

__all__ = ["PerfResult", "analyze_perf", "DEFAULT_PERF_CACHE_NAME"]

DEFAULT_PERF_CACHE_NAME = ".repro-perf-cache.json"


@dataclasses.dataclass
class PerfResult:
    """Findings plus the analysis artifacts tests and tooling inspect."""

    findings: List[Finding]
    analysis: PerfAnalysis
    files_analyzed: int
    cache_hits: int
    cache_misses: int
    #: relpath -> sha256 of the analyzed source
    module_digests: Dict[str, str]

    @property
    def callgraph(self) -> CallGraph:
        return self.analysis.graph


def analyze_perf(
    paths: Sequence[str | pathlib.Path],
    *,
    root: Optional[str | pathlib.Path] = None,
    cache_path: Optional[str | pathlib.Path] = None,
    certificate_path: Optional[str | pathlib.Path] = None,
    profile_path: Optional[str | pathlib.Path] = None,
) -> PerfResult:
    """Run the whole-program perf analysis over files and directories."""
    rootpath = (
        pathlib.Path(root) if root is not None else pathlib.Path.cwd()
    )
    cache = PerfCache.load(
        pathlib.Path(cache_path) if cache_path is not None else None
    )

    extracts: List[PerfExtract] = []
    sources: Dict[str, Sequence[str]] = {}
    module_digests: Dict[str, str] = {}
    for path in iter_python_files([pathlib.Path(p) for p in paths]):
        relpath = relative_finding_path(path, rootpath)
        source = path.read_text(encoding="utf-8")
        sources[relpath] = source.splitlines()
        digest = source_digest(source)
        cached = cache.get(relpath, digest)
        if cached is not None:
            extracts.append(cached)
        else:
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue  # REP000 is the engine's report, not ours
            extract = extract_perf(tree, relpath)
            extracts.append(extract)
            cache.put(relpath, digest, extract)
        module_digests[relpath] = digest

    graph = build_callgraph(extracts)
    analysis = build_analysis(extracts, graph)

    certificate_tiers: Optional[Dict[str, str]] = None
    if certificate_path is not None:
        certificate = load_certificate(certificate_path)
        if certificate is not None:
            functions = certificate.get("functions")
            if isinstance(functions, dict):
                certificate_tiers = {
                    str(k): str(v) for k, v in functions.items()
                }

    findings = perf_findings(analysis, sources, certificate_tiers)

    if profile_path is not None:
        profile = load_profile(profile_path)
        if profile is not None:
            findings.extend(
                _rep305_findings(profile, analysis, sources)
            )
    findings.sort(key=Finding.sort_key)

    cache.save()
    return PerfResult(
        findings=findings,
        analysis=analysis,
        files_analyzed=len(extracts),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        module_digests=module_digests,
    )


def _rep305_findings(
    profile: Dict[str, object],
    analysis: PerfAnalysis,
    sources: Dict[str, Sequence[str]],
) -> List[Finding]:
    agreement = cross_validate(
        profile,
        hot_region=analysis.hot_region,
        declared=analysis.hot_entries,
        known=frozenset(analysis.locations),
    )
    findings: List[Finding] = []
    for qualname, share in agreement.undeclared_hot:
        relpath, line = analysis.locations.get(qualname, ("(profile)", 1))
        lines = sources.get(relpath, ())
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        findings.append(
            Finding(
                code="REP305",
                message=(
                    f"'{qualname}' holds {share:.2%} of profiled calls "
                    f"(threshold {agreement.threshold:.2%}) but is not "
                    f"in the declared hot region — declare it @hot or "
                    f"shrink the workload's reliance on it"
                ),
                path=relpath,
                line=line,
                col=1,
                snippet=snippet,
            )
        )
    return findings
