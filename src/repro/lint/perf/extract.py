"""Per-module cost extraction: serializable local perf summaries.

One parse per module produces, for every function, the *local* cost
facts the hot-region pass (``hotset.py``) closes over the call graph:

- ``calls`` / ``arg_flows`` — resolved call edges, shaped exactly like
  the flow layer's so :func:`repro.lint.flow.callgraph.build_callgraph`
  works unchanged over perf extracts (``arg_flows`` is always empty —
  the cost lattice needs edges, not argument taint).
- ``is_hot`` — the function carries a resolved
  :data:`~repro.lint.perf.ruledefs.HOT_DECORATORS` decorator.
- ``loop_calls`` — every resolved call at loop depth >= 1 (REP304's
  candidate set).
- ``loop_constructions`` — CapWords-named constructions at loop depth
  >= 1, excluding exception construction under ``raise`` (REP301).
- ``loop_scans`` — linear membership (``in``/``not in``) or
  ``index``/``count``/``remove`` against a name this function provably
  built as a list (REP302).
- ``loop_invariant_calls`` — calls whose receiver chain and every
  argument are invariant across all enclosing loops (REP303; purity is
  judged later against the determinism certificate).

The module also records its classes with a ``slotted`` flag: REP301
only fires for classes that actually carry a per-instance ``__dict__``,
so ``__slots__``, ``dataclass(slots=True)``, ``NamedTuple``/``Enum``
layouts, and exception types (error-path, not steady-state) are exempt.

Same soundness caveats as the flow/effect extractors (DESIGN.md §13):
resolution is static and name-based; dynamic dispatch on values of
unknown class produces dangling edges the hot-region closure cannot
follow — which is why the inner-loop helpers of the broker and
simulator are decorated explicitly rather than discovered.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.flow.symbols import ModuleSymbols, dotted, module_name_for
from repro.lint.perf.ruledefs import (
    HOT_DECORATORS,
    LINEAR_SCAN_ATTRS,
    LISTY_CONSTRUCTORS,
)

__all__ = ["PerfSummary", "ClassInfo", "PerfExtract", "extract_perf"]

#: Dataclass decorator spellings (canonical) that accept ``slots=True``.
_DATACLASS_DECORATORS = frozenset({"dataclasses.dataclass"})

#: Base-class qualnames whose instances carry no per-instance dict.
_COMPACT_BASES = frozenset(
    {"typing.NamedTuple", "tuple", "enum.Enum", "enum.IntEnum", "enum.Flag"}
)


@dataclasses.dataclass
class PerfSummary:
    """Local (callee-independent) cost facts of one function."""

    qualname: str
    lineno: int
    is_hot: bool = False
    #: (resolved callee, line, ()) — callgraph-builder compatible
    calls: List[Tuple[str, int, Tuple[str, ...]]] = dataclasses.field(
        default_factory=list
    )
    #: always empty; present so build_callgraph's unpacking works
    arg_flows: List[Any] = dataclasses.field(default_factory=list)
    #: (resolved callee, line) at loop depth >= 1
    loop_calls: List[Tuple[str, int]] = dataclasses.field(
        default_factory=list
    )
    #: (resolved class name, line) constructed at loop depth >= 1
    loop_constructions: List[Tuple[str, int]] = dataclasses.field(
        default_factory=list
    )
    #: (collection name, operation, line) linear scans in loops
    loop_scans: List[Tuple[str, str, int]] = dataclasses.field(
        default_factory=list
    )
    #: (resolved callee, line) calls with fully loop-invariant inputs
    loop_invariant_calls: List[Tuple[str, int]] = dataclasses.field(
        default_factory=list
    )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "is_hot": self.is_hot,
            "calls": [list(c) for c in self.calls],
            "loop_calls": [list(c) for c in self.loop_calls],
            "loop_constructions": [
                list(c) for c in self.loop_constructions
            ],
            "loop_scans": [list(s) for s in self.loop_scans],
            "loop_invariant_calls": [
                list(c) for c in self.loop_invariant_calls
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PerfSummary":
        return cls(
            qualname=str(data["qualname"]),
            lineno=int(data["lineno"]),
            is_hot=bool(data["is_hot"]),
            calls=[
                (str(c[0]), int(c[1]), tuple(c[2]))
                for c in data["calls"]
            ],
            loop_calls=[
                (str(c[0]), int(c[1])) for c in data["loop_calls"]
            ],
            loop_constructions=[
                (str(c[0]), int(c[1]))
                for c in data["loop_constructions"]
            ],
            loop_scans=[
                (str(s[0]), str(s[1]), int(s[2]))
                for s in data["loop_scans"]
            ],
            loop_invariant_calls=[
                (str(c[0]), int(c[1]))
                for c in data["loop_invariant_calls"]
            ],
        )


@dataclasses.dataclass
class ClassInfo:
    """Layout facts of one project class (REP301's exemption input)."""

    qualname: str
    lineno: int
    slotted: bool  # compact layout or exempt (exception/enum/namedtuple)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "slotted": self.slotted,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassInfo":
        return cls(
            qualname=str(data["qualname"]),
            lineno=int(data["lineno"]),
            slotted=bool(data["slotted"]),
        )


@dataclasses.dataclass
class PerfExtract:
    """Everything the hot-region pass needs from one module."""

    relpath: str
    module: str
    functions: Dict[str, PerfSummary] = dataclasses.field(
        default_factory=dict
    )
    classes: Dict[str, ClassInfo] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relpath": self.relpath,
            "module": self.module,
            "functions": {
                q: s.to_dict() for q, s in sorted(self.functions.items())
            },
            "classes": {
                q: c.to_dict() for q, c in sorted(self.classes.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PerfExtract":
        return cls(
            relpath=str(data["relpath"]),
            module=str(data["module"]),
            functions={
                q: PerfSummary.from_dict(s)
                for q, s in data["functions"].items()
            },
            classes={
                q: ClassInfo.from_dict(c)
                for q, c in data["classes"].items()
            },
        )


def extract_perf(tree: ast.Module, relpath: str) -> PerfExtract:
    """Extract per-function cost summaries from one parsed module."""
    module = module_name_for(relpath)
    symbols = ModuleSymbols.collect(
        tree, module, is_package=relpath.endswith("__init__.py")
    )
    extract = PerfExtract(relpath=relpath, module=module)
    for stmt in tree.body:
        _scan(stmt, module, None, symbols, extract)
    return extract


def _scan(
    node: ast.stmt,
    prefix: str,
    cls: Optional[str],
    symbols: ModuleSymbols,
    extract: PerfExtract,
) -> None:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        qual = f"{prefix}.{node.name}" if prefix else node.name
        walker = _PerfWalker(qual, node, cls, symbols)
        extract.functions[qual] = walker.run()
        for child in node.body:
            _scan(child, qual, None, symbols, extract)
    elif isinstance(node, ast.ClassDef):
        qual = f"{prefix}.{node.name}" if prefix else node.name
        extract.classes[qual] = ClassInfo(
            qualname=qual,
            lineno=node.lineno,
            slotted=_is_compact(node, symbols),
        )
        for child in node.body:
            _scan(child, qual, node.name, symbols, extract)


def _is_compact(node: ast.ClassDef, symbols: ModuleSymbols) -> bool:
    """Whether instances of this class carry no per-instance dict.

    ``__slots__``, ``dataclass(slots=True)``, NamedTuple/tuple/Enum
    layouts, and exception types (constructed on error paths, never in
    steady state) are all exempt from REP301.
    """
    for stmt in node.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for dec in node.decorator_list:
        call = dec if isinstance(dec, ast.Call) else None
        name = dotted(call.func) if call else dotted(dec)
        if symbols.resolve(name) in _DATACLASS_DECORATORS and call:
            for kw in call.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    for base in node.bases:
        resolved = symbols.resolve(dotted(base))
        if resolved in _COMPACT_BASES:
            return True
        tail = resolved.rsplit(".", 1)[-1]
        if tail.endswith("Error") or tail.endswith("Exception"):
            return True
    return node.name.endswith("Error") or node.name.endswith("Exception")


class _PerfWalker:
    """Single-function walk tracking loop depth and loop-bound names."""

    def __init__(
        self,
        qualname: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: Optional[str],
        symbols: ModuleSymbols,
    ) -> None:
        self.summary = PerfSummary(qualname=qualname, lineno=node.lineno)
        self.node = node
        self.cls = cls
        self.symbols = symbols
        #: names bound by each enclosing loop, innermost last
        self.loop_stack: List[Set[str]] = []
        self.listy = _listy_locals(node, symbols)
        self.summary.is_hot = self._is_hot_decorated(node)

    # ---- entry -------------------------------------------------------

    def run(self) -> PerfSummary:
        self._walk(self.node.body)
        return self.summary

    def _is_hot_decorated(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if self.symbols.resolve(dotted(target)) in HOT_DECORATORS:
                return True
        return False

    # ---- statements --------------------------------------------------

    def _walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested definitions are extracted as their own units
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expression(stmt.iter)
            self.loop_stack.append(_bound_names(stmt))
            self._walk(stmt.body)
            self._walk(stmt.orelse)
            self.loop_stack.pop()
            return
        if isinstance(stmt, ast.While):
            self.loop_stack.append(_bound_names(stmt))
            self._expression(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
            self.loop_stack.pop()
            return
        if isinstance(stmt, ast.Raise):
            # Exception construction is error-path, not per-iteration
            # steady state: visit operands without recording REP301.
            if stmt.exc is not None:
                self._expression(stmt.exc, in_raise=True)
            if stmt.cause is not None:
                self._expression(stmt.cause, in_raise=True)
            return
        for _name, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                self._expression(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        self._expression(item)
                    elif isinstance(item, ast.stmt):
                        self._statement(item)
                    elif isinstance(item, ast.withitem):
                        self._expression(item.context_expr)
                    elif isinstance(item, ast.excepthandler):
                        self._walk(item.body)
                    elif hasattr(ast, "match_case") and isinstance(
                        item, ast.match_case
                    ):
                        self._walk(item.body)

    # ---- expressions -------------------------------------------------

    def _expression(self, node: ast.expr, in_raise: bool = False) -> None:
        if isinstance(node, ast.Call):
            self._call(node, in_raise)
            return
        if isinstance(node, ast.Compare):
            self._compare(node)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expression(child)
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            self._comprehension(node)
            return
        if isinstance(node, ast.Lambda):
            return  # deferred body; its cost is charged where it runs
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expression(child, in_raise)
            elif isinstance(child, ast.keyword):
                self._expression(child.value, in_raise)

    def _comprehension(self, node: ast.expr) -> None:
        generators = node.generators  # type: ignore[attr-defined]
        # The first iterable is evaluated once, outside the implicit loop.
        self._expression(generators[0].iter)
        bound: Set[str] = set()
        for gen in generators:
            bound |= _target_names(gen.target)
        self.loop_stack.append(bound)
        for gen in generators[1:]:
            self._expression(gen.iter)
        for gen in generators:
            for cond in gen.ifs:
                self._expression(cond)
        if isinstance(node, ast.DictComp):
            self._expression(node.key)
            self._expression(node.value)
        else:
            self._expression(node.elt)  # type: ignore[attr-defined]
        self.loop_stack.pop()

    def _call(self, node: ast.Call, in_raise: bool) -> None:
        callee = self._resolve_callee(node.func)
        line = node.lineno
        if callee:
            self.summary.calls.append((callee, line, ()))
        in_loop = bool(self.loop_stack)
        if in_loop and callee:
            self.summary.loop_calls.append((callee, line))
            tail = callee.rsplit(".", 1)[-1]
            if not in_raise and tail[:1].isupper():
                self.summary.loop_constructions.append((callee, line))
            if self._call_invariant(node):
                self.summary.loop_invariant_calls.append((callee, line))
        if (
            in_loop
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in LINEAR_SCAN_ATTRS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.listy
        ):
            self.summary.loop_scans.append(
                (node.func.value.id, f".{node.func.attr}()", line)
            )
        for arg in node.args:
            inner = arg.value if isinstance(arg, ast.Starred) else arg
            self._expression(inner, in_raise)
        for kw in node.keywords:
            self._expression(kw.value, in_raise)
        if isinstance(node.func, ast.Attribute):
            self._expression(node.func.value, in_raise)

    def _compare(self, node: ast.Compare) -> None:
        if not self.loop_stack:
            return
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            if (
                isinstance(comparator, ast.Name)
                and comparator.id in self.listy
            ):
                word = "in" if isinstance(op, ast.In) else "not in"
                self.summary.loop_scans.append(
                    (comparator.id, word, node.lineno)
                )

    # ---- invariance --------------------------------------------------

    def _call_invariant(self, node: ast.Call) -> bool:
        """All inputs constant or bound outside every enclosing loop."""
        loop_bound: Set[str] = set()
        for names in self.loop_stack:
            loop_bound |= names
        if isinstance(node.func, ast.Attribute):
            if not self._value_invariant(node.func.value, loop_bound):
                return False
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                return False
            if not self._value_invariant(arg, loop_bound):
                return False
        for kw in node.keywords:
            if kw.arg is None:
                return False
            if not self._value_invariant(kw.value, loop_bound):
                return False
        return True

    def _value_invariant(
        self, node: ast.expr, loop_bound: Set[str]
    ) -> bool:
        if isinstance(node, ast.Constant):
            return True
        if isinstance(node, ast.Name):
            return node.id not in loop_bound
        if isinstance(node, ast.Attribute):
            return self._value_invariant(node.value, loop_bound)
        if isinstance(node, ast.Tuple):
            return all(
                self._value_invariant(e, loop_bound) for e in node.elts
            )
        if isinstance(node, ast.UnaryOp):
            return self._value_invariant(node.operand, loop_bound)
        return False

    # ---- name resolution ---------------------------------------------

    def _resolve_callee(self, func: ast.expr) -> str:
        name = dotted(func)
        if not name:
            return ""
        head, _, rest = name.partition(".")
        if head in ("self", "cls") and self.cls is not None and rest:
            prefix = (
                f"{self.symbols.module}.{self.cls}"
                if self.symbols.module
                else self.cls
            )
            return f"{prefix}.{rest}"
        return self.symbols.resolve(name)


def _target_names(node: ast.expr) -> Set[str]:
    out: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            out.add(child.id)
    return out


def _bound_names(loop: ast.stmt) -> Set[str]:
    """Every name assigned anywhere inside one loop statement."""
    out: Set[str] = set()
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        out |= _target_names(loop.target)
    for child in ast.walk(loop):
        if isinstance(child, ast.Name) and isinstance(
            child.ctx, (ast.Store, ast.Del)
        ):
            out.add(child.id)
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            out |= _target_names(child.target)
        elif isinstance(child, ast.comprehension):
            out |= _target_names(child.target)
        elif isinstance(child, ast.ExceptHandler) and child.name:
            out.add(child.name)
    return out


def _listy_locals(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    symbols: ModuleSymbols,
) -> Set[str]:
    """Names this function provably binds to a plain list.

    Flow-insensitive: a name ever assigned from a list display, list
    comprehension, or ``list()``/``sorted()`` call is listy.  Parameters
    and attributes are never listy — the rule under-approximates rather
    than flag hashed membership.
    """
    listy: Set[str] = set()
    for child in ast.walk(node):
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(child, ast.Assign):
            value, targets = child.value, child.targets
        elif isinstance(child, ast.AnnAssign) and child.value is not None:
            value, targets = child.value, [child.target]
        elif isinstance(child, ast.AugAssign):
            continue
        if value is None:
            continue
        is_listy = isinstance(value, (ast.List, ast.ListComp)) or (
            isinstance(value, ast.Call)
            and symbols.resolve(dotted(value.func)) in LISTY_CONSTRUCTORS
        )
        if not is_listy:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                listy.add(target.id)
    return listy
