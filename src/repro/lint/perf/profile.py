"""Deterministic call profiling: the measured half of the hot contract.

``repro profile`` runs a pinned broker+simulator workload under
``sys.setprofile`` and *counts call events* — never wall-clock time.
Call counts of a deterministic workload are themselves deterministic, so
the profile artifact is reproducible byte-for-byte across machines and
runs, which is what lets it live next to the determinism certificate as
a reviewed file instead of a flaky measurement.

The agreement protocol runs in both directions:

- *measured-but-undeclared*: a function whose share of profiled calls
  meets :data:`~repro.lint.perf.ruledefs.DEFAULT_SHARE_THRESHOLD` but
  sits outside the declared hot region is a REP305 finding — hot code
  the cost rules never examined.
- *declared-but-unreached*: a declared ``@hot`` entry the pinned
  workload never calls is an agreement failure — either the workload no
  longer exercises the path or the declaration is stale.

The analyzer keeps the profiler honest about scope; the profiler keeps
the analyzer honest about what is actually hot.
"""

from __future__ import annotations

import dataclasses
import pathlib
import sys
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.durable import (
    StoreError,
    atomic_write_json,
    read_json_document,
)
from repro.lint.errors import LintError
from repro.lint.perf.ruledefs import DEFAULT_SHARE_THRESHOLD

__all__ = [
    "DEFAULT_PROFILE_NAME",
    "PROFILE_FORMAT_VERSION",
    "collect_call_counts",
    "build_profile_document",
    "write_profile",
    "load_profile",
    "measured_hot",
    "ProfileAgreement",
    "cross_validate",
]

DEFAULT_PROFILE_NAME = ".repro-profile.json"
PROFILE_FORMAT_VERSION = 1

#: Only frames whose module matches this prefix are counted; the
#: profile is a claim about project code, not the stdlib.
_PROJECT_PREFIX = "repro"


def collect_call_counts(
    workload: Callable[[], Any], *, prefix: str = _PROJECT_PREFIX
) -> Dict[str, int]:
    """Run ``workload`` counting project-function call events.

    Keys are ``module.qualname`` — the same identity the static layers
    use — so the two halves of the contract can be joined directly.
    """
    counts: Dict[str, int] = {}

    def tracer(frame: Any, event: str, arg: Any) -> None:
        if event != "call":
            return
        module = frame.f_globals.get("__name__", "")
        if module != prefix and not module.startswith(prefix + "."):
            return
        # ``co_qualname`` writes nested functions as ``f.<locals>.g``;
        # the static extractor writes ``f.g``.  Normalize here so the
        # two halves of the contract join on one spelling.
        qualname = "{}.{}".format(
            module, frame.f_code.co_qualname.replace(".<locals>.", ".")
        )
        counts[qualname] = counts.get(qualname, 0) + 1

    sys.setprofile(tracer)
    try:
        workload()
    finally:
        sys.setprofile(None)
    return counts


def build_profile_document(
    counts: Dict[str, int],
    *,
    workload: str,
    threshold: float = DEFAULT_SHARE_THRESHOLD,
) -> Dict[str, Any]:
    """Canonical profile artifact: counts and shares, no wall-clock."""
    total = sum(counts.values())
    functions = {
        qualname: {
            "calls": calls,
            "share": (calls / total) if total else 0.0,
        }
        for qualname, calls in sorted(counts.items())
    }
    return {
        "format_version": PROFILE_FORMAT_VERSION,
        "workload": workload,
        "threshold": threshold,
        "total_calls": total,
        "functions": functions,
    }


def write_profile(
    path: str | pathlib.Path, document: Dict[str, Any]
) -> None:
    atomic_write_json(pathlib.Path(path), document)


def load_profile(
    path: str | pathlib.Path,
) -> Optional[Dict[str, Any]]:
    """Load a profile artifact; ``None`` when absent.

    Like the determinism certificate — and unlike the summary caches —
    a *corrupt* profile is an error: the file is a reviewed claim, and
    silently ignoring it would disable REP305.
    """
    profile_path = pathlib.Path(path)
    if not profile_path.exists():
        return None
    try:
        data = read_json_document(
            profile_path,
            "call profile",
            expected_version=PROFILE_FORMAT_VERSION,
            remedy="regenerate with: repro profile",
        )
    except StoreError as exc:
        raise LintError(str(exc)) from exc
    functions = data.get("functions")
    if not isinstance(functions, dict) or not all(
        isinstance(k, str)
        and isinstance(v, dict)
        and isinstance(v.get("calls"), int)
        for k, v in functions.items()
    ):
        raise LintError(
            f"call profile {profile_path} has a malformed 'functions' "
            "map; regenerate with: repro profile"
        )
    return data


def measured_hot(
    document: Dict[str, Any], threshold: Optional[float] = None
) -> Dict[str, float]:
    """qualname -> share for every function at or above the threshold."""
    if threshold is None:
        raw = document.get("threshold", DEFAULT_SHARE_THRESHOLD)
        threshold = float(raw) if isinstance(raw, (int, float)) else (
            DEFAULT_SHARE_THRESHOLD
        )
    functions = document.get("functions")
    if not isinstance(functions, dict):
        return {}
    hot: Dict[str, float] = {}
    for qualname, entry in functions.items():
        share = entry.get("share") if isinstance(entry, dict) else None
        if isinstance(share, (int, float)) and share >= threshold:
            hot[qualname] = float(share)
    return hot


@dataclasses.dataclass
class ProfileAgreement:
    """Both directions of the declared-vs-measured comparison."""

    #: (qualname, share) measured hot but outside the hot region (REP305)
    undeclared_hot: List[Tuple[str, float]]
    #: declared ``@hot`` entries with zero profiled calls
    unreached_declared: List[str]
    threshold: float
    total_calls: int

    @property
    def agrees(self) -> bool:
        return not self.undeclared_hot and not self.unreached_declared


def cross_validate(
    document: Dict[str, Any],
    *,
    hot_region: FrozenSet[str],
    declared: FrozenSet[str],
    threshold: Optional[float] = None,
    known: Optional[FrozenSet[str]] = None,
) -> ProfileAgreement:
    """Compare the measured profile against the static hot region.

    ``known`` restricts the undeclared-hot direction to qualnames the
    static analysis can actually locate: the profiler also sees
    identities no source-level decorator can ever claim — dataclass
    ``__create_fn__``-generated methods, genexprs — and flagging those
    would make the contract unsatisfiable.
    """
    hot = measured_hot(document, threshold)
    if threshold is None:
        raw = document.get("threshold", DEFAULT_SHARE_THRESHOLD)
        threshold = float(raw) if isinstance(raw, (int, float)) else (
            DEFAULT_SHARE_THRESHOLD
        )
    undeclared = sorted(
        (qualname, share)
        for qualname, share in hot.items()
        if qualname not in hot_region
        and (known is None or qualname in known)
    )
    functions = document.get("functions")
    called = set(functions) if isinstance(functions, dict) else set()
    unreached = sorted(q for q in declared if q not in called)
    total = document.get("total_calls")
    return ProfileAgreement(
        undeclared_hot=undeclared,
        unreached_declared=unreached,
        threshold=float(threshold),
        total_calls=int(total) if isinstance(total, int) else 0,
    )
