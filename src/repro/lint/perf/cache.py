"""Content-hash-keyed cache of per-module perf extracts.

Same contract as the flow and effect caches (which this mirrors):
entries are keyed by the SHA-256 of the module source, the file is one
durable canonical-JSON document, and any read problem — corrupt file,
version skew, malformed entry — degrades to a full re-extract rather
than an error, because the analysis must give the same answer with or
without its cache.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, Optional

from repro.core.durable import StoreError, atomic_write_json, read_json_document
from repro.lint.flow.cache import source_digest
from repro.lint.perf.extract import PerfExtract

__all__ = [
    "PerfCache",
    "source_digest",
    "PERF_CACHE_FORMAT_VERSION",
    "PERF_ANALYSIS_VERSION",
]

PERF_CACHE_FORMAT_VERSION = 1

# Semantic version of the *extractor* itself.  Cache entries are keyed
# by source digest, so a source file that has not changed would happily
# replay a summary produced by an older extractor with different rules.
# Bump this whenever extract.py changes what a summary contains or
# means; mismatched caches are discarded wholesale.
PERF_ANALYSIS_VERSION = 1


class PerfCache:
    """Per-module perf-extract store; counts hits/misses."""

    def __init__(self, path: Optional[pathlib.Path] = None) -> None:
        self.path = path
        self._modules: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Optional[pathlib.Path]) -> "PerfCache":
        cache = cls(path)
        if path is None or not path.exists():
            return cache
        try:
            data = read_json_document(
                path,
                "perf summary cache",
                expected_version=PERF_CACHE_FORMAT_VERSION,
            )
        except StoreError:
            return cache  # unreadable cache == no cache
        if data.get("analysis_version") != PERF_ANALYSIS_VERSION:
            return cache  # produced by a different extractor revision
        modules = data.get("modules")
        if isinstance(modules, dict):
            cache._modules = modules
        return cache

    def get(self, relpath: str, digest: str) -> Optional[PerfExtract]:
        entry = self._modules.get(relpath)
        if entry is None or entry.get("digest") != digest:
            self.misses += 1
            return None
        try:
            extract = PerfExtract.from_dict(entry["extract"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return extract

    def put(self, relpath: str, digest: str, extract: PerfExtract) -> None:
        self._modules[relpath] = {
            "digest": digest,
            "extract": extract.to_dict(),
        }

    def save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            self.path,
            {
                "format_version": PERF_CACHE_FORMAT_VERSION,
                "analysis_version": PERF_ANALYSIS_VERSION,
                "modules": self._modules,
            },
        )
