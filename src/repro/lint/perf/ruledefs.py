"""The performance rule family REP301-REP305: hot-path cost contracts.

The fourth lint layer.  REP00x checks one AST node at a time, the flow
layer (REP10x) follows *values*, the effect layer (REP20x) follows
*effects*; this family follows *cost*: what a function allocates,
scans, and recomputes per iteration of its loops, and whether the
project's claim about which code is hot agrees with a measured call
profile.

The hot set is declared with :func:`repro.core.hotpath.hot` and closed
over the project call graph: every function reachable from a declared
entry is in the *hot region*, and REP301-REP304 only fire inside it —
cold code may allocate freely.  REP305 runs the contract in the other
direction: a function that dominates the measured profile but is not in
the hot region is an undeclared hot path, invisible to the cost rules
precisely where they matter most.

Like the flow and effect families these are whole-program rules that do
not fit the node-dispatch :class:`repro.lint.registry.Rule` interface;
they share the stable-code contract (reporters, baselines, ``--select``)
and surface through the same :class:`~repro.lint.findings.Finding`.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Tuple

__all__ = [
    "PerfRule",
    "PERF_RULES",
    "PERF_CODES",
    "HOT_DECORATORS",
    "LISTY_CONSTRUCTORS",
    "LINEAR_SCAN_ATTRS",
    "DEFAULT_SHARE_THRESHOLD",
]


@dataclasses.dataclass(frozen=True)
class PerfRule:
    """Identity card of one performance rule (for tables and docs)."""

    code: str
    name: str
    summary: str
    rationale: str


PERF_RULES: Tuple[PerfRule, ...] = (
    PerfRule(
        code="REP301",
        name="hot-loop-allocation",
        summary=(
            "no construction of a non-slotted project class inside a "
            "loop of a hot-region function"
        ),
        rationale=(
            "A per-event record built from a plain (dict-backed) class "
            "pays an attribute dictionary per instance — at six-figure "
            "event counts that is the difference between the simulator "
            "being the fastest path and being the bottleneck.  Slotted "
            "classes allocate a fixed-size struct instead; the fix is "
            "__slots__ (or dataclass(slots=True)), not removing the "
            "record."
        ),
    ),
    PerfRule(
        code="REP302",
        name="superlinear-scan",
        summary=(
            "no linear membership test or index/count scan over a "
            "list-built collection inside a loop reachable from a hot "
            "entry"
        ),
        rationale=(
            "``x in completed`` against a list inside the job loop is "
            "O(n) per iteration — quadratic over the stream, invisible "
            "at test scale and dominant at trace scale.  The effect "
            "layer can certify the same function process-pool-safe: "
            "purity and asymptotics are independent axes, which is why "
            "this layer exists."
        ),
    ),
    PerfRule(
        code="REP303",
        name="loop-invariant-pure-call",
        summary=(
            "no repeated call with loop-invariant arguments to a "
            "certified-pure function inside a hot loop"
        ),
        rationale=(
            "A pure call whose arguments do not change across "
            "iterations returns the same value every time; paying it "
            "per event multiplies a constant by the event count.  The "
            "determinism certificate's 'pure' tier is exactly the "
            "licence to hoist: no effect distinguishes one evaluation "
            "from many."
        ),
    ),
    PerfRule(
        code="REP304",
        name="uncertified-hot-callee",
        summary=(
            "every function called inside a loop of the hot region "
            "must be effects-certified or itself declared hot"
        ),
        rationale=(
            "Per-iteration work must have audited cost and effects: a "
            "callee the effect analysis left uncertified (effectful) "
            "and nobody declared hot is unknown-cost code on the "
            "hottest path in the system.  Either certify it (fix the "
            "effect) or declare it hot (bring it under these rules) — "
            "silence is the one option the contract forbids."
        ),
    ),
    PerfRule(
        code="REP305",
        name="undeclared-hot-path",
        summary=(
            "no function may exceed the profile sample-share threshold "
            "while remaining outside the declared hot region"
        ),
        rationale=(
            "The static hot set is a claim; the measured profile is "
            "reality.  A function that dominates the pinned workload's "
            "call counts but is reachable from no declared entry is "
            "hot code the cost rules never examined — the analyzer "
            "keeps the profiler honest about scope, the profiler keeps "
            "the analyzer honest about what is actually hot."
        ),
    ),
)

PERF_CODES: FrozenSet[str] = frozenset(rule.code for rule in PERF_RULES)

# ---------------------------------------------------------------------------
# Static vocabularies
# ---------------------------------------------------------------------------

#: Canonical decorator qualnames that declare a function hot.  The
#: extractor resolves decorator expressions through the module import
#: table, so ``from repro.hotpath import hot as fast`` still registers.
#: Both the implementation module and its ``repro.core`` alias count.
HOT_DECORATORS: FrozenSet[str] = frozenset(
    {"repro.hotpath.hot", "repro.core.hotpath.hot"}
)

#: Constructors/transforms whose result is list-backed — a membership
#: test against one of these is a linear scan (REP302).  ``dict``/``set``
#: results are deliberately absent: hashed membership is O(1).
LISTY_CONSTRUCTORS: FrozenSet[str] = frozenset({"list", "sorted"})

#: Method names that scan their (list) receiver linearly.
LINEAR_SCAN_ATTRS: FrozenSet[str] = frozenset({"index", "count", "remove"})

#: Fraction of total profiled calls above which a function counts as
#: *measured hot* (REP305 and the ``repro profile`` agreement check).
DEFAULT_SHARE_THRESHOLD = 0.01
