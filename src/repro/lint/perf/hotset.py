"""The hot region and the cost rules REP301-REP304 that police it.

The declared hot set is syntactic (``@hot`` decorators found by the
extractor); the *hot region* is its closure over the project call graph:
every function reachable from a declared entry inherits the contract,
because the cost of an inner loop is the cost of everything it calls.
REP301-REP304 fire only inside the region — cold code may allocate,
scan, and recompute freely.

Resolution caveat (shared with the flow/effect layers, DESIGN.md §13):
the closure follows statically resolvable edges only.  A method call on
a value of unknown class (``pool.acquire()``) is a dangling edge the
closure cannot cross, which is why the broker and simulator decorate
their inner-loop helpers explicitly instead of relying on discovery.

REP303 and REP304 judge callees against the committed determinism
certificate (the effect layer's artifact): "pure" is the licence to
hoist, absence is the definition of *uncertified*.  Without a
certificate those two rules stay silent — the perf layer refuses to
guess about effects.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.effects.ruledefs import TIER_PURE
from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph
from repro.lint.perf.extract import ClassInfo, PerfExtract, PerfSummary

__all__ = ["PerfAnalysis", "build_analysis", "perf_findings"]


@dataclasses.dataclass
class PerfAnalysis:
    """Whole-program view the rules (and tests) interrogate."""

    extracts: List[PerfExtract]
    graph: CallGraph
    #: functions carrying an ``@hot`` decorator
    hot_entries: FrozenSet[str]
    #: call-graph closure of the declared entries
    hot_region: FrozenSet[str]
    #: every project class, keyed by qualname
    classes: Dict[str, ClassInfo]
    #: every project function qualname -> (relpath, def line)
    locations: Dict[str, Tuple[str, int]]

    def summary_of(self, qualname: str) -> Optional[PerfSummary]:
        for extract in self.extracts:
            summary = extract.functions.get(qualname)
            if summary is not None:
                return summary
        return None

    def in_hot_region(self, qualname: str) -> bool:
        return qualname in self.hot_region


def build_analysis(
    extracts: Sequence[PerfExtract], graph: CallGraph
) -> PerfAnalysis:
    """Close the declared hot set over the call graph."""
    classes: Dict[str, ClassInfo] = {}
    locations: Dict[str, Tuple[str, int]] = {}
    entries: Set[str] = set()
    for extract in extracts:
        classes.update(extract.classes)
        for qualname, summary in extract.functions.items():
            locations[qualname] = (extract.relpath, summary.lineno)
            if summary.is_hot:
                entries.add(qualname)
    region = _reachable(graph.edges, entries)
    return PerfAnalysis(
        extracts=list(extracts),
        graph=graph,
        hot_entries=frozenset(entries),
        hot_region=frozenset(region & set(locations)),
        classes=classes,
        locations=locations,
    )


def _reachable(
    edges: Dict[str, Tuple[str, ...]], roots: Set[str]
) -> Set[str]:
    seen: Set[str] = set(roots)
    work: List[str] = list(roots)
    while work:
        current = work.pop()
        for callee in edges.get(current, ()):
            if callee not in seen:
                seen.add(callee)
                work.append(callee)
    return seen


def perf_findings(
    analysis: PerfAnalysis,
    sources: Dict[str, Sequence[str]],
    certificate_tiers: Optional[Dict[str, str]] = None,
) -> List[Finding]:
    """REP301-REP304 findings for every hot-region function."""
    findings: List[Finding] = []
    seen: Set[Tuple[str, str, int, str]] = set()

    def emit(code: str, relpath: str, line: int, message: str) -> None:
        key = (code, relpath, line, message)
        if key in seen:
            return
        seen.add(key)
        lines = sources.get(relpath, ())
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        findings.append(
            Finding(
                code=code,
                message=message,
                path=relpath,
                line=line,
                col=1,
                snippet=snippet,
            )
        )

    for extract in analysis.extracts:
        for qualname, summary in extract.functions.items():
            if qualname not in analysis.hot_region:
                continue
            _rule_301(analysis, extract, qualname, summary, emit)
            _rule_302(extract, qualname, summary, emit)
            if certificate_tiers is not None:
                _rule_303(
                    analysis, extract, qualname, summary,
                    certificate_tiers, emit,
                )
                _rule_304(
                    analysis, extract, qualname, summary,
                    certificate_tiers, emit,
                )
    findings.sort(key=Finding.sort_key)
    return findings


def _rule_301(analysis, extract, qualname, summary, emit) -> None:
    for cls_name, line in summary.loop_constructions:
        info = analysis.classes.get(cls_name)
        if info is None or info.slotted:
            continue
        emit(
            "REP301",
            extract.relpath,
            line,
            (
                f"'{qualname}' constructs non-slotted class "
                f"'{cls_name}' inside a loop of the hot region "
                f"(add __slots__ or dataclass(slots=True))"
            ),
        )


def _rule_302(extract, qualname, summary, emit) -> None:
    for name, op, line in summary.loop_scans:
        emit(
            "REP302",
            extract.relpath,
            line,
            (
                f"'{qualname}' scans list '{name}' linearly "
                f"('{op}') inside a loop of the hot region — "
                f"superlinear over the driving collection"
            ),
        )


def _rule_303(
    analysis, extract, qualname, summary, certificate_tiers, emit
) -> None:
    for callee, line in summary.loop_invariant_calls:
        if callee not in analysis.locations:
            continue  # only project functions have certified purity
        if certificate_tiers.get(callee) != TIER_PURE:
            continue
        emit(
            "REP303",
            extract.relpath,
            line,
            (
                f"'{qualname}' repeats certified-pure call "
                f"'{callee}' with loop-invariant arguments inside a "
                f"hot loop (hoist it above the loop)"
            ),
        )


def _rule_304(
    analysis, extract, qualname, summary, certificate_tiers, emit
) -> None:
    for callee, line in summary.loop_calls:
        if callee not in analysis.locations:
            continue  # external callees are outside the contract
        if callee in certificate_tiers:
            continue  # certified at some tier: cost/effects audited
        callee_summary = analysis.summary_of(callee)
        if callee_summary is not None and callee_summary.is_hot:
            continue  # explicitly declared hot: under these rules
        emit(
            "REP304",
            extract.relpath,
            line,
            (
                f"'{qualname}' calls '{callee}' inside a hot loop "
                f"but the callee is neither effects-certified nor "
                f"declared @hot — certify it or declare it"
            ),
        )
