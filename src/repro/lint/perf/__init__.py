"""The performance-contract layer: REP301-REP305 (DESIGN.md §18).

Fourth lint layer.  REP00x checks one AST node, the flow layer follows
values, the effect layer follows effects; this layer follows *cost*:
per-function summaries of loop structure, allocation sites, linear
scans, and loop-invariant calls, closed over the SCC-condensed call
graph from the declared hot set (``repro.core.hotpath``), and
cross-validated against a measured call profile (``repro profile``).
"""

from repro.lint.perf.api import (
    DEFAULT_PERF_CACHE_NAME,
    PerfResult,
    analyze_perf,
)
from repro.lint.perf.profile import (
    DEFAULT_PROFILE_NAME,
    build_profile_document,
    cross_validate,
    load_profile,
    measured_hot,
)
from repro.lint.perf.ruledefs import PERF_CODES, PERF_RULES

__all__ = [
    "analyze_perf",
    "PerfResult",
    "DEFAULT_PERF_CACHE_NAME",
    "DEFAULT_PROFILE_NAME",
    "PERF_RULES",
    "PERF_CODES",
    "build_profile_document",
    "cross_validate",
    "load_profile",
    "measured_hot",
]
