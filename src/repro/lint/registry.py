"""The rule registry: stable codes, one class per contract.

Rules self-register at import time via :func:`register`; importing
:mod:`repro.lint.rules` pulls in every built-in rule module.  Codes are
permanent API — reporters, baselines, and CI annotations key on them — so
the registry refuses duplicates and malformed codes outright.

A rule declares:

- ``code`` / ``name`` / ``summary`` — identity and the one-line table row.
- ``rationale`` — *why* the contract protects replay or durability
  (rendered by ``repro lint --list-rules`` and the docs table).
- ``node_types`` — the AST node classes it wants to see; the engine walks
  each file once and dispatches, so a rule never re-walks the tree.
- ``scope`` — path fragments the rule is restricted to (empty = all files).
- ``allowlist`` — path suffixes exempt from the rule (the sanctioned
  implementations of the contract, e.g. ``core/durable.py`` for the
  raw-write rule).
"""

from __future__ import annotations

import ast
import re
from typing import ClassVar, Dict, Iterable, List, Optional, Tuple, Type

from repro.lint.context import ModuleContext
from repro.lint.errors import LintError
from repro.lint.findings import Finding, Fix

__all__ = [
    "Rule",
    "RULES",
    "register",
    "all_rules",
    "dotted_name",
    "ModuleContext",
]

_CODE_RE = re.compile(r"^REP\d{3}$")

RULES: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for contract rules; subclasses register with a code."""

    code: ClassVar[str]
    name: ClassVar[str]
    summary: ClassVar[str]
    rationale: ClassVar[str]
    fixable: ClassVar[bool] = False
    node_types: ClassVar[Tuple[type, ...]] = ()
    scope: ClassVar[Tuple[str, ...]] = ()
    allowlist: ClassVar[Tuple[str, ...]] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs on the module at ``relpath`` at all."""
        posix = relpath.replace("\\", "/")
        if any(posix.endswith(suffix) for suffix in self.allowlist):
            return False
        if self.scope and not any(frag in posix for frag in self.scope):
            return False
        return True

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        """Inspect one node; yield findings (usually zero or one)."""
        raise NotImplementedError  # interface method; concrete rules override

    # Convenience used by every concrete rule.
    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        *,
        fix: Optional[Fix] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            code=self.code,
            message=message,
            path=ctx.relpath,
            line=line,
            col=col,
            snippet=ctx.line(line).strip(),
            fix=fix,
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry; codes are unique."""
    code = getattr(cls, "code", "")
    if not _CODE_RE.match(code):
        raise LintError(
            f"rule {cls.__name__} has malformed code {code!r} "
            "(expected 'REP' + three digits)"
        )
    existing = RULES.get(code)
    if existing is not None and existing is not cls:
        raise LintError(
            f"duplicate rule code {code}: {existing.__name__} "
            f"and {cls.__name__}"
        )
    RULES[code] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return [RULES[code]() for code in sorted(RULES)]


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, '' for anything dynamic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else ""
    return ""
