"""Project call graph over extracted summaries, with SCC condensation.

Nodes are canonical function qualnames that have a summary (project
functions); edges point caller → callee and only edges whose callee is
itself a project function are kept — external calls stay in the
summaries as atoms but do not shape the propagation order.

Summaries are propagated bottom-up: callees before callers.  Mutual
recursion makes that impossible per-function, so the graph is condensed
into strongly connected components first (iterative Tarjan — the lint
tree is deep enough that a recursive formulation would be fragile) and
components are processed in reverse topological order, iterating each
component's members to a local fixpoint.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.flow.extract import ModuleExtract

__all__ = ["CallGraph", "build_callgraph"]


@dataclasses.dataclass
class CallGraph:
    """Edges between project functions plus the bottom-up SCC order."""

    #: caller qualname → sorted callee qualnames (project-internal only)
    edges: Dict[str, Tuple[str, ...]]
    #: strongly connected components, in reverse topological order
    #: (every component's project callees appear in earlier components
    #: or inside itself)
    order: Tuple[Tuple[str, ...], ...]

    def to_dict(self) -> Dict[str, List[str]]:
        return {caller: list(callees) for caller, callees in sorted(self.edges.items())}


def build_callgraph(extracts: Sequence[ModuleExtract]) -> CallGraph:
    known: Set[str] = set()
    for extract in extracts:
        known.update(extract.functions)

    edges: Dict[str, Set[str]] = {name: set() for name in sorted(known)}
    for extract in extracts:
        for qualname, summary in extract.functions.items():
            for callee, _line, _caught in summary.calls:
                if callee in known:
                    edges[qualname].add(callee)
            for callee, _line, _pos, _kw in summary.arg_flows:
                if callee in known:
                    edges[qualname].add(callee)

    frozen = {caller: tuple(sorted(callees)) for caller, callees in edges.items()}
    return CallGraph(edges=frozen, order=_condense(frozen))


def _condense(
    edges: Dict[str, Tuple[str, ...]],
) -> Tuple[Tuple[str, ...], ...]:
    """Iterative Tarjan SCC; emission order is reverse-topological.

    Tarjan pops each SCC only after all components reachable from it
    have been emitted, which is exactly the callees-first order the
    propagation pass needs.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[Tuple[str, ...]] = []
    counter = 0

    for root in sorted(edges):
        if root in index:
            continue
        # Explicit DFS stack: (node, iterator position over callees).
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, pos = work[-1]
            if pos == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            callees = edges.get(node, ())
            while pos < len(callees):
                callee = callees[pos]
                pos += 1
                if callee not in index:
                    work[-1] = (node, pos)
                    work.append((callee, 0))
                    advanced = True
                    break
                if callee in on_stack:
                    lowlink[node] = min(lowlink[node], index[callee])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(tuple(sorted(component)))
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return tuple(components)
