"""Whole-program (interprocedural) analysis layer of ``repro.lint``.

The intraprocedural rules (REP001-REP008) see one file at a time and
match surface syntax.  This package resolves imports to canonical names,
extracts per-function dataflow summaries, condenses the project call
graph into SCCs, and propagates taint, sink-reachability, and raise
sets bottom-up — producing the REP101-REP104 rule family:

- REP101 — wall-clock/environment taint reaching a durable sink
- REP102 — unseeded-RNG taint reaching a durable sink
- REP103 — public middleware/broker/campaign API leaking a builtin
  exception raised in a callee
- REP104 — dimensional inconsistency in the prediction-model core

Entry point: :func:`repro.lint.flow.analyze_paths`.
"""

from repro.lint.flow.api import FlowResult, analyze_paths
from repro.lint.flow.ruledefs import FLOW_CODES, FLOW_RULES, FlowRule

__all__ = [
    "FlowResult",
    "analyze_paths",
    "FLOW_CODES",
    "FLOW_RULES",
    "FlowRule",
]
