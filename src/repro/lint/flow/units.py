"""REP104: dimensional analysis of the prediction-model arithmetic.

The prediction core computes with five physical kinds of quantity —
seconds, bytes, bytes/second, dimensionless counts, and dimensionless
ratios.  The paper's formulas only mean anything when each term carries
the unit the formula expects (``T_exec = T_disk + T_network + T_compute``
is a sum of seconds; ``bandwidth = bytes / seconds``), so the checker
abstract-interprets every function body in the core model modules over
a small unit lattice and flags:

- adding or subtracting two different known units,
- multiplying two durations,
- assigning a value of one unit to a name conventionally of another,
- passing a keyword argument whose unit contradicts the target name,
- returning a unit that contradicts the return annotation or the
  function's own name convention.

Units come from three places, most-specific first: ``Annotated`` alias
annotations from :mod:`repro.core.units` (``Seconds``, ``Bytes``,
``BytesPerSecond``, ``Count``, ``Ratio``) on dataclass fields, method
returns, and parameters; a shared attribute-name → unit map harvested
from every annotated class field in the checked module set; and
parameter/variable naming conventions (``t_*``/``*_time`` → seconds,
``*_bytes`` → bytes, ``*bandwidth``/``*_bw`` → bytes/s, ``num_*``/
``*_nodes``/``*_count`` → count, ``*_ratio``/``*_factor`` → ratio).
Numeric literals and anything unrecognized are ⊤ (unknown), which is
compatible with everything — the checker under-reports rather than
guessing.

This checker deliberately re-derives its (small) module set every run
instead of going through the summary cache: unit facts are cross-module
(the attribute map) and a stale map is worse than a re-parse of seven
files.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding

__all__ = ["UNITS_SCOPE_STEMS", "applies_to_units", "check_units"]

CODE = "REP104"

SECONDS = "s"
BYTES = "B"
BANDWIDTH = "B/s"
COUNT = "count"
RATIO = "ratio"

#: Annotation spellings (the repro.core.units aliases) → unit.
_ALIAS_UNITS = {
    "Seconds": SECONDS,
    "Bytes": BYTES,
    "BytesPerSecond": BANDWIDTH,
    "Count": COUNT,
    "Ratio": RATIO,
}

#: The prediction-model modules the checker runs over.
UNITS_SCOPE_STEMS = frozenset(
    {
        "models",
        "predictors",
        "profile",
        "heterogeneous",
        "degraded",
        "bandwidth",
        "pipeline_model",
        "units",
    }
)


def applies_to_units(relpath: str) -> bool:
    posix = relpath.replace("\\", "/")
    return (
        "core/" in posix
        and pathlib.PurePosixPath(posix).stem in UNITS_SCOPE_STEMS
    )


def unit_for_name(name: str) -> Optional[str]:
    """Unit implied by a variable/parameter/attribute name, if any."""
    n = name.lower()
    if n.endswith("_bytes") or n in ("nbytes", "max_bytes"):
        return BYTES
    if n.endswith("_bw") or "bandwidth" in n:
        return BANDWIDTH
    if (
        n.startswith("t_")
        or n.endswith("_s")
        or n.endswith("_time")
        or n.endswith("_seconds")
        or n in ("total", "elapsed", "duration")
    ):
        return SECONDS
    if (
        n.startswith("num_")
        or n.endswith(("_nodes", "_slots", "_count", "_chunks"))
        or n in ("count", "chunks", "nodes", "slots")
    ):
        return COUNT
    if n.endswith(("_ratio", "_fraction", "_factor")) or n == "ratio":
        return RATIO
    return None


def _annotation_unit(node: Optional[ast.expr]) -> Optional[str]:
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return _ALIAS_UNITS.get(node.id)
    if isinstance(node, ast.Attribute):
        return _ALIAS_UNITS.get(node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String (deferred) annotation, e.g. under future annotations.
        return _ALIAS_UNITS.get(node.value)
    return None


@dataclasses.dataclass
class UnitContext:
    """Cross-module unit facts shared by every checked function."""

    #: attribute/field name → unit, from annotated class fields
    attributes: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: function/method name → annotated return unit
    returns: Dict[str, str] = dataclasses.field(default_factory=dict)

    @classmethod
    def collect(
        cls, modules: Sequence[Tuple[str, ast.Module]]
    ) -> "UnitContext":
        ctx = cls()
        for _relpath, tree in modules:
            for node in ast.walk(tree):
                if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    unit = _annotation_unit(node.annotation)
                    if unit is not None:
                        ctx.attributes.setdefault(node.target.id, unit)
                elif isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    unit = _annotation_unit(node.returns)
                    if unit is not None:
                        ctx.returns.setdefault(node.name, unit)
        return ctx

    def unit_of_attribute(self, name: str) -> Optional[str]:
        unit = self.attributes.get(name)
        if unit is not None:
            return unit
        return unit_for_name(name)


def check_units(
    modules: Sequence[Tuple[str, ast.Module]],
    sources: Dict[str, Sequence[str]],
) -> List[Finding]:
    """Run the dimensional checker over parsed (relpath, tree) modules."""
    ctx = UnitContext.collect(modules)
    findings: List[Finding] = []
    for relpath, tree in modules:
        lines = sources.get(relpath, ())
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                checker = _FunctionUnits(ctx, relpath, lines)
                findings.extend(checker.check(node))
    findings.sort(key=Finding.sort_key)
    return findings


class _FunctionUnits:
    """Abstract interpretation of one function over the unit lattice."""

    def __init__(
        self,
        ctx: UnitContext,
        relpath: str,
        lines: Sequence[str],
    ) -> None:
        self.ctx = ctx
        self.relpath = relpath
        self.lines = lines
        self.env: Dict[str, str] = {}
        self.findings: List[Finding] = []

    def check(self, node: ast.AST) -> List[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            unit = _annotation_unit(arg.annotation) or unit_for_name(
                arg.arg
            )
            if unit is not None:
                self.env[arg.arg] = unit
        expected = _annotation_unit(node.returns) or unit_for_name(
            node.name
        )
        self._walk(node.body, node.name, expected)
        return self.findings

    def _walk(
        self,
        stmts: Sequence[ast.stmt],
        fname: str,
        ret_unit: Optional[str],
    ) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested defs are visited by the module walk
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    got = self._unit(stmt.value)
                    if (
                        ret_unit is not None
                        and got is not None
                        and got != ret_unit
                    ):
                        self._flag(
                            stmt.lineno,
                            f"'{fname}' returns {got} but its "
                            f"annotation/name implies {ret_unit}",
                        )
                continue
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._assign(stmt)
                continue
            for _field, value in ast.iter_fields(stmt):
                if isinstance(value, ast.expr):
                    self._unit(value)
                elif isinstance(value, list):
                    for item in value:
                        if isinstance(item, ast.expr):
                            self._unit(item)
                    inner = [
                        v for v in value if isinstance(v, ast.stmt)
                    ]
                    if inner:
                        self._walk(inner, fname, ret_unit)

    def _assign(self, stmt: ast.stmt) -> None:
        value = getattr(stmt, "value", None)
        got = self._unit(value) if value is not None else None
        targets = (
            stmt.targets
            if isinstance(stmt, ast.Assign)
            else [stmt.target]
        )
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            declared = None
            if isinstance(stmt, ast.AnnAssign):
                declared = _annotation_unit(stmt.annotation)
            expected = declared or unit_for_name(target.id)
            if (
                expected is not None
                and got is not None
                and got != expected
            ):
                self._flag(
                    stmt.lineno,
                    f"assigns {got} to '{target.id}' which implies "
                    f"{expected}",
                )
            self.env[target.id] = expected or got or self.env.get(
                target.id, ""
            ) or ""
            if not self.env[target.id]:
                del self.env[target.id]

    # ---- expression units --------------------------------------------

    def _unit(self, node: Optional[ast.expr]) -> Optional[str]:
        if node is None or isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id) or unit_for_name(node.id)
        if isinstance(node, ast.Attribute):
            self._unit(node.value)
            return self.ctx.unit_of_attribute(node.attr)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._unit(node.operand)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            self._unit(node.test)
            a = self._unit(node.body)
            b = self._unit(node.orelse)
            return a if a == b else None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._unit(child)
        return None

    def _binop(self, node: ast.BinOp) -> Optional[str]:
        left = self._unit(node.left)
        right = self._unit(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if (
                left is not None
                and right is not None
                and left != right
                and (left in (SECONDS, BYTES, BANDWIDTH)
                     or right in (SECONDS, BYTES, BANDWIDTH))
            ):
                self._flag(
                    node.lineno,
                    f"adds {left} to {right}",
                )
                return None
            return left or right
        if isinstance(node.op, ast.Mult):
            return self._multiply(node, left, right)
        if isinstance(node.op, ast.Div):
            return _divide(left, right)
        return None

    def _multiply(
        self,
        node: ast.BinOp,
        left: Optional[str],
        right: Optional[str],
    ) -> Optional[str]:
        if left == SECONDS and right == SECONDS:
            self._flag(node.lineno, "multiplies two durations (s × s)")
            return None
        for scalar, other in ((left, right), (right, left)):
            if scalar in (RATIO, COUNT):
                return other
        if {left, right} == {BANDWIDTH, SECONDS}:
            return BYTES
        return None

    def _call(self, node: ast.Call) -> Optional[str]:
        for arg in node.args:
            self._unit(arg)
        name = ""
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            self._unit(node.func.value)
            name = node.func.attr
        self._check_keywords(node)
        if name == "len":
            return COUNT
        if name in ("abs", "ceil", "floor", "round"):
            return self._unit(node.args[0]) if node.args else None
        if name in ("min", "max"):
            units = {self._unit(a) for a in node.args}
            units.discard(None)
            return units.pop() if len(units) == 1 else None
        if name in self.ctx.returns:
            return self.ctx.returns[name]
        return None

    def _check_keywords(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg is None:
                self._unit(kw.value)
                continue
            got = self._unit(kw.value)
            expected = self.ctx.unit_of_attribute(kw.arg)
            if (
                expected is not None
                and got is not None
                and got != expected
            ):
                self._flag(
                    kw.value.lineno,
                    f"keyword '{kw.arg}' implies {expected} but the "
                    f"argument is {got}",
                )

    def _flag(self, line: int, detail: str) -> None:
        snippet = (
            self.lines[line - 1].strip()
            if 0 < line <= len(self.lines)
            else ""
        )
        self.findings.append(
            Finding(
                code=CODE,
                message=f"dimensional inconsistency: {detail}",
                path=self.relpath,
                line=line,
                col=1,
                snippet=snippet,
            )
        )


def _divide(left: Optional[str], right: Optional[str]) -> Optional[str]:
    if left is not None and left == right:
        return RATIO
    if right in (RATIO, COUNT):
        return left
    if left == BYTES and right == BANDWIDTH:
        return SECONDS
    if left == BYTES and right == SECONDS:
        return BANDWIDTH
    return None
