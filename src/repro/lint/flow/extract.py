"""Per-module extraction: serializable local dataflow summaries.

One parse per module produces, for every function (and for the module
body itself, as the synthetic function ``<module>``):

- ``ret_atoms`` — what the return value depends on, as *atoms*:
  ``source:clock|env|rng`` (a direct nondeterministic read),
  ``call:<qualname>`` (the return value of a callee), and
  ``param:<name>`` (a formal parameter).
- ``sink_flows`` — durable-writer calls with the atoms of their
  arguments.
- ``arg_flows`` — arguments passed to resolvable callees with their
  atoms (how taint crosses call edges into wrapper sinks).
- ``calls`` — resolved call edges, each with the exception names any
  enclosing ``except`` clauses would catch.
- ``raises`` — builtin exceptions raised directly and not caught
  locally (the REP103 seed; REP005's builtin table is reused).
- ``direct_sources`` / ``io_calls`` — the purity facts.

Atoms are plain strings and every summary is a JSON-ready dict, so the
whole extract is cacheable per module keyed by content hash; the
cross-module propagation that turns summaries into findings is cheap
and re-runs every time (see :mod:`repro.lint.flow.propagate`).

The intra-function dataflow is flow-insensitive per variable and
iterates the statement walk twice, so atoms reach fixpoint through
loops and re-assignments.  Instance attribute state (``self.x = ...``)
and closures over enclosing locals are not tracked — documented
soundness caveats.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.flow.ruledefs import (
    CLOCK_SOURCES,
    DURABLE_SINKS,
    RNG_GLOBAL_SOURCES,
    RNG_SEEDED_CONSTRUCTORS,
    SOURCE_ALLOWLIST,
    TAINT_CLOCK,
    TAINT_ENV,
    TAINT_RNG,
)
from repro.lint.flow.symbols import ModuleSymbols, dotted, module_name_for
from repro.lint.rules.rep005_repro_errors import BUILTIN_EXCEPTIONS

__all__ = ["FunctionSummary", "ModuleExtract", "extract_module"]

MODULE_BODY = "<module>"

#: Surface attribute names whose call marks the function as doing I/O.
_IO_ATTR_CALLS = frozenset({"write", "write_text", "write_bytes"})
_IO_CALLS = frozenset({"open", "os.replace", "os.rename", "os.fsync"})

#: Builtin exception → builtin subclasses an ``except`` for it covers.
_BUILTIN_SUBCLASSES: Dict[str, Set[str]] = {
    "LookupError": {"KeyError", "IndexError"},
    "ArithmeticError": {"ZeroDivisionError", "OverflowError"},
    "OSError": {"IOError"},
    "ValueError": {"UnicodeError"},
}


def handler_covers(caught: Sequence[str], exc: str) -> bool:
    """Whether any caught-name in ``caught`` swallows builtin ``exc``."""
    for name in caught:
        if name in ("*", "BaseException", "Exception"):
            return True
        if name == exc or exc in _BUILTIN_SUBCLASSES.get(name, ()):
            return True
    return False


@dataclasses.dataclass
class FunctionSummary:
    """Local (callee-independent) dataflow facts of one function."""

    qualname: str
    lineno: int
    params: Tuple[str, ...]
    is_public: bool
    is_method: bool
    ret_atoms: List[str] = dataclasses.field(default_factory=list)
    direct_sources: Dict[str, int] = dataclasses.field(default_factory=dict)
    calls: List[Tuple[str, int, Tuple[str, ...]]] = dataclasses.field(
        default_factory=list
    )
    sink_flows: List[Tuple[str, int, Tuple[str, ...]]] = dataclasses.field(
        default_factory=list
    )
    arg_flows: List[
        Tuple[str, int, Tuple[Tuple[str, ...], ...], Dict[str, Tuple[str, ...]]]
    ] = dataclasses.field(default_factory=list)
    raises: Dict[str, int] = dataclasses.field(default_factory=dict)
    io_calls: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "params": list(self.params),
            "is_public": self.is_public,
            "is_method": self.is_method,
            "ret_atoms": sorted(self.ret_atoms),
            "direct_sources": dict(self.direct_sources),
            "calls": [[c, ln, list(caught)] for c, ln, caught in self.calls],
            "sink_flows": [
                [s, ln, sorted(atoms)] for s, ln, atoms in self.sink_flows
            ],
            "arg_flows": [
                [
                    callee,
                    ln,
                    [sorted(a) for a in pos],
                    {k: sorted(v) for k, v in sorted(kw.items())},
                ]
                for callee, ln, pos, kw in self.arg_flows
            ],
            "raises": dict(self.raises),
            "io_calls": self.io_calls,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=str(data["qualname"]),
            lineno=int(data["lineno"]),
            params=tuple(data["params"]),
            is_public=bool(data["is_public"]),
            is_method=bool(data["is_method"]),
            ret_atoms=list(data["ret_atoms"]),
            direct_sources={
                str(k): int(v) for k, v in data["direct_sources"].items()
            },
            calls=[
                (str(c), int(ln), tuple(caught))
                for c, ln, caught in data["calls"]
            ],
            sink_flows=[
                (str(s), int(ln), tuple(atoms))
                for s, ln, atoms in data["sink_flows"]
            ],
            arg_flows=[
                (
                    str(callee),
                    int(ln),
                    tuple(tuple(a) for a in pos),
                    {str(k): tuple(v) for k, v in kw.items()},
                )
                for callee, ln, pos, kw in data["arg_flows"]
            ],
            raises={str(k): int(v) for k, v in data["raises"].items()},
            io_calls=int(data.get("io_calls", 0)),
        )


@dataclasses.dataclass
class ModuleExtract:
    """Everything the propagation pass needs about one module."""

    relpath: str
    module: str
    functions: Dict[str, FunctionSummary]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relpath": self.relpath,
            "module": self.module,
            "functions": {
                name: fn.to_dict()
                for name, fn in sorted(self.functions.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleExtract":
        return cls(
            relpath=str(data["relpath"]),
            module=str(data["module"]),
            functions={
                str(name): FunctionSummary.from_dict(fn)
                for name, fn in data["functions"].items()
            },
        )


def extract_module(tree: ast.Module, relpath: str) -> ModuleExtract:
    """Extract every function summary from one parsed module."""
    posix = relpath.replace("\\", "/")
    module = module_name_for(posix)
    is_package = posix.endswith("__init__.py")
    symbols = ModuleSymbols.collect(tree, module, is_package=is_package)
    allowlisted = any(posix.endswith(sfx) for sfx in SOURCE_ALLOWLIST)

    extract = ModuleExtract(relpath=posix, module=module, functions={})
    index = _DefIndex(module)
    index.scan(tree)

    # Module body first: its global atoms seed every function walker.
    body_walker = _FunctionWalker(
        qualname=f"{module}.{MODULE_BODY}" if module else MODULE_BODY,
        lineno=1,
        params=(),
        is_public=False,
        is_method=False,
        symbols=symbols,
        index=index,
        allowlisted=allowlisted,
        globals_env={},
        cls=None,
    )
    module_stmts = [
        s
        for s in tree.body
        if not isinstance(
            s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    summary = body_walker.run(module_stmts)
    extract.functions[summary.qualname] = summary
    globals_env = body_walker.env

    for qualname, node, cls in index.definitions:
        walker = _FunctionWalker(
            qualname=qualname,
            lineno=node.lineno,
            params=_param_names(node),
            is_public=_is_public(qualname, module),
            is_method=cls is not None,
            symbols=symbols,
            index=index,
            allowlisted=allowlisted,
            globals_env=globals_env,
            cls=cls,
        )
        extract.functions[qualname] = walker.run(node.body)
    return extract


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _is_public(qualname: str, module: str) -> bool:
    local = qualname[len(module) + 1 :] if module else qualname
    return not any(part.startswith("_") for part in local.split("."))


class _DefIndex:
    """All function/method definitions of a module, in source order."""

    def __init__(self, module: str) -> None:
        self.module = module
        #: (qualname, def node, owning class name or None)
        self.definitions: List[
            Tuple[str, ast.AST, Optional[str]]
        ] = []
        self.by_qualname: Dict[str, Tuple[str, ...]] = {}

    def scan(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            self._scan_node(stmt, prefix=self.module, cls=None)

    def _scan_node(
        self, node: ast.AST, prefix: str, cls: Optional[str]
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}.{node.name}" if prefix else node.name
            self.definitions.append((qual, node, cls))
            self.by_qualname[qual] = _param_names(node)
            for child in node.body:
                self._scan_node(child, prefix=qual, cls=None)
        elif isinstance(node, ast.ClassDef):
            qual = f"{prefix}.{node.name}" if prefix else node.name
            for child in node.body:
                self._scan_node(child, prefix=qual, cls=node.name)


class _FunctionWalker:
    """Two-pass flow-insensitive atom propagation over one body."""

    def __init__(
        self,
        *,
        qualname: str,
        lineno: int,
        params: Tuple[str, ...],
        is_public: bool,
        is_method: bool,
        symbols: ModuleSymbols,
        index: _DefIndex,
        allowlisted: bool,
        globals_env: Dict[str, Set[str]],
        cls: Optional[str],
    ) -> None:
        self.summary = FunctionSummary(
            qualname=qualname,
            lineno=lineno,
            params=params,
            is_public=is_public,
            is_method=is_method,
        )
        self.symbols = symbols
        self.index = index
        self.allowlisted = allowlisted
        self.globals_env = globals_env
        self.cls = cls
        self.env: Dict[str, Set[str]] = {}
        self._ret: Set[str] = set()
        self._caught: Tuple[str, ...] = ()
        self._collect = False

    def run(self, body: Sequence[ast.stmt]) -> FunctionSummary:
        self._collect = False
        self._walk(body)
        self._collect = True
        self._walk(body)
        self.summary.ret_atoms = sorted(self._ret)
        return self.summary

    # ---- statements --------------------------------------------------

    def _walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are indexed and summarized separately
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            atoms = self._atoms(value) if value is not None else set()
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                for name in _target_names(target):
                    self.env.setdefault(name, set()).update(atoms)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._ret |= self._atoms(stmt.value)
            return
        if isinstance(stmt, ast.Raise):
            self._raise(stmt)
            return
        if isinstance(stmt, ast.Try):
            caught = self._caught
            names = _handler_names(stmt.handlers)
            self._caught = caught + names
            self._walk(stmt.body)
            self._caught = caught
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            atoms = self._atoms(stmt.iter)
            for name in _target_names(stmt.target):
                self.env.setdefault(name, set()).update(atoms)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                atoms = self._atoms(item.context_expr)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        self.env.setdefault(name, set()).update(atoms)
            self._walk(stmt.body)
            return
        # Generic fallback (If, While, Match, Expr, Assert, ...): evaluate
        # expression children, recurse into statement-list children.
        for field in ast.iter_fields(stmt):
            _, value = field
            if isinstance(value, ast.expr):
                self._atoms(value)
            elif isinstance(value, list):
                exprs = [v for v in value if isinstance(v, ast.expr)]
                for expr in exprs:
                    self._atoms(expr)
                inner = [v for v in value if isinstance(v, ast.stmt)]
                if inner:
                    self._walk(inner)
                for v in value:
                    if hasattr(ast, "match_case") and isinstance(
                        v, ast.match_case
                    ):
                        self._walk(v.body)

    def _raise(self, stmt: ast.Raise) -> None:
        if stmt.exc is not None:
            self._atoms(stmt.exc)
        if stmt.cause is not None:
            self._atoms(stmt.cause)
        if not self._collect or stmt.exc is None:
            return
        target = (
            stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc
        )
        name = self.symbols.resolve(dotted(target))
        leaf = name.rsplit(".", 1)[-1] if name else ""
        if leaf in BUILTIN_EXCEPTIONS and name == leaf:
            if not handler_covers(self._caught, leaf):
                self.summary.raises.setdefault(leaf, stmt.lineno)

    # ---- expressions -------------------------------------------------

    def _atoms(self, node: Optional[ast.AST]) -> Set[str]:
        if node is None or isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Call):
            return self._call_atoms(node)
        if isinstance(node, ast.Name):
            return self._name_atoms(node)
        if isinstance(node, ast.Attribute):
            resolved = self._resolve(dotted(node))
            if resolved == "os.environ" or resolved.startswith(
                "os.environ."
            ):
                return self._source(TAINT_ENV, node.lineno)
            return self._atoms(node.value)
        result: Set[str] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.comprehension, ast.keyword)):
                result |= self._atoms(child)
            elif isinstance(child, ast.arguments):
                continue  # lambda signature
        if isinstance(node, ast.Lambda):
            result |= self._atoms(node.body)
        return result

    def _name_atoms(self, node: ast.Name) -> Set[str]:
        result: Set[str] = set(self.env.get(node.id, ()))
        if node.id in self.summary.params:
            result.add(f"param:{node.id}")
        elif node.id not in self.env and node.id in self.globals_env:
            result |= self.globals_env[node.id]
        resolved = self._resolve(node.id)
        if resolved == "os.environ":
            result |= self._source(TAINT_ENV, node.lineno)
        return result

    def _call_atoms(self, node: ast.Call) -> Set[str]:
        pos_atoms: List[Set[str]] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                pos_atoms.append(self._atoms(arg.value))
            else:
                pos_atoms.append(self._atoms(arg))
        kw_atoms: Dict[str, Set[str]] = {}
        star_kw: Set[str] = set()
        for kw in node.keywords:
            if kw.arg is None:
                star_kw |= self._atoms(kw.value)
            else:
                kw_atoms[kw.arg] = self._atoms(kw.value)
        arg_union: Set[str] = set().union(*pos_atoms) if pos_atoms else set()
        for atoms in kw_atoms.values():
            arg_union |= atoms
        arg_union |= star_kw

        result = set(arg_union)
        callee = self._resolve_callee(node.func)
        if isinstance(node.func, ast.Attribute):
            result |= self._atoms(node.func.value)
        elif not isinstance(node.func, ast.Name):
            result |= self._atoms(node.func)

        kind = self._source_kind(callee, node)
        if kind is not None:
            result |= self._source(kind, node.lineno)
            return result

        if callee and self._is_io(callee, node.func):
            self.summary.io_calls += 1
        if callee in DURABLE_SINKS:
            self.summary.io_calls += 1
            if self._collect:
                self.summary.sink_flows.append(
                    (callee, node.lineno, tuple(sorted(arg_union)))
                )
            return result
        if callee:
            result.add(f"call:{callee}")
            if self._collect:
                self.summary.calls.append(
                    (callee, node.lineno, self._caught)
                )
                if arg_union or any(
                    a for a in pos_atoms
                ) or any(kw_atoms.values()):
                    self.summary.arg_flows.append(
                        (
                            callee,
                            node.lineno,
                            tuple(
                                tuple(sorted(a)) for a in pos_atoms
                            ),
                            {
                                k: tuple(sorted(v))
                                for k, v in kw_atoms.items()
                            },
                        )
                    )
        return result

    def _source(self, kind: str, lineno: int) -> Set[str]:
        if self._collect:
            self.summary.direct_sources.setdefault(kind, lineno)
        if self.allowlisted:
            return set()
        return {f"source:{kind}"}

    def _source_kind(
        self, callee: str, node: ast.Call
    ) -> Optional[str]:
        if not callee:
            return None
        if callee in CLOCK_SOURCES:
            return TAINT_CLOCK
        if callee == "os.getenv" or callee.startswith("os.environ"):
            return TAINT_ENV
        if callee in RNG_GLOBAL_SOURCES:
            return TAINT_RNG
        if callee in RNG_SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                return TAINT_RNG
        return None

    def _is_io(self, callee: str, func: ast.expr) -> bool:
        if callee in _IO_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _IO_ATTR_CALLS:
            return True
        return False

    def _resolve(self, name: str) -> str:
        if not name:
            return ""
        return self.symbols.resolve(name)

    def _resolve_callee(self, func: ast.expr) -> str:
        name = dotted(func)
        if not name:
            return ""
        head, _, rest = name.partition(".")
        if head in ("self", "cls") and self.cls is not None and rest:
            candidate = (
                f"{self.symbols.module}.{self.cls}.{rest}"
                if self.symbols.module
                else f"{self.cls}.{rest}"
            )
            if candidate in self.index.by_qualname:
                return candidate
            return ""
        resolved = self.symbols.resolve(name)
        return resolved


def _handler_names(
    handlers: Sequence[ast.ExceptHandler],
) -> Tuple[str, ...]:
    """The exception names a try-statement's handlers catch; bare = '*'."""
    names: List[str] = []
    for handler in handlers:
        if handler.type is None:
            names.append("*")
        elif isinstance(handler.type, ast.Tuple):
            for element in handler.type.elts:
                name = dotted(element)
                if name:
                    names.append(name.rsplit(".", 1)[-1])
        else:
            name = dotted(handler.type)
            if name:
                names.append(name.rsplit(".", 1)[-1])
    return tuple(names)


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    if isinstance(target, (ast.Subscript, ast.Attribute)):
        # d[k] = tainted / obj.field = tainted: the mutation taints the
        # container itself, so a later write of `d` carries the taint.
        return _target_names(target.value)
    return []
