"""Content-hash-keyed cache of per-module extraction summaries.

Extraction (parse + two dataflow passes per function) dominates a flow
run; propagation over the summaries is cheap.  The cache therefore
stores exactly the :class:`~repro.lint.flow.extract.ModuleExtract` of
each module, keyed by the SHA-256 of the module *source text* — any
edit invalidates precisely that module's entry, and path moves key
afresh under the new relpath.

The file is one durable canonical-JSON document (the same
``atomic_write_json`` the rest of the framework uses, which also keeps
the cache itself inside the REP003 serialization contract).  A corrupt,
missing, or version-skewed cache is never an error: flow analysis must
give the same answer with or without it, so any read problem degrades
to a full re-extract and the file is rewritten on save.
"""

from __future__ import annotations

import hashlib
import pathlib
from typing import Any, Dict, Optional

from repro.core.durable import StoreError, atomic_write_json, read_json_document
from repro.lint.flow.extract import ModuleExtract

__all__ = ["SummaryCache", "source_digest", "CACHE_FORMAT_VERSION"]

CACHE_FORMAT_VERSION = 1


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SummaryCache:
    """Per-module extract store; counts hits/misses for diagnostics."""

    def __init__(self, path: Optional[pathlib.Path] = None) -> None:
        self.path = path
        self._modules: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Optional[pathlib.Path]) -> "SummaryCache":
        cache = cls(path)
        if path is None or not path.exists():
            return cache
        try:
            data = read_json_document(
                path,
                "flow summary cache",
                expected_version=CACHE_FORMAT_VERSION,
            )
        except StoreError:
            return cache  # unreadable cache == no cache
        modules = data.get("modules")
        if isinstance(modules, dict):
            cache._modules = modules
        return cache

    def get(self, relpath: str, digest: str) -> Optional[ModuleExtract]:
        entry = self._modules.get(relpath)
        if entry is None or entry.get("digest") != digest:
            self.misses += 1
            return None
        try:
            extract = ModuleExtract.from_dict(entry["extract"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return extract

    def put(
        self, relpath: str, digest: str, extract: ModuleExtract
    ) -> None:
        self._modules[relpath] = {
            "digest": digest,
            "extract": extract.to_dict(),
        }

    def save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            self.path,
            {
                "format_version": CACHE_FORMAT_VERSION,
                "modules": self._modules,
            },
        )
