"""Import and symbol resolution: local names to canonical dotted names.

The intraprocedural rules match call sites by their *surface* dotted
name (``time.time()``), which an alias launders trivially::

    from time import time as ticks
    ticks()          # invisible to REP001

The flow layer instead resolves every name through the module's import
table and local definitions, producing a canonical fully qualified name
("time.time", "repro.core.durable.atomic_write_json",
"pkg.mod.Helper.method") that sources, sinks, and call-graph edges are
keyed on.

Soundness caveats (documented in DESIGN.md §13): resolution is static
and name-based.  Dynamic dispatch (a method call on a value of unknown
class), ``getattr``, ``importlib``, and monkey-patching are invisible —
calls that cannot be resolved become dangling edges that propagate
nothing.  The analysis over-approximates reads and under-approximates
dynamic calls; it is a linter, not a verifier.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Optional, Tuple

__all__ = ["ModuleSymbols", "module_name_for", "dotted"]

#: Surface-module spellings normalized to their canonical package name.
_MODULE_ALIASES = {"np": "numpy"}


def module_name_for(relpath: str) -> str:
    """Dotted module name for a project-relative POSIX path.

    ``src/repro/analysis/report.py`` → ``repro.analysis.report``; a
    leading ``src/`` component is dropped, ``__init__`` maps to the
    package itself.
    """
    posix = relpath.replace("\\", "/")
    if posix.endswith(".py"):
        posix = posix[: -len(".py")]
    parts = [p for p in posix.split("/") if p and p != "."]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, '' for anything dynamic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        return f"{base}.{node.attr}" if base else ""
    return ""


@dataclasses.dataclass
class ModuleSymbols:
    """One module's name-resolution table.

    ``bindings`` maps a module-level local name to the canonical dotted
    name it denotes: imported modules, imported attributes, and functions
    or classes defined in this module.
    """

    module: str
    is_package: bool
    bindings: Dict[str, str] = dataclasses.field(default_factory=dict)

    @classmethod
    def collect(
        cls, tree: ast.Module, module: str, *, is_package: bool = False
    ) -> "ModuleSymbols":
        symbols = cls(module=module, is_package=is_package)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = _MODULE_ALIASES.get(alias.name, alias.name)
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.asname is None:
                        # ``import a.b`` binds ``a``; dotted uses spell
                        # the full path, so bind the root to itself.
                        symbols.bindings.setdefault(local, local)
                    else:
                        symbols.bindings[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = symbols._from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue  # star imports are a resolution caveat
                    local = alias.asname or alias.name
                    symbols.bindings[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbols.bindings.setdefault(
                    node.name, f"{module}.{node.name}" if module else node.name
                )
            elif isinstance(node, ast.ClassDef):
                symbols.bindings.setdefault(
                    node.name, f"{module}.{node.name}" if module else node.name
                )
        return symbols

    def _from_base(self, node: ast.ImportFrom) -> Optional[str]:
        """The absolute package a ``from X import`` pulls names out of."""
        if node.level == 0:
            mod = node.module or ""
            return _MODULE_ALIASES.get(mod, mod)
        parts = self.module.split(".") if self.module else []
        if not self.is_package:
            parts = parts[:-1]  # the module's own name is not a package
        drop = node.level - 1
        if drop > len(parts):
            return None  # relative import escaping the analyzed tree
        if drop:
            parts = parts[:-drop]
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def resolve(self, name: str) -> str:
        """Canonical dotted name for a surface dotted name.

        The first segment is substituted through the binding table; the
        rest of the chain is kept.  Unknown names resolve to themselves,
        so external calls keep a stable (if surface-level) identity.
        """
        if not name:
            return ""
        head, _, rest = name.partition(".")
        target = self.bindings.get(head, _MODULE_ALIASES.get(head, head))
        resolved = f"{target}.{rest}" if rest else target
        return _normalize(resolved)


def _normalize(qualname: str) -> str:
    """Fold spelling variants of well-known stdlib names together."""
    # ``import datetime; datetime.now`` is not a real API but the intent
    # is unambiguous; canonicalize onto the class-method spelling.
    replacements: Tuple[Tuple[str, str], ...] = (
        ("datetime.now", "datetime.datetime.now"),
        ("datetime.utcnow", "datetime.datetime.utcnow"),
        ("datetime.today", "datetime.datetime.today"),
        ("date.today", "datetime.date.today"),
    )
    for surface, canonical in replacements:
        if qualname == surface:
            return canonical
    if qualname.startswith("datetime.datetime.datetime."):
        return qualname.replace(
            "datetime.datetime.datetime.", "datetime.datetime.", 1
        )
    return qualname
